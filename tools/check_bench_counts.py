#!/usr/bin/env python3
"""Compare a bench JSON emission against its checked-in baseline.

Usage: check_bench_counts.py BASELINE.json CURRENT.json

Benches emit BENCH_<name>.json (see bench/bench_util.h) with one entry
per measured configuration. Only entries the baseline marks
deterministic are checked:

  - the entry must still exist in the current emission,
  - logical probe counts must match exactly (they are a property of the
    query plans, not the machine),
  - physical descents must not exceed the baseline (the batched probe
    layer's amortization must never regress).

Wall-clock times are never compared — CI machines are not lab machines.
Exit status 0 on success, 1 with a per-entry report on any violation.

With --shard-counters the current emission's trailing "metrics" snapshot
is additionally validated against the run-sharding accounting invariant
(DESIGN.md §11): the provenance/shards gauge must be present, per-shard
provenance/shard<k>/rows counters must form a gapless range starting at
shard 0, and their sum must equal provenance/rows_ingested — every row
the process ingested was credited to exactly one shard.

With --compress-ratios the emission is validated against the segment
tier accounting (DESIGN.md §13): the footprint entries must show a
compression ratio >= 1 (sealed never larger than hot), the per-shard
provenance/shard<k>/segments counters must form a gapless range
starting at shard 0, and the segment_rows + hot_rows gauges must sum to
provenance/rows_ingested — sealing moves rows between tiers, it never
drops or duplicates them. (The gauge invariant assumes a single-store
process, which every bench that emits these metrics is.)
"""

import argparse
import json
import re
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def load_entries(doc):
    return doc.get("bench", "?"), {e["label"]: e for e in doc["entries"]}


def check_shard_counters(doc):
    """Returns a list of violations of the per-shard row accounting."""
    metrics = doc.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    failures = []
    if "provenance/shards" not in gauges:
        failures.append("metrics: gauge provenance/shards missing")
    shard_rows = {}
    for name, value in counters.items():
        m = re.fullmatch(r"provenance/shard(\d+)/rows", name)
        if m:
            shard_rows[int(m.group(1))] = value
    if not shard_rows:
        failures.append("metrics: no provenance/shard<k>/rows counters")
        return failures
    expected = set(range(max(shard_rows) + 1))
    missing = expected - set(shard_rows)
    if missing:
        failures.append(
            f"metrics: shard rows counters have gaps (missing shards "
            f"{sorted(missing)})"
        )
    total = counters.get("provenance/rows_ingested")
    if total is None:
        failures.append("metrics: counter provenance/rows_ingested missing")
    elif sum(shard_rows.values()) != total:
        failures.append(
            f"metrics: per-shard rows sum {sum(shard_rows.values())} != "
            f"provenance/rows_ingested {total}"
        )
    return failures


def check_compress_ratios(doc):
    """Returns a list of violations of the segment tier accounting."""
    failures = []

    # Footprint: the sealed tier never exceeds the hot tier it replaced.
    entries = {e["label"]: e for e in doc.get("entries", [])}
    hot = entries.get("footprint_hot_bytes")
    sealed = entries.get("footprint_sealed_bytes")
    if hot is None or sealed is None:
        failures.append(
            "entries: footprint_hot_bytes / footprint_sealed_bytes missing "
            "(bench did not record the tier footprints)"
        )
    elif sealed["probes"] <= 0:
        failures.append("entries: footprint_sealed_bytes is zero — nothing sealed")
    elif hot["probes"] < sealed["probes"]:
        failures.append(
            f"entries: compression ratio "
            f"{hot['probes'] / sealed['probes']:.2f} < 1 "
            f"(hot {hot['probes']} bytes, sealed {sealed['probes']} bytes)"
        )

    metrics = doc.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}

    # Per-shard segment counters are gapless from shard 0.
    segments = {}
    for name, value in counters.items():
        m = re.fullmatch(r"provenance/shard(\d+)/segments", name)
        if m:
            segments[int(m.group(1))] = value
    if not segments:
        failures.append("metrics: no provenance/shard<k>/segments counters")
        return failures
    missing = set(range(max(segments) + 1)) - set(segments)
    if missing:
        failures.append(
            f"metrics: segment counters have gaps (missing shards "
            f"{sorted(missing)})"
        )

    # Tier row accounting: every ingested row is resident in exactly one
    # tier (the benches never delete).
    segment_rows = sum(
        value
        for name, value in gauges.items()
        if re.fullmatch(r"provenance/shard\d+/segment_rows", name)
    )
    hot_rows = sum(
        value
        for name, value in gauges.items()
        if re.fullmatch(r"provenance/shard\d+/hot_rows", name)
    )
    total = counters.get("provenance/rows_ingested")
    if total is None:
        failures.append("metrics: counter provenance/rows_ingested missing")
    elif segment_rows + hot_rows != total:
        failures.append(
            f"metrics: segment_rows {segment_rows} + hot_rows {hot_rows} "
            f"!= provenance/rows_ingested {total}"
        )
    return failures


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare a bench JSON emission against its checked-in "
        "baseline (deterministic probe/descent counts only; wall-clock is "
        "never compared)."
    )
    parser.add_argument("baseline", help="checked-in BENCH_<name>.json baseline")
    parser.add_argument("current", help="freshly emitted BENCH_<name>.json")
    parser.add_argument(
        "--shard-counters",
        action="store_true",
        help="also validate the current emission's per-shard row counters: "
        "sum(provenance/shard<k>/rows) == provenance/rows_ingested and the "
        "provenance/shards gauge is present",
    )
    parser.add_argument(
        "--compress-ratios",
        action="store_true",
        help="also validate the current emission's segment tier accounting: "
        "footprint compression ratio >= 1, gapless per-shard "
        "provenance/shard<k>/segments counters, and segment_rows + hot_rows "
        "gauges summing to provenance/rows_ingested",
    )
    args = parser.parse_args(argv)

    try:
        bench, baseline = load_entries(load_doc(args.baseline))
        current_doc = load_doc(args.current)
        _, current = load_entries(current_doc)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as e:
        print(f"error: unreadable or malformed bench JSON: {e}", file=sys.stderr)
        return 1

    failures = []
    if args.shard_counters:
        failures.extend(check_shard_counters(current_doc))
    if args.compress_ratios:
        failures.extend(check_compress_ratios(current_doc))
    checked = 0
    for label, base in sorted(baseline.items()):
        if not base.get("deterministic", False):
            continue
        checked += 1
        cur = current.get(label)
        if cur is None:
            failures.append(f"{label}: missing from current emission")
            continue
        if cur["probes"] != base["probes"]:
            failures.append(
                f"{label}: probes {base['probes']} -> {cur['probes']} "
                "(plan or probe-generation change)"
            )
        if cur["descents"] > base["descents"]:
            failures.append(
                f"{label}: descents {base['descents']} -> {cur['descents']} "
                "(batched-probe amortization regressed)"
            )

    if failures:
        print(f"[{bench}] {len(failures)} baseline violation(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"[{bench}] {checked} deterministic entries match the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
