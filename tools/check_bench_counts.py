#!/usr/bin/env python3
"""Compare a bench JSON emission against its checked-in baseline.

Usage: check_bench_counts.py BASELINE.json CURRENT.json

Benches emit BENCH_<name>.json (see bench/bench_util.h) with one entry
per measured configuration. Only entries the baseline marks
deterministic are checked:

  - the entry must still exist in the current emission,
  - logical probe counts must match exactly (they are a property of the
    query plans, not the machine),
  - physical descents must not exceed the baseline (the batched probe
    layer's amortization must never regress).

Wall-clock times are never compared — CI machines are not lab machines.
Exit status 0 on success, 1 with a per-entry report on any violation.
"""

import json
import sys


def load_entries(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("bench", "?"), {e["label"]: e for e in doc["entries"]}


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench, baseline = load_entries(argv[1])
    _, current = load_entries(argv[2])

    failures = []
    checked = 0
    for label, base in sorted(baseline.items()):
        if not base.get("deterministic", False):
            continue
        checked += 1
        cur = current.get(label)
        if cur is None:
            failures.append(f"{label}: missing from current emission")
            continue
        if cur["probes"] != base["probes"]:
            failures.append(
                f"{label}: probes {base['probes']} -> {cur['probes']} "
                "(plan or probe-generation change)"
            )
        if cur["descents"] > base["descents"]:
            failures.append(
                f"{label}: descents {base['descents']} -> {cur['descents']} "
                "(batched-probe amortization regressed)"
            )

    if failures:
        print(f"[{bench}] {len(failures)} baseline violation(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"[{bench}] {checked} deterministic entries match the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
