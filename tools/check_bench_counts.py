#!/usr/bin/env python3
"""Compare a bench JSON emission against its checked-in baseline.

Usage: check_bench_counts.py BASELINE.json CURRENT.json

Benches emit BENCH_<name>.json (see bench/bench_util.h) with one entry
per measured configuration. Only entries the baseline marks
deterministic are checked:

  - the entry must still exist in the current emission,
  - logical probe counts must match exactly (they are a property of the
    query plans, not the machine),
  - physical descents must not exceed the baseline (the batched probe
    layer's amortization must never regress).

Wall-clock times are never compared — CI machines are not lab machines.
Exit status 0 on success, 1 with a per-entry report on any violation.
"""

import argparse
import json
import sys


def load_entries(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("bench", "?"), {e["label"]: e for e in doc["entries"]}


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare a bench JSON emission against its checked-in "
        "baseline (deterministic probe/descent counts only; wall-clock is "
        "never compared)."
    )
    parser.add_argument("baseline", help="checked-in BENCH_<name>.json baseline")
    parser.add_argument("current", help="freshly emitted BENCH_<name>.json")
    args = parser.parse_args(argv)

    try:
        bench, baseline = load_entries(args.baseline)
        _, current = load_entries(args.current)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as e:
        print(f"error: unreadable or malformed bench JSON: {e}", file=sys.stderr)
        return 1

    failures = []
    checked = 0
    for label, base in sorted(baseline.items()):
        if not base.get("deterministic", False):
            continue
        checked += 1
        cur = current.get(label)
        if cur is None:
            failures.append(f"{label}: missing from current emission")
            continue
        if cur["probes"] != base["probes"]:
            failures.append(
                f"{label}: probes {base['probes']} -> {cur['probes']} "
                "(plan or probe-generation change)"
            )
        if cur["descents"] > base["descents"]:
            failures.append(
                f"{label}: descents {base['descents']} -> {cur['descents']} "
                "(batched-probe amortization regressed)"
            )

    if failures:
        print(f"[{bench}] {len(failures)} baseline violation(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"[{bench}] {checked} deterministic entries match the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
