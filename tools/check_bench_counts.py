#!/usr/bin/env python3
"""Compare a bench JSON emission against its checked-in baseline.

Usage: check_bench_counts.py BASELINE.json CURRENT.json

Benches emit BENCH_<name>.json (see bench/bench_util.h) with one entry
per measured configuration. Only entries the baseline marks
deterministic are checked:

  - the entry must still exist in the current emission,
  - logical probe counts must match exactly (they are a property of the
    query plans, not the machine),
  - physical descents must not exceed the baseline (the batched probe
    layer's amortization must never regress).

Wall-clock times are never compared — CI machines are not lab machines.
Exit status 0 on success, 1 with a per-entry report on any violation.

With --shard-counters the current emission's trailing "metrics" snapshot
is additionally validated against the run-sharding accounting invariant
(DESIGN.md §11): the provenance/shards gauge must be present, per-shard
provenance/shard<k>/rows counters must form a gapless range starting at
shard 0, and their sum must equal provenance/rows_ingested — every row
the process ingested was credited to exactly one shard.
"""

import argparse
import json
import re
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def load_entries(doc):
    return doc.get("bench", "?"), {e["label"]: e for e in doc["entries"]}


def check_shard_counters(doc):
    """Returns a list of violations of the per-shard row accounting."""
    metrics = doc.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    failures = []
    if "provenance/shards" not in gauges:
        failures.append("metrics: gauge provenance/shards missing")
    shard_rows = {}
    for name, value in counters.items():
        m = re.fullmatch(r"provenance/shard(\d+)/rows", name)
        if m:
            shard_rows[int(m.group(1))] = value
    if not shard_rows:
        failures.append("metrics: no provenance/shard<k>/rows counters")
        return failures
    expected = set(range(max(shard_rows) + 1))
    missing = expected - set(shard_rows)
    if missing:
        failures.append(
            f"metrics: shard rows counters have gaps (missing shards "
            f"{sorted(missing)})"
        )
    total = counters.get("provenance/rows_ingested")
    if total is None:
        failures.append("metrics: counter provenance/rows_ingested missing")
    elif sum(shard_rows.values()) != total:
        failures.append(
            f"metrics: per-shard rows sum {sum(shard_rows.values())} != "
            f"provenance/rows_ingested {total}"
        )
    return failures


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare a bench JSON emission against its checked-in "
        "baseline (deterministic probe/descent counts only; wall-clock is "
        "never compared)."
    )
    parser.add_argument("baseline", help="checked-in BENCH_<name>.json baseline")
    parser.add_argument("current", help="freshly emitted BENCH_<name>.json")
    parser.add_argument(
        "--shard-counters",
        action="store_true",
        help="also validate the current emission's per-shard row counters: "
        "sum(provenance/shard<k>/rows) == provenance/rows_ingested and the "
        "provenance/shards gauge is present",
    )
    args = parser.parse_args(argv)

    try:
        bench, baseline = load_entries(load_doc(args.baseline))
        current_doc = load_doc(args.current)
        _, current = load_entries(current_doc)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as e:
        print(f"error: unreadable or malformed bench JSON: {e}", file=sys.stderr)
        return 1

    failures = []
    if args.shard_counters:
        failures.extend(check_shard_counters(current_doc))
    checked = 0
    for label, base in sorted(baseline.items()):
        if not base.get("deterministic", False):
            continue
        checked += 1
        cur = current.get(label)
        if cur is None:
            failures.append(f"{label}: missing from current emission")
            continue
        if cur["probes"] != base["probes"]:
            failures.append(
                f"{label}: probes {base['probes']} -> {cur['probes']} "
                "(plan or probe-generation change)"
            )
        if cur["descents"] > base["descents"]:
            failures.append(
                f"{label}: descents {base['descents']} -> {cur['descents']} "
                "(batched-probe amortization regressed)"
            )

    if failures:
        print(f"[{bench}] {len(failures)} baseline violation(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"[{bench}] {checked} deterministic entries match the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
