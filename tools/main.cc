// provlin command-line entry point; all logic lives in src/cli (testable).

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return provlin::cli::RunCli(args, std::cout, std::cerr);
}
