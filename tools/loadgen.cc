// Open-loop load generator for the lineage server (`provlin serve`).
//
// Replays a configurable request mix at a target aggregate rate over N
// concurrent connections. Each connection runs a sender thread that
// fires requests on the intended schedule — never waiting for responses
// — and a receiver thread that drains response frames and measures
// latency from the *intended* send time, so queueing delay in the
// client cannot hide server-side slowness (no coordinated omission).
//
// Latencies feed the process metrics registry ("loadgen/latency_ms")
// and the run summary — p50/p95/p99 + throughput — is printed and
// written as BENCH_served.json (PROVLIN_BENCH_JSON_DIR, same convention
// as the figure benches; validated by tools/check_served_json.py).
//
// Usage:
//   loadgen --port-file /tmp/port [--host 127.0.0.1] [--connections 4]
//           [--rate 200] [--duration-s 3 | --requests N]
//           [--engine naive|indexproj|mix] [--timelines true]
//           [--run r0]* [--target P:X]* [--index 1,2]* [--focus P]*
//
// --timelines true sends wire-v2 requests asking the server to attach
// its per-phase RequestTimeline to every answer; the phases aggregate
// into loadgen/timeline_* histograms and a "timeline" block (per-phase
// mean/p50/p95/p99) in BENCH_served.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/sync.h"
#include "lineage/engine.h"
#include "lineage/wire.h"
#include "server/client.h"
#include "workflow/builder.h"

namespace provlin {
namespace {

namespace wire = lineage::wire;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string port_file;
  size_t connections = 4;
  double rate = 200.0;  // aggregate requests/second across connections
  double duration_s = 3.0;
  size_t requests = 0;  // 0 = derive from rate * duration
  std::string engine = "indexproj";
  bool timelines = false;
  std::vector<std::string> runs;
  std::vector<std::string> targets;
  std::vector<std::string> indexes;
  std::vector<std::string> focus;
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "loadgen: %s\n", message.c_str());
  std::exit(1);
}

/// 1-based "1,2" index, same notation as the provlin CLI.
Index ParseIndexArg(const std::string& text) {
  std::string_view t = Trim(text);
  if (!t.empty() && t.front() == '[') t = t.substr(1);
  if (!t.empty() && t.back() == ']') t = t.substr(0, t.size() - 1);
  if (Trim(t).empty()) return Index();
  std::vector<int32_t> parts;
  for (const std::string& tok : Split(t, ',')) {
    int64_t v = 0;
    if (!ParseInt64(std::string(Trim(tok)), &v) || v < 1) {
      Die("bad index component '" + tok + "' (indices are 1-based)");
    }
    parts.push_back(static_cast<int32_t>(v - 1));
  }
  return Index(std::move(parts));
}

Options ParseOptions(int argc, char** argv) {
  Options opt;
  std::map<std::string, std::vector<std::string>> flags;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (!StartsWith(a, "--") || i + 1 >= argc) {
      Die("expected --flag value pairs, got '" + a + "'");
    }
    flags[a.substr(2)].push_back(argv[++i]);
  }
  auto get = [&](const char* name) -> const std::string* {
    auto it = flags.find(name);
    return it == flags.end() ? nullptr : &it->second.front();
  };
  auto get_int = [&](const char* name, int64_t lo, int64_t hi,
                     int64_t fallback) {
    const std::string* s = get(name);
    if (s == nullptr) return fallback;
    int64_t n = 0;
    if (!ParseInt64(*s, &n) || n < lo || n > hi) {
      Die(std::string("bad --") + name + " value '" + *s + "'");
    }
    return n;
  };
  if (const std::string* s = get("host")) opt.host = *s;
  opt.port = static_cast<uint16_t>(get_int("port", 0, 65535, 0));
  if (const std::string* s = get("port-file")) opt.port_file = *s;
  opt.connections =
      static_cast<size_t>(get_int("connections", 1, 4096, 4));
  opt.rate = static_cast<double>(get_int("rate", 1, 10000000, 200));
  opt.duration_s =
      static_cast<double>(get_int("duration-s", 1, 86400, 3));
  opt.requests = static_cast<size_t>(get_int("requests", 1, 100000000,
                                             0));
  if (const std::string* s = get("engine")) opt.engine = *s;
  if (const std::string* s = get("timelines")) opt.timelines = *s != "false";
  if (opt.engine != "naive" && opt.engine != "indexproj" &&
      opt.engine != "mix") {
    Die("--engine must be naive, indexproj, or mix");
  }
  opt.runs = flags.count("run") ? flags["run"] : std::vector<std::string>{};
  opt.targets = flags.count("target") ? flags["target"]
                                      : std::vector<std::string>{};
  opt.indexes = flags.count("index") ? flags["index"]
                                     : std::vector<std::string>{};
  opt.focus = flags.count("focus") ? flags["focus"]
                                   : std::vector<std::string>{};
  if (opt.runs.empty()) Die("at least one --run is required");
  if (opt.targets.empty()) Die("at least one --target is required");
  return opt;
}

uint16_t ResolvePort(const Options& opt) {
  if (opt.port != 0) return opt.port;
  if (opt.port_file.empty()) Die("one of --port / --port-file is required");
  // The server writes the port file only once it is accepting; poll
  // briefly so loadgen can be launched in parallel with `serve`.
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::ifstream in(opt.port_file);
    int64_t port = 0;
    if (in) {
      std::string text;
      in >> text;
      if (ParseInt64(text, &port) && port > 0 && port <= 65535) {
        return static_cast<uint16_t>(port);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Die("port file '" + opt.port_file + "' did not appear");
}

/// The cycled request mix: request k uses mix[k % mix.size()].
std::vector<lineage::LineageRequest> BuildMix(const Options& opt) {
  std::vector<workflow::PortRef> targets;
  for (const std::string& t : opt.targets) {
    auto ref = workflow::ParsePortRef(t);
    if (!ref.ok()) Die("bad --target: " + ref.status().ToString());
    targets.push_back(std::move(*ref));
  }
  std::vector<Index> indexes;
  for (const std::string& ix : opt.indexes) {
    indexes.push_back(ParseIndexArg(ix));
  }
  if (indexes.empty()) indexes.push_back(Index());
  lineage::InterestSet interest(opt.focus.begin(), opt.focus.end());

  size_t mix_size = std::max(
      opt.runs.size(), std::max(targets.size(), indexes.size()));
  std::vector<lineage::LineageRequest> mix;
  mix.reserve(mix_size);
  for (size_t i = 0; i < mix_size; ++i) {
    mix.push_back(lineage::LineageRequest::SingleRun(
        opt.runs[i % opt.runs.size()], targets[i % targets.size()],
        indexes[i % indexes.size()], interest));
  }
  return mix;
}

struct Totals {
  common::metrics::Counter* sent;
  common::metrics::Counter* ok;
  common::metrics::Counter* overloaded;
  common::metrics::Counter* errors;
  common::metrics::Histogram* latency_ms;
  /// Server-reported phase timelines (filled only under --timelines).
  common::metrics::Histogram* timeline_queue_ms;
  common::metrics::Histogram* timeline_dispatch_ms;
  common::metrics::Histogram* timeline_execute_ms;
  common::metrics::Histogram* timeline_total_ms;
};

Totals& Counters() {
  static Totals t = {
      common::metrics::GetCounter("loadgen/sent"),
      common::metrics::GetCounter("loadgen/ok"),
      common::metrics::GetCounter("loadgen/overloaded"),
      common::metrics::GetCounter("loadgen/errors"),
      common::metrics::GetHistogram("loadgen/latency_ms"),
      common::metrics::GetHistogram("loadgen/timeline_queue_ms"),
      common::metrics::GetHistogram("loadgen/timeline_dispatch_ms"),
      common::metrics::GetHistogram("loadgen/timeline_execute_ms"),
      common::metrics::GetHistogram("loadgen/timeline_total_ms"),
  };
  return t;
}

/// One connection: the shared socket client plus the sender→receiver
/// handoff of intended send times (open-loop latency basis).
struct Conn {
  explicit Conn(server::LineageClient client_in)
      : client(std::move(client_in)) {}

  server::LineageClient client;
  common::Mutex mu{common::LockRank::kLoadgenConn};
  /// request id → intended send offset from t0, microseconds.
  std::unordered_map<uint64_t, int64_t> intended GUARDED_BY(mu);
};

void SenderLoop(Conn* conn, const std::vector<lineage::LineageRequest>& mix,
                const std::vector<std::string>& engines, size_t conn_index,
                size_t connections, size_t total_requests, double rate,
                bool timelines, Clock::time_point t0) {
  for (size_t k = conn_index; k < total_requests; k += connections) {
    int64_t intended_us =
        static_cast<int64_t>(static_cast<double>(k) * 1e6 / rate);
    std::this_thread::sleep_until(t0 + std::chrono::microseconds(intended_us));
    const lineage::LineageRequest& req = mix[k % mix.size()];
    const std::string& engine = engines[k % engines.size()];
    // Register the intended time before the frame hits the wire: the
    // response can arrive on the receiver thread before Send() returns.
    uint64_t id = conn->client.next_request_id();
    {
      common::MutexLock lock(conn->mu);
      conn->intended.emplace(id, intended_us);
    }
    Result<uint64_t> sent = conn->client.Send(engine, req, timelines);
    if (!sent.ok()) {
      // Connection-level failure: everything this sender still owed is
      // accounted as an error by the receiver when the stream dies.
      common::MutexLock lock(conn->mu);
      conn->intended.erase(id);
      Counters().errors->Increment();
      return;
    }
    Counters().sent->Increment();
  }
}

void ReceiverLoop(Conn* conn, size_t expected, Clock::time_point t0) {
  for (size_t i = 0; i < expected; ++i) {
    Result<wire::ResponseEnvelope> response = conn->client.Receive();
    int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         Clock::now() - t0)
                         .count();
    if (!response.ok()) {
      // EOF or framing failure: the rest of this connection's window
      // will never be answered.
      for (size_t j = i; j < expected; ++j) Counters().errors->Increment();
      return;
    }
    int64_t intended_us = -1;
    {
      common::MutexLock lock(conn->mu);
      auto it = conn->intended.find(response->request_id);
      if (it != conn->intended.end()) {
        intended_us = it->second;
        conn->intended.erase(it);
      }
    }
    if (intended_us >= 0) {
      Counters().latency_ms->Observe(
          static_cast<double>(now_us - intended_us) / 1000.0);
    }
    if (response->ok) {
      Counters().ok->Increment();
      if (response->has_timeline) {
        const wire::RequestTimeline& tl = response->timeline;
        Counters().timeline_queue_ms->Observe(tl.queue_ms);
        Counters().timeline_dispatch_ms->Observe(tl.dispatch_ms);
        Counters().timeline_execute_ms->Observe(tl.execute_ms);
        Counters().timeline_total_ms->Observe(tl.total_ms);
      }
    } else if (response->code == wire::ErrorCode::kOverloaded) {
      Counters().overloaded->Increment();
    } else {
      Counters().errors->Increment();
    }
  }
}

void WriteJson(const Options& opt, size_t total_requests, double duration_s,
               double throughput) {
  const Totals& t = Counters();
  common::metrics::HistogramSnapshot lat = t.latency_ms->Snapshot();
  std::string dir = ".";
  if (const char* env = std::getenv("PROVLIN_BENCH_JSON_DIR")) dir = env;
  std::string path = dir + "/BENCH_served.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"served\",\n"
               "  \"config\": {\"connections\": %zu, \"rate\": %.1f, "
               "\"requests\": %zu, \"engine\": \"%s\"},\n",
               opt.connections, opt.rate, total_requests,
               opt.engine.c_str());
  std::fprintf(f,
               "  \"sent\": %llu,\n  \"ok\": %llu,\n"
               "  \"overloaded\": %llu,\n  \"errors\": %llu,\n",
               static_cast<unsigned long long>(t.sent->Value()),
               static_cast<unsigned long long>(t.ok->Value()),
               static_cast<unsigned long long>(t.overloaded->Value()),
               static_cast<unsigned long long>(t.errors->Value()));
  std::fprintf(f,
               "  \"duration_s\": %.3f,\n  \"throughput_rps\": %.1f,\n"
               "  \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
               "\"p99\": %.3f},\n",
               duration_s, throughput, lat.Percentile(0.50),
               lat.Percentile(0.95), lat.Percentile(0.99));
  if (opt.timelines) {
    // Server-side phase breakdown, aggregated across every answer that
    // carried a timeline. Validated by tools/check_served_json.py:
    // percentiles must be monotone and phase medians must not exceed
    // the client-observed request latency.
    auto phase = [&](const char* name, common::metrics::Histogram* h,
                     const char* trailer) {
      common::metrics::HistogramSnapshot s = h->Snapshot();
      double mean = s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0;
      std::fprintf(f,
                   "    \"%s\": {\"count\": %llu, \"mean\": %.3f, "
                   "\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}%s\n",
                   name, static_cast<unsigned long long>(s.count), mean,
                   s.Percentile(0.50), s.Percentile(0.95), s.Percentile(0.99),
                   trailer);
    };
    const Totals& tt = Counters();
    std::fprintf(f, "  \"timeline\": {\n");
    phase("queue_ms", tt.timeline_queue_ms, ",");
    phase("dispatch_ms", tt.timeline_dispatch_ms, ",");
    phase("execute_ms", tt.timeline_execute_ms, ",");
    phase("total_ms", tt.timeline_total_ms, "");
    std::fprintf(f, "  },\n");
  }
  std::fprintf(f, "  \"metrics\": %s\n}\n",
               common::metrics::MetricsRegistry::Global()
                   .Snapshot()
                   .ToJson(2)
                   .c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  Options opt = ParseOptions(argc, argv);
  uint16_t port = ResolvePort(opt);
  std::vector<lineage::LineageRequest> mix = BuildMix(opt);
  std::vector<std::string> engines;
  if (opt.engine == "mix") {
    engines = {"naive", "indexproj"};
  } else {
    engines = {opt.engine};
  }

  size_t total_requests = opt.requests != 0
                              ? opt.requests
                              : static_cast<size_t>(opt.rate *
                                                    opt.duration_s);
  if (total_requests == 0) Die("nothing to send");

  std::vector<std::unique_ptr<Conn>> conns;
  for (size_t c = 0; c < opt.connections; ++c) {
    auto client = server::LineageClient::Connect(opt.host, port);
    if (!client.ok()) {
      Die("connect to " + opt.host + ":" + std::to_string(port) + ": " +
          client.status().ToString());
    }
    conns.push_back(std::make_unique<Conn>(std::move(*client)));
  }

  std::printf(
      "loadgen: %zu requests at %.0f req/s over %zu connections "
      "(engine %s, mix of %zu)\n",
      total_requests, opt.rate, opt.connections, opt.engine.c_str(),
      mix.size());

  Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < opt.connections; ++c) {
    // Requests are striped over connections: connection c owns every
    // request k with k % connections == c.
    size_t expected = total_requests / opt.connections +
                      (c < total_requests % opt.connections ? 1 : 0);
    Conn* conn = conns[c].get();
    threads.emplace_back([conn, &mix, &engines, c, &opt, total_requests,
                          t0] {
      SenderLoop(conn, mix, engines, c, opt.connections, total_requests,
                 opt.rate, opt.timelines, t0);
    });
    threads.emplace_back(
        [conn, expected, t0] { ReceiverLoop(conn, expected, t0); });
  }
  for (std::thread& t : threads) t.join();
  double duration_s =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                t0)
              .count()) /
      1e6;

  const Totals& totals = Counters();
  uint64_t answered = totals.ok->Value() + totals.overloaded->Value() +
                      totals.errors->Value();
  double throughput =
      duration_s > 0 ? static_cast<double>(answered) / duration_s : 0.0;
  common::metrics::HistogramSnapshot lat = totals.latency_ms->Snapshot();
  std::printf(
      "sent %llu  ok %llu  overloaded %llu  errors %llu  in %.2fs "
      "(%.1f rsp/s)\n",
      static_cast<unsigned long long>(totals.sent->Value()),
      static_cast<unsigned long long>(totals.ok->Value()),
      static_cast<unsigned long long>(totals.overloaded->Value()),
      static_cast<unsigned long long>(totals.errors->Value()), duration_s,
      throughput);
  std::printf("latency p50 %.3fms  p95 %.3fms  p99 %.3fms (%llu samples)\n",
              lat.Percentile(0.50), lat.Percentile(0.95),
              lat.Percentile(0.99),
              static_cast<unsigned long long>(lat.count));
  if (opt.timelines) {
    common::metrics::HistogramSnapshot q =
        totals.timeline_queue_ms->Snapshot();
    common::metrics::HistogramSnapshot d =
        totals.timeline_dispatch_ms->Snapshot();
    common::metrics::HistogramSnapshot e =
        totals.timeline_execute_ms->Snapshot();
    common::metrics::HistogramSnapshot tot =
        totals.timeline_total_ms->Snapshot();
    std::printf(
        "timeline p50 queue %.3fms  dispatch %.3fms  execute %.3fms  "
        "total %.3fms (%llu timelines)\n",
        q.Percentile(0.50), d.Percentile(0.50), e.Percentile(0.50),
        tot.Percentile(0.50), static_cast<unsigned long long>(tot.count));
  }
  WriteJson(opt, total_requests, duration_s, throughput);
  return totals.ok->Value() > 0 ? 0 : 1;
}

}  // namespace
}  // namespace provlin

int main(int argc, char** argv) { return provlin::Run(argc, argv); }
