#!/usr/bin/env python3
"""Validate a BENCH_served.json file emitted by the loadgen harness.

Usage: check_served_json.py BENCH_served.json [--min-ok N]

Checks the invariants the serve + loadgen pipeline promises:

  - top level is an object with bench == "served" and a config block,
  - the counters are non-negative integers and balance:
    sent == ok + overloaded + errors, with sent > 0,
  - at least --min-ok requests succeeded (default 1),
  - latency percentiles exist, are non-negative, and are monotone
    (p50 <= p95 <= p99),
  - duration_s > 0 and throughput_rps is consistent with sent/duration
    (within 2x slack — the loadgen measures wall time itself),
  - when a "timeline" block is present (loadgen --timelines true): every
    phase has non-negative monotone percentiles, the phases were
    observed for at least one answer, and the median server-side phases
    (queue + dispatch + execute) sum to no more than the median
    client-observed request latency (with slack for bucket
    interpolation — phases are measured inside the server, the request
    latency includes the wire).

Exit status 0 on success, 1 with a report on any violation.
"""

import argparse
import json
import sys

COUNTERS = ("sent", "ok", "overloaded", "errors")
PERCENTILES = ("p50", "p95", "p99")
TIMELINE_PHASES = ("queue_ms", "dispatch_ms", "execute_ms", "total_ms")


def validate_timeline(timeline, latency):
    """Checks the server-side phase breakdown block (--timelines true)."""
    errors = []
    if not isinstance(timeline, dict):
        return ["'timeline' is not an object"]
    p50s = {}
    counts = set()
    for phase in TIMELINE_PHASES:
        block = timeline.get(phase)
        if not isinstance(block, dict):
            errors.append(f"timeline.{phase} missing or not an object")
            continue
        count = block.get("count")
        if not isinstance(count, int) or count < 0:
            errors.append(f"timeline.{phase}.count is {count!r}, expected a "
                          "non-negative integer")
        else:
            counts.add(count)
        mean = block.get("mean")
        if not isinstance(mean, (int, float)) or mean < 0:
            errors.append(f"timeline.{phase}.mean is {mean!r}, expected a "
                          "non-negative number")
        values = []
        for name in PERCENTILES:
            value = block.get(name)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"timeline.{phase}.{name} is {value!r}, "
                              "expected a non-negative number")
            else:
                values.append((name, value))
        for (lo_name, lo), (hi_name, hi) in zip(values, values[1:]):
            if lo > hi:
                errors.append(
                    f"timeline.{phase}.{lo_name}={lo} > "
                    f"timeline.{phase}.{hi_name}={hi} (percentiles must be "
                    "monotone)")
        if isinstance(block.get("p50"), (int, float)):
            p50s[phase] = block["p50"]
    if counts == {0}:
        errors.append("timeline block present but no answer carried one "
                      "(did the server honor the want-timeline flag?)")
    elif len(counts) > 1:
        errors.append(f"timeline phase counts disagree: {sorted(counts)} "
                      "(every timeline carries all phases)")
    # The phases are nested inside the request: per frame,
    # queue + dispatch + execute <= total. Medians of the aggregated
    # histograms only approximate this, so allow generous slack for
    # bucket interpolation before calling it a violation.
    if len(p50s) == len(TIMELINE_PHASES):
        phase_sum = p50s["queue_ms"] + p50s["dispatch_ms"] + p50s["execute_ms"]
        budget = p50s["total_ms"] * 1.5 + 1.0
        if phase_sum > budget:
            errors.append(
                f"median phases sum to {phase_sum:.3f}ms, more than the "
                f"median total {p50s['total_ms']:.3f}ms allows (budget "
                f"{budget:.3f}ms)")
        if isinstance(latency, dict) and isinstance(
                latency.get("p50"), (int, float)):
            # total_ms starts at server admission, after the client's
            # intended send time — it cannot exceed the client-observed
            # latency by more than estimator slack.
            bound = latency["p50"] * 2.0 + 5.0
            if p50s["total_ms"] > bound:
                errors.append(
                    f"timeline.total_ms.p50={p50s['total_ms']:.3f} exceeds "
                    f"client latency p50={latency['p50']:.3f} beyond slack "
                    f"(bound {bound:.3f}ms)")
    return errors


def validate(doc, min_ok, require_timeline=False):
    errors = []
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    if doc.get("bench") != "served":
        errors.append(f"bench is {doc.get('bench')!r}, expected 'served'")
    if not isinstance(doc.get("config"), dict):
        errors.append("missing 'config' object")

    counts = {}
    for name in COUNTERS:
        value = doc.get(name)
        if not isinstance(value, int) or value < 0:
            errors.append(f"'{name}' is {value!r}, expected a non-negative "
                          "integer")
        else:
            counts[name] = value
    if len(counts) == len(COUNTERS):
        total = counts["ok"] + counts["overloaded"] + counts["errors"]
        if counts["sent"] != total:
            errors.append(
                f"counters do not balance: sent={counts['sent']} but "
                f"ok+overloaded+errors={total}")
        if counts["sent"] == 0:
            errors.append("sent == 0: the harness issued no requests")
        if counts["ok"] < min_ok:
            errors.append(f"only {counts['ok']} ok responses, expected at "
                          f"least {min_ok}")

    latency = doc.get("latency_ms")
    if not isinstance(latency, dict):
        errors.append("missing 'latency_ms' object")
    else:
        values = []
        for name in PERCENTILES:
            value = latency.get(name)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"latency_ms.{name} is {value!r}, expected a "
                              "non-negative number")
            else:
                values.append((name, value))
        for (lo_name, lo), (hi_name, hi) in zip(values, values[1:]):
            if lo > hi:
                errors.append(f"latency_ms.{lo_name}={lo} > "
                              f"latency_ms.{hi_name}={hi} (percentiles must "
                              "be monotone)")

    if "timeline" in doc:
        errors.extend(validate_timeline(doc["timeline"], latency))
    elif require_timeline:
        errors.append("missing 'timeline' block (was loadgen run with "
                      "--timelines true?)")

    duration = doc.get("duration_s")
    throughput = doc.get("throughput_rps")
    if not isinstance(duration, (int, float)) or duration <= 0:
        errors.append(f"duration_s is {duration!r}, expected > 0")
    if not isinstance(throughput, (int, float)) or throughput <= 0:
        errors.append(f"throughput_rps is {throughput!r}, expected > 0")
    elif (isinstance(duration, (int, float)) and duration > 0
          and "sent" in counts):
        implied = counts["sent"] / duration
        if not implied / 2 <= throughput <= implied * 2:
            errors.append(
                f"throughput_rps={throughput:.1f} inconsistent with "
                f"sent/duration={implied:.1f}")
    return errors


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate a BENCH_served.json emitted by loadgen "
        "(balanced counters, monotone percentiles, consistent throughput)."
    )
    parser.add_argument("bench", help="BENCH_served.json file to validate")
    parser.add_argument(
        "--min-ok",
        type=int,
        default=1,
        metavar="N",
        help="fail unless at least N requests succeeded (default 1)",
    )
    parser.add_argument(
        "--require-timeline",
        action="store_true",
        help="fail when the document has no 'timeline' block",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.bench) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"[{args.bench}] unreadable or malformed JSON: {e}")
        return 1

    errors = validate(doc, args.min_ok, args.require_timeline)
    if errors:
        print(f"[{args.bench}] {len(errors)} violation(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"[{args.bench}] sent={doc['sent']} ok={doc['ok']} "
          f"p50={doc['latency_ms']['p50']:.3f}ms "
          f"p99={doc['latency_ms']['p99']:.3f}ms "
          f"{doc['throughput_rps']:.0f} req/s — all well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
