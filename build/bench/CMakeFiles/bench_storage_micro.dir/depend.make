# Empty dependencies file for bench_storage_micro.
# This may be replaced when dependencies are built.
