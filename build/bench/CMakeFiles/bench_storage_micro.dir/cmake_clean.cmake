file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_micro.dir/bench_storage_micro.cc.o"
  "CMakeFiles/bench_storage_micro.dir/bench_storage_micro.cc.o.d"
  "bench_storage_micro"
  "bench_storage_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
