file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_micro.dir/bench_engine_micro.cc.o"
  "CMakeFiles/bench_engine_micro.dir/bench_engine_micro.cc.o.d"
  "bench_engine_micro"
  "bench_engine_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
