# Empty compiler generated dependencies file for bench_forward.
# This may be replaced when dependencies are built.
