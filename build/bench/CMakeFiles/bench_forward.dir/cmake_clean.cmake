file(REMOVE_RECURSE
  "CMakeFiles/bench_forward.dir/bench_forward.cc.o"
  "CMakeFiles/bench_forward.dir/bench_forward.cc.o.d"
  "bench_forward"
  "bench_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
