file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10.dir/bench_fig10.cc.o"
  "CMakeFiles/bench_fig10.dir/bench_fig10.cc.o.d"
  "bench_fig10"
  "bench_fig10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
