file(REMOVE_RECURSE
  "CMakeFiles/provenance_explorer.dir/provenance_explorer.cpp.o"
  "CMakeFiles/provenance_explorer.dir/provenance_explorer.cpp.o.d"
  "provenance_explorer"
  "provenance_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
