# Empty compiler generated dependencies file for provenance_explorer.
# This may be replaced when dependencies are built.
