file(REMOVE_RECURSE
  "CMakeFiles/expression_matrix.dir/expression_matrix.cpp.o"
  "CMakeFiles/expression_matrix.dir/expression_matrix.cpp.o.d"
  "expression_matrix"
  "expression_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expression_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
