# Empty dependencies file for expression_matrix.
# This may be replaced when dependencies are built.
