file(REMOVE_RECURSE
  "CMakeFiles/genes2kegg.dir/genes2kegg.cpp.o"
  "CMakeFiles/genes2kegg.dir/genes2kegg.cpp.o.d"
  "genes2kegg"
  "genes2kegg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genes2kegg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
