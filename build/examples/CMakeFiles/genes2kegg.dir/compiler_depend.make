# Empty compiler generated dependencies file for genes2kegg.
# This may be replaced when dependencies are built.
