# Empty compiler generated dependencies file for impact_analysis.
# This may be replaced when dependencies are built.
