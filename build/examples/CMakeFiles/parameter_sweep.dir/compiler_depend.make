# Empty compiler generated dependencies file for parameter_sweep.
# This may be replaced when dependencies are built.
