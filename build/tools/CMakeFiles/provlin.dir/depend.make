# Empty dependencies file for provlin.
# This may be replaced when dependencies are built.
