file(REMOVE_RECURSE
  "CMakeFiles/provlin.dir/main.cc.o"
  "CMakeFiles/provlin.dir/main.cc.o.d"
  "provlin"
  "provlin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provlin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
