file(REMOVE_RECURSE
  "CMakeFiles/nested_execution_test.dir/nested_execution_test.cc.o"
  "CMakeFiles/nested_execution_test.dir/nested_execution_test.cc.o.d"
  "nested_execution_test"
  "nested_execution_test.pdb"
  "nested_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
