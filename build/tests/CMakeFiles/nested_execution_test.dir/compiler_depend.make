# Empty compiler generated dependencies file for nested_execution_test.
# This may be replaced when dependencies are built.
