file(REMOVE_RECURSE
  "CMakeFiles/forward_lineage_test.dir/forward_lineage_test.cc.o"
  "CMakeFiles/forward_lineage_test.dir/forward_lineage_test.cc.o.d"
  "forward_lineage_test"
  "forward_lineage_test.pdb"
  "forward_lineage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forward_lineage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
