# Empty dependencies file for forward_lineage_test.
# This may be replaced when dependencies are built.
