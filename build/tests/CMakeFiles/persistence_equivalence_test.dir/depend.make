# Empty dependencies file for persistence_equivalence_test.
# This may be replaced when dependencies are built.
