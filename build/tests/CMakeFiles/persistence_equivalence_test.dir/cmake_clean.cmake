file(REMOVE_RECURSE
  "CMakeFiles/persistence_equivalence_test.dir/persistence_equivalence_test.cc.o"
  "CMakeFiles/persistence_equivalence_test.dir/persistence_equivalence_test.cc.o.d"
  "persistence_equivalence_test"
  "persistence_equivalence_test.pdb"
  "persistence_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
