file(REMOVE_RECURSE
  "CMakeFiles/lineage_test.dir/lineage_test.cc.o"
  "CMakeFiles/lineage_test.dir/lineage_test.cc.o.d"
  "lineage_test"
  "lineage_test.pdb"
  "lineage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
