file(REMOVE_RECURSE
  "CMakeFiles/multirun_test.dir/multirun_test.cc.o"
  "CMakeFiles/multirun_test.dir/multirun_test.cc.o.d"
  "multirun_test"
  "multirun_test.pdb"
  "multirun_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirun_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
