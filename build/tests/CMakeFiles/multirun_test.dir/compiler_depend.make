# Empty compiler generated dependencies file for multirun_test.
# This may be replaced when dependencies are built.
