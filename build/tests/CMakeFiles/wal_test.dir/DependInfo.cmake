
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wal_test.cc" "tests/CMakeFiles/wal_test.dir/wal_test.cc.o" "gcc" "tests/CMakeFiles/wal_test.dir/wal_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/provlin_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/provlin_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/lineage/CMakeFiles/provlin_lineage.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/provlin_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/provlin_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/provlin_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/values/CMakeFiles/provlin_values.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/provlin_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/provlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
