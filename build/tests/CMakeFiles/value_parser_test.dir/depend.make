# Empty dependencies file for value_parser_test.
# This may be replaced when dependencies are built.
