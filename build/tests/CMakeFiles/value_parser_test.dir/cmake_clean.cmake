file(REMOVE_RECURSE
  "CMakeFiles/value_parser_test.dir/value_parser_test.cc.o"
  "CMakeFiles/value_parser_test.dir/value_parser_test.cc.o.d"
  "value_parser_test"
  "value_parser_test.pdb"
  "value_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
