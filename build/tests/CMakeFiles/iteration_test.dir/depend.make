# Empty dependencies file for iteration_test.
# This may be replaced when dependencies are built.
