file(REMOVE_RECURSE
  "CMakeFiles/iteration_test.dir/iteration_test.cc.o"
  "CMakeFiles/iteration_test.dir/iteration_test.cc.o.d"
  "iteration_test"
  "iteration_test.pdb"
  "iteration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iteration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
