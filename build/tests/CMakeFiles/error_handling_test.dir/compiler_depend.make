# Empty compiler generated dependencies file for error_handling_test.
# This may be replaced when dependencies are built.
