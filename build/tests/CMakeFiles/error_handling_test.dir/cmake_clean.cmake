file(REMOVE_RECURSE
  "CMakeFiles/error_handling_test.dir/error_handling_test.cc.o"
  "CMakeFiles/error_handling_test.dir/error_handling_test.cc.o.d"
  "error_handling_test"
  "error_handling_test.pdb"
  "error_handling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_handling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
