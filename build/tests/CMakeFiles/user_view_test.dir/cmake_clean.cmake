file(REMOVE_RECURSE
  "CMakeFiles/user_view_test.dir/user_view_test.cc.o"
  "CMakeFiles/user_view_test.dir/user_view_test.cc.o.d"
  "user_view_test"
  "user_view_test.pdb"
  "user_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
