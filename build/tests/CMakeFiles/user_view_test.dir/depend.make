# Empty dependencies file for user_view_test.
# This may be replaced when dependencies are built.
