# Empty compiler generated dependencies file for workflow_io_test.
# This may be replaced when dependencies are built.
