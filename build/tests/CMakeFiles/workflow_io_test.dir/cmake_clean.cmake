file(REMOVE_RECURSE
  "CMakeFiles/workflow_io_test.dir/workflow_io_test.cc.o"
  "CMakeFiles/workflow_io_test.dir/workflow_io_test.cc.o.d"
  "workflow_io_test"
  "workflow_io_test.pdb"
  "workflow_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
