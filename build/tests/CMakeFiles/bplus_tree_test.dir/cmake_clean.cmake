file(REMOVE_RECURSE
  "CMakeFiles/bplus_tree_test.dir/bplus_tree_test.cc.o"
  "CMakeFiles/bplus_tree_test.dir/bplus_tree_test.cc.o.d"
  "bplus_tree_test"
  "bplus_tree_test.pdb"
  "bplus_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bplus_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
