file(REMOVE_RECURSE
  "CMakeFiles/index_projection_test.dir/index_projection_test.cc.o"
  "CMakeFiles/index_projection_test.dir/index_projection_test.cc.o.d"
  "index_projection_test"
  "index_projection_test.pdb"
  "index_projection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_projection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
