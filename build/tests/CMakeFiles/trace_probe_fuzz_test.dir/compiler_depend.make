# Empty compiler generated dependencies file for trace_probe_fuzz_test.
# This may be replaced when dependencies are built.
