file(REMOVE_RECURSE
  "CMakeFiles/trace_probe_fuzz_test.dir/trace_probe_fuzz_test.cc.o"
  "CMakeFiles/trace_probe_fuzz_test.dir/trace_probe_fuzz_test.cc.o.d"
  "trace_probe_fuzz_test"
  "trace_probe_fuzz_test.pdb"
  "trace_probe_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_probe_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
