file(REMOVE_RECURSE
  "CMakeFiles/forward_equivalence_test.dir/forward_equivalence_test.cc.o"
  "CMakeFiles/forward_equivalence_test.dir/forward_equivalence_test.cc.o.d"
  "forward_equivalence_test"
  "forward_equivalence_test.pdb"
  "forward_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forward_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
