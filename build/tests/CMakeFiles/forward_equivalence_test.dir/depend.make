# Empty dependencies file for forward_equivalence_test.
# This may be replaced when dependencies are built.
