file(REMOVE_RECURSE
  "CMakeFiles/iteration_strategy_test.dir/iteration_strategy_test.cc.o"
  "CMakeFiles/iteration_strategy_test.dir/iteration_strategy_test.cc.o.d"
  "iteration_strategy_test"
  "iteration_strategy_test.pdb"
  "iteration_strategy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iteration_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
