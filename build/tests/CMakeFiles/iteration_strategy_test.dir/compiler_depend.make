# Empty compiler generated dependencies file for iteration_strategy_test.
# This may be replaced when dependencies are built.
