# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for iteration_strategy_test.
