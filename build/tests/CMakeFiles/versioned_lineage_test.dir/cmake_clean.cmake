file(REMOVE_RECURSE
  "CMakeFiles/versioned_lineage_test.dir/versioned_lineage_test.cc.o"
  "CMakeFiles/versioned_lineage_test.dir/versioned_lineage_test.cc.o.d"
  "versioned_lineage_test"
  "versioned_lineage_test.pdb"
  "versioned_lineage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioned_lineage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
