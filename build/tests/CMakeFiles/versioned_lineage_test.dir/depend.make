# Empty dependencies file for versioned_lineage_test.
# This may be replaced when dependencies are built.
