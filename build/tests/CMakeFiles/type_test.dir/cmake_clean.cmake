file(REMOVE_RECURSE
  "CMakeFiles/type_test.dir/type_test.cc.o"
  "CMakeFiles/type_test.dir/type_test.cc.o.d"
  "type_test"
  "type_test.pdb"
  "type_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
