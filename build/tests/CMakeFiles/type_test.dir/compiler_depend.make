# Empty compiler generated dependencies file for type_test.
# This may be replaced when dependencies are built.
