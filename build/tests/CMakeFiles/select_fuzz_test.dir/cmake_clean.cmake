file(REMOVE_RECURSE
  "CMakeFiles/select_fuzz_test.dir/select_fuzz_test.cc.o"
  "CMakeFiles/select_fuzz_test.dir/select_fuzz_test.cc.o.d"
  "select_fuzz_test"
  "select_fuzz_test.pdb"
  "select_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
