# Empty dependencies file for select_fuzz_test.
# This may be replaced when dependencies are built.
