file(REMOVE_RECURSE
  "CMakeFiles/opm_export_test.dir/opm_export_test.cc.o"
  "CMakeFiles/opm_export_test.dir/opm_export_test.cc.o.d"
  "opm_export_test"
  "opm_export_test.pdb"
  "opm_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opm_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
