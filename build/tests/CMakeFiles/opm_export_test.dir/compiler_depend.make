# Empty compiler generated dependencies file for opm_export_test.
# This may be replaced when dependencies are built.
