file(REMOVE_RECURSE
  "CMakeFiles/provenance_test.dir/provenance_test.cc.o"
  "CMakeFiles/provenance_test.dir/provenance_test.cc.o.d"
  "provenance_test"
  "provenance_test.pdb"
  "provenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
