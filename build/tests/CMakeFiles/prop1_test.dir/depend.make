# Empty dependencies file for prop1_test.
# This may be replaced when dependencies are built.
