file(REMOVE_RECURSE
  "CMakeFiles/prop1_test.dir/prop1_test.cc.o"
  "CMakeFiles/prop1_test.dir/prop1_test.cc.o.d"
  "prop1_test"
  "prop1_test.pdb"
  "prop1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
