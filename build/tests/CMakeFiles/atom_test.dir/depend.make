# Empty dependencies file for atom_test.
# This may be replaced when dependencies are built.
