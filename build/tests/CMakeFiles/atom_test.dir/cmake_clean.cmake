file(REMOVE_RECURSE
  "CMakeFiles/atom_test.dir/atom_test.cc.o"
  "CMakeFiles/atom_test.dir/atom_test.cc.o.d"
  "atom_test"
  "atom_test.pdb"
  "atom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
