# Empty compiler generated dependencies file for provenance_graph_test.
# This may be replaced when dependencies are built.
