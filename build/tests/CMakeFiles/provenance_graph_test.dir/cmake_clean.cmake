file(REMOVE_RECURSE
  "CMakeFiles/provenance_graph_test.dir/provenance_graph_test.cc.o"
  "CMakeFiles/provenance_graph_test.dir/provenance_graph_test.cc.o.d"
  "provenance_graph_test"
  "provenance_graph_test.pdb"
  "provenance_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
