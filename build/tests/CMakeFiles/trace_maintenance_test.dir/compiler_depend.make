# Empty compiler generated dependencies file for trace_maintenance_test.
# This may be replaced when dependencies are built.
