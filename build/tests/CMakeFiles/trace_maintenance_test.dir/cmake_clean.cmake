file(REMOVE_RECURSE
  "CMakeFiles/trace_maintenance_test.dir/trace_maintenance_test.cc.o"
  "CMakeFiles/trace_maintenance_test.dir/trace_maintenance_test.cc.o.d"
  "trace_maintenance_test"
  "trace_maintenance_test.pdb"
  "trace_maintenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
