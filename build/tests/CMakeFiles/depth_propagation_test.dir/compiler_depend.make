# Empty compiler generated dependencies file for depth_propagation_test.
# This may be replaced when dependencies are built.
