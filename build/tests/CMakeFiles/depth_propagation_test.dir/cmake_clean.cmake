file(REMOVE_RECURSE
  "CMakeFiles/depth_propagation_test.dir/depth_propagation_test.cc.o"
  "CMakeFiles/depth_propagation_test.dir/depth_propagation_test.cc.o.d"
  "depth_propagation_test"
  "depth_propagation_test.pdb"
  "depth_propagation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depth_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
