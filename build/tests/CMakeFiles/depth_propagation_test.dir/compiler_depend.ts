# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for depth_propagation_test.
