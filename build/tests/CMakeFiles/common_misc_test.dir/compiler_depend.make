# Empty compiler generated dependencies file for common_misc_test.
# This may be replaced when dependencies are built.
