file(REMOVE_RECURSE
  "CMakeFiles/common_misc_test.dir/common_misc_test.cc.o"
  "CMakeFiles/common_misc_test.dir/common_misc_test.cc.o.d"
  "common_misc_test"
  "common_misc_test.pdb"
  "common_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
