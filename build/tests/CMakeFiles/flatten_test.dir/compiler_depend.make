# Empty compiler generated dependencies file for flatten_test.
# This may be replaced when dependencies are built.
