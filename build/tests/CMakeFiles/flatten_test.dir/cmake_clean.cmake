file(REMOVE_RECURSE
  "CMakeFiles/flatten_test.dir/flatten_test.cc.o"
  "CMakeFiles/flatten_test.dir/flatten_test.cc.o.d"
  "flatten_test"
  "flatten_test.pdb"
  "flatten_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flatten_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
