# Empty compiler generated dependencies file for provlin_workflow.
# This may be replaced when dependencies are built.
