file(REMOVE_RECURSE
  "libprovlin_workflow.a"
)
