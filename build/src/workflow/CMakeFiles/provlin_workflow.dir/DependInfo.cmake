
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/builder.cc" "src/workflow/CMakeFiles/provlin_workflow.dir/builder.cc.o" "gcc" "src/workflow/CMakeFiles/provlin_workflow.dir/builder.cc.o.d"
  "/root/repo/src/workflow/dataflow.cc" "src/workflow/CMakeFiles/provlin_workflow.dir/dataflow.cc.o" "gcc" "src/workflow/CMakeFiles/provlin_workflow.dir/dataflow.cc.o.d"
  "/root/repo/src/workflow/depth_propagation.cc" "src/workflow/CMakeFiles/provlin_workflow.dir/depth_propagation.cc.o" "gcc" "src/workflow/CMakeFiles/provlin_workflow.dir/depth_propagation.cc.o.d"
  "/root/repo/src/workflow/diff.cc" "src/workflow/CMakeFiles/provlin_workflow.dir/diff.cc.o" "gcc" "src/workflow/CMakeFiles/provlin_workflow.dir/diff.cc.o.d"
  "/root/repo/src/workflow/graph.cc" "src/workflow/CMakeFiles/provlin_workflow.dir/graph.cc.o" "gcc" "src/workflow/CMakeFiles/provlin_workflow.dir/graph.cc.o.d"
  "/root/repo/src/workflow/iteration_strategy.cc" "src/workflow/CMakeFiles/provlin_workflow.dir/iteration_strategy.cc.o" "gcc" "src/workflow/CMakeFiles/provlin_workflow.dir/iteration_strategy.cc.o.d"
  "/root/repo/src/workflow/validate.cc" "src/workflow/CMakeFiles/provlin_workflow.dir/validate.cc.o" "gcc" "src/workflow/CMakeFiles/provlin_workflow.dir/validate.cc.o.d"
  "/root/repo/src/workflow/workflow_io.cc" "src/workflow/CMakeFiles/provlin_workflow.dir/workflow_io.cc.o" "gcc" "src/workflow/CMakeFiles/provlin_workflow.dir/workflow_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/values/CMakeFiles/provlin_values.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/provlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
