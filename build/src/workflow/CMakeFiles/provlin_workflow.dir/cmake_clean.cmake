file(REMOVE_RECURSE
  "CMakeFiles/provlin_workflow.dir/builder.cc.o"
  "CMakeFiles/provlin_workflow.dir/builder.cc.o.d"
  "CMakeFiles/provlin_workflow.dir/dataflow.cc.o"
  "CMakeFiles/provlin_workflow.dir/dataflow.cc.o.d"
  "CMakeFiles/provlin_workflow.dir/depth_propagation.cc.o"
  "CMakeFiles/provlin_workflow.dir/depth_propagation.cc.o.d"
  "CMakeFiles/provlin_workflow.dir/diff.cc.o"
  "CMakeFiles/provlin_workflow.dir/diff.cc.o.d"
  "CMakeFiles/provlin_workflow.dir/graph.cc.o"
  "CMakeFiles/provlin_workflow.dir/graph.cc.o.d"
  "CMakeFiles/provlin_workflow.dir/iteration_strategy.cc.o"
  "CMakeFiles/provlin_workflow.dir/iteration_strategy.cc.o.d"
  "CMakeFiles/provlin_workflow.dir/validate.cc.o"
  "CMakeFiles/provlin_workflow.dir/validate.cc.o.d"
  "CMakeFiles/provlin_workflow.dir/workflow_io.cc.o"
  "CMakeFiles/provlin_workflow.dir/workflow_io.cc.o.d"
  "libprovlin_workflow.a"
  "libprovlin_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provlin_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
