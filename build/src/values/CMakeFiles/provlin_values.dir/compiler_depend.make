# Empty compiler generated dependencies file for provlin_values.
# This may be replaced when dependencies are built.
