file(REMOVE_RECURSE
  "libprovlin_values.a"
)
