file(REMOVE_RECURSE
  "CMakeFiles/provlin_values.dir/atom.cc.o"
  "CMakeFiles/provlin_values.dir/atom.cc.o.d"
  "CMakeFiles/provlin_values.dir/index.cc.o"
  "CMakeFiles/provlin_values.dir/index.cc.o.d"
  "CMakeFiles/provlin_values.dir/type.cc.o"
  "CMakeFiles/provlin_values.dir/type.cc.o.d"
  "CMakeFiles/provlin_values.dir/value.cc.o"
  "CMakeFiles/provlin_values.dir/value.cc.o.d"
  "CMakeFiles/provlin_values.dir/value_parser.cc.o"
  "CMakeFiles/provlin_values.dir/value_parser.cc.o.d"
  "libprovlin_values.a"
  "libprovlin_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provlin_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
