
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/values/atom.cc" "src/values/CMakeFiles/provlin_values.dir/atom.cc.o" "gcc" "src/values/CMakeFiles/provlin_values.dir/atom.cc.o.d"
  "/root/repo/src/values/index.cc" "src/values/CMakeFiles/provlin_values.dir/index.cc.o" "gcc" "src/values/CMakeFiles/provlin_values.dir/index.cc.o.d"
  "/root/repo/src/values/type.cc" "src/values/CMakeFiles/provlin_values.dir/type.cc.o" "gcc" "src/values/CMakeFiles/provlin_values.dir/type.cc.o.d"
  "/root/repo/src/values/value.cc" "src/values/CMakeFiles/provlin_values.dir/value.cc.o" "gcc" "src/values/CMakeFiles/provlin_values.dir/value.cc.o.d"
  "/root/repo/src/values/value_parser.cc" "src/values/CMakeFiles/provlin_values.dir/value_parser.cc.o" "gcc" "src/values/CMakeFiles/provlin_values.dir/value_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
