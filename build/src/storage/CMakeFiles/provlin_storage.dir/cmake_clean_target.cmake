file(REMOVE_RECURSE
  "libprovlin_storage.a"
)
