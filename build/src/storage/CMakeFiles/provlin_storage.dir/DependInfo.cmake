
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bplus_tree.cc" "src/storage/CMakeFiles/provlin_storage.dir/bplus_tree.cc.o" "gcc" "src/storage/CMakeFiles/provlin_storage.dir/bplus_tree.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/storage/CMakeFiles/provlin_storage.dir/database.cc.o" "gcc" "src/storage/CMakeFiles/provlin_storage.dir/database.cc.o.d"
  "/root/repo/src/storage/datum.cc" "src/storage/CMakeFiles/provlin_storage.dir/datum.cc.o" "gcc" "src/storage/CMakeFiles/provlin_storage.dir/datum.cc.o.d"
  "/root/repo/src/storage/hash_index.cc" "src/storage/CMakeFiles/provlin_storage.dir/hash_index.cc.o" "gcc" "src/storage/CMakeFiles/provlin_storage.dir/hash_index.cc.o.d"
  "/root/repo/src/storage/query.cc" "src/storage/CMakeFiles/provlin_storage.dir/query.cc.o" "gcc" "src/storage/CMakeFiles/provlin_storage.dir/query.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/provlin_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/provlin_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/serialize.cc" "src/storage/CMakeFiles/provlin_storage.dir/serialize.cc.o" "gcc" "src/storage/CMakeFiles/provlin_storage.dir/serialize.cc.o.d"
  "/root/repo/src/storage/sql.cc" "src/storage/CMakeFiles/provlin_storage.dir/sql.cc.o" "gcc" "src/storage/CMakeFiles/provlin_storage.dir/sql.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/provlin_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/provlin_storage.dir/table.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/provlin_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/provlin_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
