file(REMOVE_RECURSE
  "CMakeFiles/provlin_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/provlin_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/provlin_storage.dir/database.cc.o"
  "CMakeFiles/provlin_storage.dir/database.cc.o.d"
  "CMakeFiles/provlin_storage.dir/datum.cc.o"
  "CMakeFiles/provlin_storage.dir/datum.cc.o.d"
  "CMakeFiles/provlin_storage.dir/hash_index.cc.o"
  "CMakeFiles/provlin_storage.dir/hash_index.cc.o.d"
  "CMakeFiles/provlin_storage.dir/query.cc.o"
  "CMakeFiles/provlin_storage.dir/query.cc.o.d"
  "CMakeFiles/provlin_storage.dir/schema.cc.o"
  "CMakeFiles/provlin_storage.dir/schema.cc.o.d"
  "CMakeFiles/provlin_storage.dir/serialize.cc.o"
  "CMakeFiles/provlin_storage.dir/serialize.cc.o.d"
  "CMakeFiles/provlin_storage.dir/sql.cc.o"
  "CMakeFiles/provlin_storage.dir/sql.cc.o.d"
  "CMakeFiles/provlin_storage.dir/table.cc.o"
  "CMakeFiles/provlin_storage.dir/table.cc.o.d"
  "CMakeFiles/provlin_storage.dir/wal.cc.o"
  "CMakeFiles/provlin_storage.dir/wal.cc.o.d"
  "libprovlin_storage.a"
  "libprovlin_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provlin_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
