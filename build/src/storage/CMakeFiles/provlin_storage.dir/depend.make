# Empty dependencies file for provlin_storage.
# This may be replaced when dependencies are built.
