# Empty compiler generated dependencies file for provlin_cli.
# This may be replaced when dependencies are built.
