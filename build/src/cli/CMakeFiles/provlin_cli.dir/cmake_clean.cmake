file(REMOVE_RECURSE
  "CMakeFiles/provlin_cli.dir/cli.cc.o"
  "CMakeFiles/provlin_cli.dir/cli.cc.o.d"
  "libprovlin_cli.a"
  "libprovlin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provlin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
