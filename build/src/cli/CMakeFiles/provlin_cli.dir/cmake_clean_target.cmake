file(REMOVE_RECURSE
  "libprovlin_cli.a"
)
