file(REMOVE_RECURSE
  "libprovlin_common.a"
)
