# Empty compiler generated dependencies file for provlin_common.
# This may be replaced when dependencies are built.
