file(REMOVE_RECURSE
  "CMakeFiles/provlin_common.dir/logging.cc.o"
  "CMakeFiles/provlin_common.dir/logging.cc.o.d"
  "CMakeFiles/provlin_common.dir/status.cc.o"
  "CMakeFiles/provlin_common.dir/status.cc.o.d"
  "CMakeFiles/provlin_common.dir/string_util.cc.o"
  "CMakeFiles/provlin_common.dir/string_util.cc.o.d"
  "libprovlin_common.a"
  "libprovlin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provlin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
