file(REMOVE_RECURSE
  "CMakeFiles/provlin_provenance.dir/opm_export.cc.o"
  "CMakeFiles/provlin_provenance.dir/opm_export.cc.o.d"
  "CMakeFiles/provlin_provenance.dir/provenance_graph.cc.o"
  "CMakeFiles/provlin_provenance.dir/provenance_graph.cc.o.d"
  "CMakeFiles/provlin_provenance.dir/recorder.cc.o"
  "CMakeFiles/provlin_provenance.dir/recorder.cc.o.d"
  "CMakeFiles/provlin_provenance.dir/schema.cc.o"
  "CMakeFiles/provlin_provenance.dir/schema.cc.o.d"
  "CMakeFiles/provlin_provenance.dir/trace_store.cc.o"
  "CMakeFiles/provlin_provenance.dir/trace_store.cc.o.d"
  "libprovlin_provenance.a"
  "libprovlin_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provlin_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
