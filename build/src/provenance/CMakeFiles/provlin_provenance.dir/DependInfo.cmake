
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/provenance/opm_export.cc" "src/provenance/CMakeFiles/provlin_provenance.dir/opm_export.cc.o" "gcc" "src/provenance/CMakeFiles/provlin_provenance.dir/opm_export.cc.o.d"
  "/root/repo/src/provenance/provenance_graph.cc" "src/provenance/CMakeFiles/provlin_provenance.dir/provenance_graph.cc.o" "gcc" "src/provenance/CMakeFiles/provlin_provenance.dir/provenance_graph.cc.o.d"
  "/root/repo/src/provenance/recorder.cc" "src/provenance/CMakeFiles/provlin_provenance.dir/recorder.cc.o" "gcc" "src/provenance/CMakeFiles/provlin_provenance.dir/recorder.cc.o.d"
  "/root/repo/src/provenance/schema.cc" "src/provenance/CMakeFiles/provlin_provenance.dir/schema.cc.o" "gcc" "src/provenance/CMakeFiles/provlin_provenance.dir/schema.cc.o.d"
  "/root/repo/src/provenance/trace_store.cc" "src/provenance/CMakeFiles/provlin_provenance.dir/trace_store.cc.o" "gcc" "src/provenance/CMakeFiles/provlin_provenance.dir/trace_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/provlin_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/provlin_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/provlin_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/values/CMakeFiles/provlin_values.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/provlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
