file(REMOVE_RECURSE
  "libprovlin_provenance.a"
)
