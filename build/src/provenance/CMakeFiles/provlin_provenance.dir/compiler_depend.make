# Empty compiler generated dependencies file for provlin_provenance.
# This may be replaced when dependencies are built.
