# Empty compiler generated dependencies file for provlin_lineage.
# This may be replaced when dependencies are built.
