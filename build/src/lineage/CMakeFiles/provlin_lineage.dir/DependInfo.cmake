
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lineage/binding_retrieval.cc" "src/lineage/CMakeFiles/provlin_lineage.dir/binding_retrieval.cc.o" "gcc" "src/lineage/CMakeFiles/provlin_lineage.dir/binding_retrieval.cc.o.d"
  "/root/repo/src/lineage/forward_lineage.cc" "src/lineage/CMakeFiles/provlin_lineage.dir/forward_lineage.cc.o" "gcc" "src/lineage/CMakeFiles/provlin_lineage.dir/forward_lineage.cc.o.d"
  "/root/repo/src/lineage/index_proj_lineage.cc" "src/lineage/CMakeFiles/provlin_lineage.dir/index_proj_lineage.cc.o" "gcc" "src/lineage/CMakeFiles/provlin_lineage.dir/index_proj_lineage.cc.o.d"
  "/root/repo/src/lineage/index_projection.cc" "src/lineage/CMakeFiles/provlin_lineage.dir/index_projection.cc.o" "gcc" "src/lineage/CMakeFiles/provlin_lineage.dir/index_projection.cc.o.d"
  "/root/repo/src/lineage/naive_lineage.cc" "src/lineage/CMakeFiles/provlin_lineage.dir/naive_lineage.cc.o" "gcc" "src/lineage/CMakeFiles/provlin_lineage.dir/naive_lineage.cc.o.d"
  "/root/repo/src/lineage/query.cc" "src/lineage/CMakeFiles/provlin_lineage.dir/query.cc.o" "gcc" "src/lineage/CMakeFiles/provlin_lineage.dir/query.cc.o.d"
  "/root/repo/src/lineage/user_view.cc" "src/lineage/CMakeFiles/provlin_lineage.dir/user_view.cc.o" "gcc" "src/lineage/CMakeFiles/provlin_lineage.dir/user_view.cc.o.d"
  "/root/repo/src/lineage/versioned_lineage.cc" "src/lineage/CMakeFiles/provlin_lineage.dir/versioned_lineage.cc.o" "gcc" "src/lineage/CMakeFiles/provlin_lineage.dir/versioned_lineage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/provenance/CMakeFiles/provlin_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/provlin_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/provlin_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/values/CMakeFiles/provlin_values.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/provlin_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/provlin_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
