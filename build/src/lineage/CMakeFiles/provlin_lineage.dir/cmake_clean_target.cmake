file(REMOVE_RECURSE
  "libprovlin_lineage.a"
)
