file(REMOVE_RECURSE
  "CMakeFiles/provlin_lineage.dir/binding_retrieval.cc.o"
  "CMakeFiles/provlin_lineage.dir/binding_retrieval.cc.o.d"
  "CMakeFiles/provlin_lineage.dir/forward_lineage.cc.o"
  "CMakeFiles/provlin_lineage.dir/forward_lineage.cc.o.d"
  "CMakeFiles/provlin_lineage.dir/index_proj_lineage.cc.o"
  "CMakeFiles/provlin_lineage.dir/index_proj_lineage.cc.o.d"
  "CMakeFiles/provlin_lineage.dir/index_projection.cc.o"
  "CMakeFiles/provlin_lineage.dir/index_projection.cc.o.d"
  "CMakeFiles/provlin_lineage.dir/naive_lineage.cc.o"
  "CMakeFiles/provlin_lineage.dir/naive_lineage.cc.o.d"
  "CMakeFiles/provlin_lineage.dir/query.cc.o"
  "CMakeFiles/provlin_lineage.dir/query.cc.o.d"
  "CMakeFiles/provlin_lineage.dir/user_view.cc.o"
  "CMakeFiles/provlin_lineage.dir/user_view.cc.o.d"
  "CMakeFiles/provlin_lineage.dir/versioned_lineage.cc.o"
  "CMakeFiles/provlin_lineage.dir/versioned_lineage.cc.o.d"
  "libprovlin_lineage.a"
  "libprovlin_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provlin_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
