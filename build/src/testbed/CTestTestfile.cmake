# CMake generated Testfile for 
# Source directory: /root/repo/src/testbed
# Build directory: /root/repo/build/src/testbed
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
