# Empty dependencies file for provlin_testbed.
# This may be replaced when dependencies are built.
