file(REMOVE_RECURSE
  "libprovlin_testbed.a"
)
