file(REMOVE_RECURSE
  "CMakeFiles/provlin_testbed.dir/gk_workflow.cc.o"
  "CMakeFiles/provlin_testbed.dir/gk_workflow.cc.o.d"
  "CMakeFiles/provlin_testbed.dir/kegg_sim.cc.o"
  "CMakeFiles/provlin_testbed.dir/kegg_sim.cc.o.d"
  "CMakeFiles/provlin_testbed.dir/pd_workflow.cc.o"
  "CMakeFiles/provlin_testbed.dir/pd_workflow.cc.o.d"
  "CMakeFiles/provlin_testbed.dir/pubmed_sim.cc.o"
  "CMakeFiles/provlin_testbed.dir/pubmed_sim.cc.o.d"
  "CMakeFiles/provlin_testbed.dir/synthetic.cc.o"
  "CMakeFiles/provlin_testbed.dir/synthetic.cc.o.d"
  "CMakeFiles/provlin_testbed.dir/workbench.cc.o"
  "CMakeFiles/provlin_testbed.dir/workbench.cc.o.d"
  "libprovlin_testbed.a"
  "libprovlin_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provlin_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
