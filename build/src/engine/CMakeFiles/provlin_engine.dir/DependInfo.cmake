
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/activity.cc" "src/engine/CMakeFiles/provlin_engine.dir/activity.cc.o" "gcc" "src/engine/CMakeFiles/provlin_engine.dir/activity.cc.o.d"
  "/root/repo/src/engine/builtin_activities.cc" "src/engine/CMakeFiles/provlin_engine.dir/builtin_activities.cc.o" "gcc" "src/engine/CMakeFiles/provlin_engine.dir/builtin_activities.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/provlin_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/provlin_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/iteration.cc" "src/engine/CMakeFiles/provlin_engine.dir/iteration.cc.o" "gcc" "src/engine/CMakeFiles/provlin_engine.dir/iteration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/provlin_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/values/CMakeFiles/provlin_values.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/provlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
