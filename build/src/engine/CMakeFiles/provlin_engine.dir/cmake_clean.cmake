file(REMOVE_RECURSE
  "CMakeFiles/provlin_engine.dir/activity.cc.o"
  "CMakeFiles/provlin_engine.dir/activity.cc.o.d"
  "CMakeFiles/provlin_engine.dir/builtin_activities.cc.o"
  "CMakeFiles/provlin_engine.dir/builtin_activities.cc.o.d"
  "CMakeFiles/provlin_engine.dir/executor.cc.o"
  "CMakeFiles/provlin_engine.dir/executor.cc.o.d"
  "CMakeFiles/provlin_engine.dir/iteration.cc.o"
  "CMakeFiles/provlin_engine.dir/iteration.cc.o.d"
  "libprovlin_engine.a"
  "libprovlin_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provlin_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
