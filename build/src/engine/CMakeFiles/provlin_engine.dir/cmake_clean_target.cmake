file(REMOVE_RECURSE
  "libprovlin_engine.a"
)
