# Empty compiler generated dependencies file for provlin_engine.
# This may be replaced when dependencies are built.
