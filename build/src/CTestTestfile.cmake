# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("values")
subdirs("storage")
subdirs("workflow")
subdirs("engine")
subdirs("provenance")
subdirs("lineage")
subdirs("testbed")
subdirs("cli")
