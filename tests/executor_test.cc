// The dataflow interpreter: iteration fan-out, event emission, output
// assembly, and failure handling.

#include "engine/executor.h"

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "workflow/builder.h"

namespace provlin::engine {
namespace {

using workflow::DataflowBuilder;
using workflow::IterationStrategy;
using workflow::PortRef;

/// Observer that records every event for assertions.
class RecordingObserver : public ExecutionObserver {
 public:
  struct Xform {
    std::string processor;
    std::vector<BindingEvent> ins;
    std::vector<BindingEvent> outs;
  };
  struct Xfer {
    PortRef src, dst;
    Index index;
    Value element;
  };

  void OnRunStart(const std::string& run_id,
                  const workflow::Dataflow&) override {
    run_ids.push_back(run_id);
  }
  void OnWorkflowInput(const std::string& port, const Value& v) override {
    inputs.emplace_back(port, v);
  }
  void OnXform(const std::string& processor,
               const std::vector<BindingEvent>& ins,
               const std::vector<BindingEvent>& outs) override {
    xforms.push_back({processor, ins, outs});
  }
  void OnXfer(const PortRef& src, const PortRef& dst, const Index& index,
              const Value& element) override {
    xfers.push_back({src, dst, index, element});
  }
  void OnWorkflowOutput(const std::string& port, const Value& v) override {
    outputs.emplace_back(port, v);
  }
  void OnRunEnd(const std::string&, const Status& status) override {
    end_status = status;
  }

  std::vector<std::string> run_ids;
  std::vector<std::pair<std::string, Value>> inputs;
  std::vector<Xform> xforms;
  std::vector<Xfer> xfers;
  std::vector<std::pair<std::string, Value>> outputs;
  Status end_status;
};

std::shared_ptr<const workflow::Dataflow> UpperChain() {
  DataflowBuilder b("upper_chain");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("up")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "up:x");
  b.Arc("up:y", "workflow:out");
  return *b.Build();
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() { RegisterBuiltinActivities(&registry_); }
  ActivityRegistry registry_;
};

TEST_F(ExecutorTest, ElementWiseExecution) {
  RecordingObserver obs;
  Executor ex(&registry_, &obs);
  auto result = ex.Execute(*UpperChain(),
                           {{"in", Value::StringList({"a", "b", "c"})}},
                           "r1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outputs.at("out"), Value::StringList({"A", "B", "C"}));
  EXPECT_EQ(result->total_invocations, 3u);
  EXPECT_EQ(result->run_id, "r1");
  EXPECT_TRUE(obs.end_status.ok());
  EXPECT_EQ(obs.run_ids, (std::vector<std::string>{"r1"}));
}

TEST_F(ExecutorTest, XformEventsCarryFineIndices) {
  RecordingObserver obs;
  Executor ex(&registry_, &obs);
  ASSERT_TRUE(ex.Execute(*UpperChain(),
                         {{"in", Value::StringList({"a", "b"})}}, "r1")
                  .ok());
  ASSERT_EQ(obs.xforms.size(), 2u);
  EXPECT_EQ(obs.xforms[0].processor, "up");
  EXPECT_EQ(obs.xforms[0].ins[0].index, Index({0}));
  EXPECT_EQ(obs.xforms[0].ins[0].value, Value::Str("a"));
  EXPECT_EQ(obs.xforms[0].outs[0].index, Index({0}));
  EXPECT_EQ(obs.xforms[0].outs[0].value, Value::Str("A"));
  EXPECT_EQ(obs.xforms[1].ins[0].index, Index({1}));
}

TEST_F(ExecutorTest, XferGranularityFollowsProducer) {
  RecordingObserver obs;
  Executor ex(&registry_, &obs);
  ASSERT_TRUE(ex.Execute(*UpperChain(),
                         {{"in", Value::StringList({"a", "b"})}}, "r1")
                  .ok());
  // workflow:in -> up:x is coarse (input granularity is whole-value);
  // up:y -> workflow:out is coarse by the workflow-output rule.
  ASSERT_EQ(obs.xfers.size(), 2u);
  EXPECT_EQ(obs.xfers[0].src.ToString(), "workflow:in");
  EXPECT_EQ(obs.xfers[0].index, Index());
  EXPECT_EQ(obs.xfers[1].dst.ToString(), "workflow:out");
  EXPECT_EQ(obs.xfers[1].index, Index());
}

TEST_F(ExecutorTest, MidChainXferIsFineGrained) {
  DataflowBuilder b("two_steps");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("up")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Proc("low")
      .Activity("to_lower")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "up:x");
  b.Arc("up:y", "low:x");
  b.Arc("low:y", "workflow:out");
  auto flow = *b.Build();

  RecordingObserver obs;
  Executor ex(&registry_, &obs);
  ASSERT_TRUE(
      ex.Execute(*flow, {{"in", Value::StringList({"a", "b"})}}, "r1").ok());
  // The up->low arc transfers at the producer's per-element granularity.
  int fine = 0;
  for (const auto& x : obs.xfers) {
    if (x.src.ToString() == "up:y") {
      EXPECT_EQ(x.dst.ToString(), "low:x");
      EXPECT_EQ(x.index.length(), 1u);
      ++fine;
    }
  }
  EXPECT_EQ(fine, 2);
}

TEST_F(ExecutorTest, CrossProductShapesOutput) {
  DataflowBuilder b("cross");
  b.Input("a", PortType::String(1));
  b.Input("bb", PortType::String(1));
  b.Output("out", PortType::String(2));
  b.Proc("join")
      .Activity("concat2")
      .In("x1", PortType::String(0))
      .In("x2", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:a", "join:x1");
  b.Arc("workflow:bb", "join:x2");
  b.Arc("join:y", "workflow:out");
  auto flow = *b.Build();

  Executor ex(&registry_, nullptr);
  auto result = ex.Execute(*flow,
                           {{"a", Value::StringList({"1", "2"})},
                            {"bb", Value::StringList({"x", "y", "z"})}},
                           "r1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Value& out = result->outputs.at("out");
  ASSERT_EQ(out.depth(), 2);
  ASSERT_EQ(out.list_size(), 2u);
  EXPECT_EQ(out.elements()[0].list_size(), 3u);
  EXPECT_EQ(*out.At(Index({1, 2})), Value::Str("2+z"));
  EXPECT_EQ(result->total_invocations, 6u);
}

TEST_F(ExecutorTest, DotStrategyZips) {
  DataflowBuilder b("zip");
  b.Input("a", PortType::String(1));
  b.Input("bb", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("join")
      .Activity("concat2")
      .Strategy(IterationStrategy::kDot)
      .In("x1", PortType::String(0))
      .In("x2", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:a", "join:x1");
  b.Arc("workflow:bb", "join:x2");
  b.Arc("join:y", "workflow:out");
  auto flow = *b.Build();

  Executor ex(&registry_, nullptr);
  auto result = ex.Execute(*flow,
                           {{"a", Value::StringList({"1", "2"})},
                            {"bb", Value::StringList({"x", "y"})}},
                           "r1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outputs.at("out"), Value::StringList({"1+x", "2+y"}));
}

TEST_F(ExecutorTest, EmptyInputListProducesEmptyOutput) {
  Executor ex(&registry_, nullptr);
  auto result = ex.Execute(*UpperChain(), {{"in", Value::List({})}}, "r1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outputs.at("out"), Value::List({}));
  EXPECT_EQ(result->total_invocations, 0u);
}

TEST_F(ExecutorTest, DefaultsBindUnconnectedInputs) {
  DataflowBuilder b("defaults");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("p")
      .Activity("concat2")
      .In("x1", PortType::String(0))
      .In("x2", PortType::String(0))
      .Default("x2", Value::Str("!"))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x1");
  b.Arc("p:y", "workflow:out");
  auto flow = *b.Build();

  Executor ex(&registry_, nullptr);
  auto result =
      ex.Execute(*flow, {{"in", Value::StringList({"a", "b"})}}, "r1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outputs.at("out"), Value::StringList({"a+!", "b+!"}));
}

TEST_F(ExecutorTest, MissingInputRejected) {
  Executor ex(&registry_, nullptr);
  auto result = ex.Execute(*UpperChain(), {}, "r1");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, WrongInputDepthRejected) {
  Executor ex(&registry_, nullptr);
  // Declared list(string), bound a bare string: assumption 2 violated.
  auto result = ex.Execute(*UpperChain(), {{"in", Value::Str("x")}}, "r1");
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecutorTest, WrongInputBaseTypeRejected) {
  Executor ex(&registry_, nullptr);
  auto result = ex.Execute(
      *UpperChain(), {{"in", Value::List({Value::Int(1)})}}, "r1");
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecutorTest, ActivityErrorPropagatesAndEndsRun) {
  DataflowBuilder b("failing");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("boom")
      .Activity("head")  // head on atoms fails
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "boom:x");
  b.Arc("boom:y", "workflow:out");
  auto flow = *b.Build();

  RecordingObserver obs;
  Executor ex(&registry_, &obs);
  auto result =
      ex.Execute(*flow, {{"in", Value::StringList({"a"})}}, "r1");
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecutorTest, UnknownActivityRejected) {
  DataflowBuilder b("ghost");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("p")
      .Activity("ghost_activity")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x");
  b.Arc("p:y", "workflow:out");
  auto flow = *b.Build();

  Executor ex(&registry_, nullptr);
  EXPECT_FALSE(
      ex.Execute(*flow, {{"in", Value::StringList({"a"})}}, "r1").ok());
}

TEST_F(ExecutorTest, ActivityOutputDepthViolationDetected) {
  // An activity whose output does not match the declared depth trips the
  // assumption-1 check.
  ActivityRegistry registry;
  RegisterBuiltinActivities(&registry);
  ASSERT_TRUE(
      registry
          .Register("bad_depth",
                    [](const ActivityConfig&)
                        -> Result<std::shared_ptr<Activity>> {
                      return std::shared_ptr<Activity>(new LambdaActivity(
                          [](const std::vector<Value>&)
                              -> Result<std::vector<Value>> {
                            return std::vector<Value>{
                                Value::StringList({"list", "not", "atom"})};
                          }));
                    })
          .ok());

  DataflowBuilder b("bad");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("p")
      .Activity("bad_depth")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));  // declared scalar, returns a list
  b.Arc("workflow:in", "p:x");
  b.Arc("p:y", "workflow:out");
  auto flow = *b.Build();

  Executor ex(&registry, nullptr);
  auto result =
      ex.Execute(*flow, {{"in", Value::StringList({"a"})}}, "r1");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(ExecutorTest, PortValuesExposeIntermediates) {
  Executor ex(&registry_, nullptr);
  auto result =
      ex.Execute(*UpperChain(), {{"in", Value::StringList({"a"})}}, "r1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->port_values.at("up:y"), Value::StringList({"A"}));
  EXPECT_EQ(result->port_values.at("workflow:in"),
            Value::StringList({"a"}));
}

TEST_F(ExecutorTest, MultiOutputProcessor) {
  ActivityRegistry registry;
  ASSERT_TRUE(registry
                  .Register("split_case",
                            [](const ActivityConfig&)
                                -> Result<std::shared_ptr<Activity>> {
                              return std::shared_ptr<Activity>(
                                  new LambdaActivity(
                                      [](const std::vector<Value>& in)
                                          -> Result<std::vector<Value>> {
                                        std::string s =
                                            in[0].atom().AsString();
                                        return std::vector<Value>{
                                            Value::Str(s + "_upper"),
                                            Value::Str(s + "_lower")};
                                      }));
                            })
                  .ok());

  workflow::DataflowBuilder b("multi_out");
  b.Input("in", PortType::String(1));
  b.Output("ups", PortType::String(1));
  b.Output("lows", PortType::String(1));
  b.Proc("p")
      .Activity("split_case")
      .In("x", PortType::String(0))
      .Out("u", PortType::String(0))
      .Out("l", PortType::String(0));
  b.Arc("workflow:in", "p:x");
  b.Arc("p:u", "workflow:ups");
  b.Arc("p:l", "workflow:lows");
  auto flow = *b.Build();

  Executor ex(&registry, nullptr);
  auto result =
      ex.Execute(*flow, {{"in", Value::StringList({"a", "b"})}}, "r1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outputs.at("ups"),
            Value::StringList({"a_upper", "b_upper"}));
  EXPECT_EQ(result->outputs.at("lows"),
            Value::StringList({"a_lower", "b_lower"}));
}

}  // namespace
}  // namespace provlin::engine
