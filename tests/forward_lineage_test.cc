// Forward (impact) lineage: unit behaviour on known workflows.

#include "lineage/forward_lineage.h"

#include <gtest/gtest.h>

#include "lineage/index_pattern.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::lineage {
namespace {

using testbed::Workbench;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

TEST(IndexPattern, BasicsAndMatching) {
  IndexPattern p(Index({1, 2}));
  EXPECT_EQ(p.ToString(), "[2,3]");
  EXPECT_TRUE(p.Overlaps(Index({1, 2})));
  EXPECT_TRUE(p.Overlaps(Index({1})));       // coarser covering index
  EXPECT_TRUE(p.Overlaps(Index({1, 2, 9}))); // finer index below
  EXPECT_FALSE(p.Overlaps(Index({1, 3})));
  EXPECT_FALSE(p.Overlaps(Index({0})));
  EXPECT_TRUE(p.Overlaps(Index()));          // [] overlaps everything
}

TEST(IndexPattern, WildcardsAndKnownPrefix) {
  IndexPattern p;
  p.AppendWildcard();
  p.AppendKnown(4);
  EXPECT_EQ(p.ToString(), "[*,5]");
  EXPECT_TRUE(p.Overlaps(Index({9, 4})));
  EXPECT_FALSE(p.Overlaps(Index({9, 5})));
  EXPECT_TRUE(p.Overlaps(Index({9})));
  EXPECT_EQ(p.KnownPrefix(), Index());  // leading wildcard blocks prefix

  IndexPattern q(Index({3}));
  q.AppendWildcard();
  EXPECT_EQ(q.KnownPrefix(), Index({3}));
  EXPECT_FALSE(q.AllWildcards());
  EXPECT_TRUE(IndexPattern::Any().AllWildcards());
}

class ForwardSynthetic : public ::testing::Test {
 protected:
  void SetUp() override {
    wb_ = std::move(*Workbench::Synthetic(3));
    ASSERT_TRUE(wb_->RunSynthetic(4, "r0").ok());
    auto fwd = ForwardIndexProjLineage::Create(wb_->flow(), wb_->store());
    ASSERT_TRUE(fwd.ok());
    fwd_.emplace(std::move(*fwd));
  }

  NaiveForwardLineage Naive() { return NaiveForwardLineage(wb_->store()); }

  std::unique_ptr<Workbench> wb_;
  std::optional<ForwardIndexProjLineage> fwd_;
};

TEST_F(ForwardSynthetic, ElementImpactsOneRowAndOneColumn) {
  // Element e1 of the generated list flows down both chains; through the
  // cross product it reaches row 1 (via chain A) and column 1 (via chain
  // B) of the final d*d result.
  PortRef target{testbed::kListGen, "list"};
  InterestSet interest{kWorkflowProcessor};

  auto ni = Naive().Query("r0", target, Index({1}), interest);
  ASSERT_TRUE(ni.ok()) << ni.status().ToString();
  auto ip = fwd_->Query("r0", target, Index({1}), interest);
  ASSERT_TRUE(ip.ok()) << ip.status().ToString();
  EXPECT_EQ(ni->bindings, ip->bindings);

  // 4 row entries + 4 column entries, overlapping at [1,1]: 7 bindings.
  ASSERT_EQ(ip->bindings.size(), 7u);
  for (const auto& b : ip->bindings) {
    EXPECT_EQ(b.port.ToString(), "workflow:RESULT");
    EXPECT_TRUE(b.index[0] == 1 || b.index[1] == 1) << b.ToString();
  }
}

TEST_F(ForwardSynthetic, ImpactThroughOneChainOnly) {
  // From a mid-chain-A binding, the impact covers exactly row 2.
  PortRef target{testbed::ChainAProc(2), "y"};
  auto ip = fwd_->Query("r0", target, Index({2}), {kWorkflowProcessor});
  ASSERT_TRUE(ip.ok());
  ASSERT_EQ(ip->bindings.size(), 4u);
  for (const auto& b : ip->bindings) {
    EXPECT_EQ(b.index[0], 2) << b.ToString();
  }
  auto ni = Naive().Query("r0", target, Index({2}), {kWorkflowProcessor});
  ASSERT_TRUE(ni.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
}

TEST_F(ForwardSynthetic, FocusedOnIntermediateProcessor) {
  // Impact of list element 0 on CHAINB_2's outputs only.
  PortRef target{kWorkflowProcessor, "ListSize"};
  InterestSet interest{testbed::ChainBProc(2)};
  auto ip = fwd_->Query("r0", target, Index(), interest);
  ASSERT_TRUE(ip.ok());
  // The size scalar impacts every element: 4 out bindings of CHAINB_2.
  EXPECT_EQ(ip->bindings.size(), 4u);
  auto ni = Naive().Query("r0", target, Index(), interest);
  ASSERT_TRUE(ni.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
}

TEST_F(ForwardSynthetic, WholeValueImpactCoversEverything) {
  PortRef target{testbed::kListGen, "list"};
  auto ip = fwd_->Query("r0", target, Index(), {kWorkflowProcessor});
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->bindings.size(), 16u);  // the full 4x4 result
  auto ni = Naive().Query("r0", target, Index(), {kWorkflowProcessor});
  ASSERT_TRUE(ni.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
}

TEST_F(ForwardSynthetic, ForwardFromWorkflowOutputIsEmpty) {
  auto ip = fwd_->Query("r0", {kWorkflowProcessor, "RESULT"}, Index({0, 0}),
                        {});
  ASSERT_TRUE(ip.ok());
  EXPECT_TRUE(ip->bindings.empty());
}

TEST_F(ForwardSynthetic, UnknownTargetFails) {
  EXPECT_FALSE(fwd_->Query("r0", {"ghost", "y"}, Index(), {}).ok());
  EXPECT_FALSE(
      fwd_->Query("r0", {testbed::kListGen, "ghost"}, Index(), {}).ok());
}

TEST_F(ForwardSynthetic, ProbeAsymmetryFavorsIndexProj) {
  PortRef target{kWorkflowProcessor, "ListSize"};
  InterestSet interest{kWorkflowProcessor};
  auto ni = Naive().Query("r0", target, Index(), interest);
  auto ip = fwd_->Query("r0", target, Index(), interest);
  ASSERT_TRUE(ni.ok());
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
  EXPECT_GT(ni->timing.trace_probes, ip->timing.trace_probes);
}

TEST_F(ForwardSynthetic, MultiRunImpact) {
  ASSERT_TRUE(wb_->RunSynthetic(3, "r1").ok());
  auto ip = fwd_->QueryMultiRun({"r0", "r1"}, {testbed::kListGen, "list"},
                                Index({0}), {kWorkflowProcessor});
  ASSERT_TRUE(ip.ok());
  std::set<std::string> runs;
  for (const auto& b : ip->bindings) runs.insert(b.run_id);
  EXPECT_EQ(runs, (std::set<std::string>{"r0", "r1"}));
}

TEST_F(ForwardSynthetic, TargetAtProcessorInputPort) {
  // Starting at a consumer-side binding: impact of the element arriving
  // at CHAINB_2:x[2] covers column 2 of the result.
  PortRef target{testbed::ChainBProc(2), "x"};
  auto ip = fwd_->Query("r0", target, Index({2}), {kWorkflowProcessor});
  ASSERT_TRUE(ip.ok()) << ip.status().ToString();
  ASSERT_EQ(ip->bindings.size(), 4u);
  for (const auto& b : ip->bindings) {
    EXPECT_EQ(b.index[1], 2) << b.ToString();
  }
  auto ni = Naive().Query("r0", target, Index({2}), {kWorkflowProcessor});
  ASSERT_TRUE(ni.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
}

TEST_F(ForwardSynthetic, PlanCacheReusedAcrossForwardQueries) {
  PortRef target{testbed::kListGen, "list"};
  fwd_->ClearPlanCache();
  auto first = fwd_->Query("r0", target, Index({0}), {kWorkflowProcessor});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->timing.plan_cache_hit);
  auto second = fwd_->Query("r0", target, Index({0}), {kWorkflowProcessor});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->timing.plan_cache_hit);
  EXPECT_EQ(first->bindings, second->bindings);
}

}  // namespace
}  // namespace provlin::lineage
