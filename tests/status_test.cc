#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace provlin {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("row 7").ToString(), "NotFound: row 7");
  EXPECT_EQ(Status::Corruption("bad page").ToString(), "Corruption: bad page");
}

TEST(Status, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_FALSE(Status::NotFound("").IsInvalidArgument());
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r(std::string("hi"));
  EXPECT_EQ(r.value_or("fallback"), "hi");
}

TEST(Result, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

namespace macros {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  PROVLIN_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubler(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UseAssign(int x) {
  PROVLIN_ASSIGN_OR_RETURN(int doubled, Doubler(x));
  return doubled + 1;
}

}  // namespace macros

TEST(ResultMacros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macros::Chain(1).ok());
  EXPECT_EQ(macros::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultMacros, AssignOrReturnBindsValue) {
  auto r = macros::UseAssign(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
}

TEST(ResultMacros, AssignOrReturnPropagatesError) {
  auto r = macros::UseAssign(-3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace provlin
