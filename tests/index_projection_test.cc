// The index projection rule (Def. 4) in isolation.

#include "lineage/index_projection.h"

#include "workflow/iteration_strategy.h"

#include <gtest/gtest.h>

namespace provlin::lineage {
namespace {

using workflow::IterationStrategy;
using workflow::Port;
using workflow::Processor;
using workflow::ProcessorDepths;

Processor MakeProc(size_t inputs, IterationStrategy strategy) {
  Processor p;
  p.name = "P";
  p.strategy = strategy;
  for (size_t i = 0; i < inputs; ++i) {
    p.inputs.push_back(Port{"X" + std::to_string(i + 1), PortType::String(0)});
  }
  p.outputs.push_back(Port{"Y", PortType::String(0)});
  return p;
}

/// Builds the depth info the way PropagateDepths does: the strategy
/// layout supplies iteration levels and the per-port slots that the
/// projection reads.
ProcessorDepths Depths(const Processor& proc, std::vector<int> deltas,
                       IterationStrategy strategy) {
  ProcessorDepths d;
  d.input_deltas = deltas;
  std::map<std::string, int> positive;
  for (size_t i = 0; i < proc.inputs.size(); ++i) {
    d.input_depths.push_back(deltas[i]);
    positive[proc.inputs[i].name] = std::max(0, deltas[i]);
  }
  Processor with_strategy = proc;
  with_strategy.strategy = strategy;
  auto layout = workflow::LayoutStrategy(with_strategy.EffectiveStrategy(),
                                         positive);
  EXPECT_TRUE(layout.ok()) << layout.status().ToString();
  d.iteration_levels = layout->levels;
  d.slots = layout->slots;
  return d;
}

TEST(IndexProjection, PaperFig3Apportioning) {
  // δ = (1, 0, 1): q = [h, l] maps to ([h], [], [l]) — the paper's
  // worked example lin(P:Y[h,l]).
  Processor p = MakeProc(3, IterationStrategy::kCross);
  auto proj = ProjectOutputIndex(p, Depths(p, {1, 0, 1}, IterationStrategy::kCross),
                                 Index({7, 3}));
  ASSERT_EQ(proj.size(), 3u);
  EXPECT_EQ(proj[0], Index({7}));
  EXPECT_EQ(proj[1], Index());
  EXPECT_EQ(proj[2], Index({3}));
}

TEST(IndexProjection, MultiLevelFragments) {
  // δ = (2, 1): q = [a,b,c] maps to ([a,b], [c]).
  Processor p = MakeProc(2, IterationStrategy::kCross);
  auto proj = ProjectOutputIndex(
      p, Depths(p, {2, 1}, IterationStrategy::kCross), Index({4, 5, 6}));
  EXPECT_EQ(proj[0], Index({4, 5}));
  EXPECT_EQ(proj[1], Index({6}));
}

TEST(IndexProjection, EmptyQueryIndexProjectsEmpty) {
  // The whole-value query stays whole-value on every input (the paper's
  // coarse-granularity example lin(P:Y[])).
  Processor p = MakeProc(3, IterationStrategy::kCross);
  auto proj = ProjectOutputIndex(
      p, Depths(p, {1, 0, 1}, IterationStrategy::kCross), Index());
  EXPECT_EQ(proj[0], Index());
  EXPECT_EQ(proj[1], Index());
  EXPECT_EQ(proj[2], Index());
}

TEST(IndexProjection, ShortIndexTruncatesGracefully) {
  // q shorter than the total iteration depth: the available components
  // go to the leading ports, the rest become whole-value probes.
  Processor p = MakeProc(2, IterationStrategy::kCross);
  auto proj = ProjectOutputIndex(
      p, Depths(p, {2, 2}, IterationStrategy::kCross), Index({9}));
  EXPECT_EQ(proj[0], Index({9}));  // only one of its two components known
  EXPECT_EQ(proj[1], Index());
}

TEST(IndexProjection, ExtraComponentsBeyondIterationAreDropped) {
  // q deeper than l: the tail indexes inside the black-box output value.
  Processor p = MakeProc(1, IterationStrategy::kCross);
  auto proj = ProjectOutputIndex(
      p, Depths(p, {1}, IterationStrategy::kCross), Index({2, 8, 8}));
  EXPECT_EQ(proj[0], Index({2}));
}

TEST(IndexProjection, NegativeDeltasGetEmptyIndex) {
  Processor p = MakeProc(2, IterationStrategy::kCross);
  auto proj = ProjectOutputIndex(
      p, Depths(p, {-1, 1}, IterationStrategy::kCross), Index({3}));
  EXPECT_EQ(proj[0], Index());
  EXPECT_EQ(proj[1], Index({3}));
}

TEST(IndexProjection, NoIterationAllEmpty) {
  Processor p = MakeProc(2, IterationStrategy::kCross);
  auto proj = ProjectOutputIndex(
      p, Depths(p, {0, 0}, IterationStrategy::kCross), Index({1, 2}));
  EXPECT_EQ(proj[0], Index());
  EXPECT_EQ(proj[1], Index());
}

TEST(IndexProjection, DotSharesTheIndex) {
  Processor p = MakeProc(3, IterationStrategy::kDot);
  auto proj = ProjectOutputIndex(
      p, Depths(p, {1, 0, 1}, IterationStrategy::kDot), Index({5}));
  EXPECT_EQ(proj[0], Index({5}));
  EXPECT_EQ(proj[1], Index());
  EXPECT_EQ(proj[2], Index({5}));
}

TEST(IndexProjection, DotTruncatesToAvailable) {
  Processor p = MakeProc(1, IterationStrategy::kDot);
  auto proj = ProjectOutputIndex(
      p, Depths(p, {2}, IterationStrategy::kDot), Index({5}));
  EXPECT_EQ(proj[0], Index({5}));
}

TEST(IndexProjection, Prop1RoundTrip) {
  // For full-length q under cross: concatenating the fragments in port
  // order reconstructs exactly the first l components of q (Prop. 1).
  Processor p = MakeProc(4, IterationStrategy::kCross);
  ProcessorDepths d = Depths(p, {1, 0, 2, 1}, IterationStrategy::kCross);
  Index q({3, 1, 4, 1});
  auto proj = ProjectOutputIndex(p, d, q);
  Index concat;
  for (const Index& frag : proj) concat = concat.Concat(frag);
  EXPECT_EQ(concat, q);
}

}  // namespace
}  // namespace provlin::lineage
