// Integration tests for the network lineage server (server/server.h):
// concurrent multi-client traffic must produce answers byte-identical
// to in-process engine queries (at 1 and 4 store shards), unknown
// engines and malformed frames get typed error responses, admission
// control sheds deterministically when the dispatcher is frozen, and
// oversized frames drop the connection instead of allocating.
//
// No sleeps anywhere: overload is driven by PauseDispatchForTest (the
// dispatcher is provably idle while paused, so queue occupancy is a
// pure function of what the readers admitted), and every wait is a
// blocking Receive() on a response the server is guaranteed to send.
//
// ServerStats snapshots the process-wide registry, which accumulates
// across the tests in this binary — every assertion is on a delta
// against a snapshot taken right after the server under test started.

#include "server/server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lineage/engine.h"
#include "lineage/wire.h"
#include "provenance/trace_store.h"
#include "server/client.h"
#include "server/frame.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::server {
namespace {

using lineage::InterestSet;
using lineage::LineageAnswer;
using lineage::LineageRequest;
using provenance::TraceStoreOptions;
using testbed::Workbench;
using workflow::kWorkflowProcessor;
using workflow::PortRef;
namespace wire = lineage::wire;

/// Serialized answer with the timing struct zeroed. Timing fields are
/// wall-clock and cache-state dependent — everything else (the
/// bindings, their order, every string and index) must survive the
/// network round-trip byte-for-byte.
std::string AnswerBytes(LineageAnswer answer) {
  answer.timing = lineage::LineageTiming{};
  return wire::EncodeAnswerResponse(0, answer);
}

/// A served workbench: runs executed, both engines registered, server
/// listening on an ephemeral loopback port. `before` is the stats
/// snapshot all assertions diff against.
struct Served {
  std::unique_ptr<Workbench> wb;
  std::unique_ptr<LineageServer> server;
  std::vector<std::string> runs;
  ServerStats before;
};

Served StartSynthetic(size_t shards, ServerOptions options = {}) {
  Served s;
  TraceStoreOptions store_options;
  store_options.shards = shards;
  auto wb = Workbench::Synthetic(5, store_options);
  EXPECT_TRUE(wb.ok());
  s.wb = std::move(*wb);
  for (int r = 0; r < 3; ++r) {
    std::string run = "r" + std::to_string(r);
    EXPECT_TRUE(s.wb->RunSynthetic(2 + r, run).ok()) << run;
    s.runs.push_back(run);
  }
  LineageServer::EngineMap engines;
  engines["naive"] = s.wb->Engine("naive");
  engines["indexproj"] = s.wb->Engine("indexproj");
  s.server = std::make_unique<LineageServer>(std::move(engines), options);
  EXPECT_TRUE(s.server->Start().ok());
  s.before = s.server->stats();
  return s;
}

/// The query mix both halves of the equivalence test execute: both
/// engines, several targets/indexes/focus sets, single- and multi-run.
struct NamedRequest {
  std::string engine;
  LineageRequest request;
};

std::vector<NamedRequest> BuildMix(const std::vector<std::string>& runs) {
  const std::pair<PortRef, Index> queries[] = {
      {{kWorkflowProcessor, "RESULT"}, Index()},
      {{kWorkflowProcessor, "RESULT"}, Index({1})},
      {{kWorkflowProcessor, "RESULT"}, Index({1, 2})},
  };
  const InterestSet interests[] = {{}, {testbed::kListGen}};
  std::vector<NamedRequest> mix;
  for (const char* engine : {"naive", "indexproj"}) {
    for (const auto& [port, q] : queries) {
      for (const InterestSet& interest : interests) {
        for (const std::string& run : runs) {
          mix.push_back(
              {engine, LineageRequest::SingleRun(run, port, q, interest)});
        }
        mix.push_back(
            {engine, LineageRequest::MultiRun(runs, port, q, interest)});
      }
    }
  }
  return mix;
}

/// Concurrent clients each replay the whole mix against the server and
/// assert every served answer is byte-identical to the in-process
/// answer from the same engine instance.
void ExpectServedMatchesInProcess(size_t shards) {
  Served s = StartSynthetic(shards);
  std::vector<NamedRequest> mix = BuildMix(s.runs);

  // In-process ground truth, computed before any served traffic so the
  // comparison cannot depend on cache state the server warmed.
  std::vector<std::string> want;
  want.reserve(mix.size());
  for (const NamedRequest& nr : mix) {
    auto answer = s.wb->Engine(nr.engine)->Query(nr.request);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    want.push_back(AnswerBytes(*answer));
  }

  constexpr size_t kClients = 4;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = LineageClient::Connect("127.0.0.1", s.server->port());
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      for (size_t i = 0; i < mix.size(); ++i) {
        auto response = client->Call(mix[i].engine, mix[i].request);
        if (!response.ok()) {
          failures[c] = response.status().ToString();
          return;
        }
        if (!response->ok) {
          failures[c] =
              "request " + std::to_string(i) + ": " + response->message;
          return;
        }
        if (AnswerBytes(response->answer) != want[i]) {
          failures[c] = "request " + std::to_string(i) + " (" +
                        mix[i].engine +
                        "): served answer diverges from in-process";
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  ServerStats stats = s.server->stats();
  EXPECT_EQ(stats.requests - s.before.requests, kClients * mix.size());
  EXPECT_EQ(stats.responses_ok - s.before.responses_ok,
            kClients * mix.size());
  EXPECT_EQ(stats.responses_error, s.before.responses_error);
  EXPECT_EQ(stats.overload_shed, s.before.overload_shed);
  EXPECT_EQ(stats.bad_frames, s.before.bad_frames);
  s.server->Stop();
}

TEST(ServerTest, ServedMatchesInProcessUnsharded) {
  ExpectServedMatchesInProcess(1);
}

TEST(ServerTest, ServedMatchesInProcessFourShards) {
  ExpectServedMatchesInProcess(4);
}

TEST(ServerTest, UnknownEngineIsBadRequest) {
  Served s = StartSynthetic(1);
  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Call(
      "bogus", LineageRequest::SingleRun(
                   "r0", {kWorkflowProcessor, "RESULT"}, Index()));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, wire::ErrorCode::kBadRequest);
  EXPECT_NE(response->message.find("unknown engine"), std::string::npos)
      << response->message;
  EXPECT_TRUE(response->ToStatus().IsInvalidArgument());

  // A good request on the same connection still works afterwards.
  auto good = client->Call(
      "naive", LineageRequest::SingleRun(
                   "r0", {kWorkflowProcessor, "RESULT"}, Index()));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->ok);
  s.server->Stop();
}

TEST(ServerTest, UnknownTargetIsTypedNotFound) {
  Served s = StartSynthetic(1);
  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Call(
      "indexproj", LineageRequest::SingleRun(
                       "r0", {kWorkflowProcessor, "NO_SUCH_PORT"}, Index()));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, wire::ErrorCode::kNotFound);
  EXPECT_TRUE(response->ToStatus().IsNotFound());
  s.server->Stop();
}

TEST(ServerTest, OverloadShedsDeterministically) {
  ServerOptions options;
  options.max_queue = 2;
  Served s = StartSynthetic(1, options);
  // Freeze the dispatcher: nothing leaves the queue, so after k
  // pipelined sends exactly min(k, max_queue) occupy the queue and the
  // rest are shed by the reader thread with typed OVERLOADED.
  s.server->PauseDispatchForTest();

  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  LineageRequest req = LineageRequest::SingleRun(
      "r0", {kWorkflowProcessor, "RESULT"}, Index({1}));
  constexpr uint64_t kSent = 5;  // 2 queued + 3 shed
  for (uint64_t i = 0; i < kSent; ++i) {
    ASSERT_TRUE(client->Send("naive", req).ok());
  }
  // The shed responses arrive first — the reader wrote them inline
  // while the queued two sit behind the paused dispatcher.
  for (uint64_t i = 0; i < kSent - options.max_queue; ++i) {
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->ok);
    EXPECT_EQ(response->code, wire::ErrorCode::kOverloaded);
    EXPECT_TRUE(response->ToStatus().IsUnavailable());
    EXPECT_NE(response->message.find("queue full"), std::string::npos);
    // Shed responses echo the id of the refused request (3, 4, 5).
    EXPECT_GT(response->request_id, options.max_queue);
  }

  s.server->ResumeDispatchForTest();
  for (uint64_t i = 0; i < options.max_queue; ++i) {
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->ok) << response->message;
    EXPECT_LE(response->request_id, options.max_queue);
  }

  ServerStats stats = s.server->stats();
  EXPECT_EQ(stats.requests - s.before.requests, kSent);
  EXPECT_EQ(stats.overload_shed - s.before.overload_shed,
            kSent - options.max_queue);
  EXPECT_EQ(stats.responses_ok - s.before.responses_ok, options.max_queue);
  s.server->Stop();
}

TEST(ServerTest, WrongVersionFrameGetsTypedError) {
  Served s = StartSynthetic(1);
  auto socket = TcpConnect("127.0.0.1", s.server->port());
  ASSERT_TRUE(socket.ok());

  // A frame whose payload leads with an unknown version byte. The id
  // field is at the same offset in every version, so the server can
  // still echo it in the error.
  wire::RequestEnvelope envelope;
  envelope.request_id = 77;
  envelope.engine = "naive";
  std::string payload = wire::EncodeRequestEnvelope(envelope);
  payload[0] = 9;
  ASSERT_TRUE(WriteFrame(*socket, payload).ok());

  std::string response_payload;
  auto got = ReadFrame(*socket, &response_payload);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  auto response = wire::DecodeResponseEnvelope(response_payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, wire::ErrorCode::kUnsupportedVersion);
  EXPECT_EQ(response->request_id, 77u);
  EXPECT_EQ(s.server->stats().bad_frames - s.before.bad_frames, 1u);
  s.server->Stop();
}

TEST(ServerTest, MalformedPayloadGetsBadRequest) {
  Served s = StartSynthetic(1);
  auto socket = TcpConnect("127.0.0.1", s.server->port());
  ASSERT_TRUE(socket.ok());

  // Right version, right type, salvageable id, garbage body.
  std::string payload;
  payload.push_back(static_cast<char>(wire::kWireVersion));
  payload.push_back(static_cast<char>(wire::MessageType::kRequest));
  uint64_t id = 123;
  payload.append(reinterpret_cast<const char*>(&id), sizeof(id));
  payload += "\xff\xff\xff\xff";
  ASSERT_TRUE(WriteFrame(*socket, payload).ok());

  std::string response_payload;
  auto got = ReadFrame(*socket, &response_payload);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  auto response = wire::DecodeResponseEnvelope(response_payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, wire::ErrorCode::kBadRequest);
  EXPECT_EQ(response->request_id, 123u);
  EXPECT_EQ(s.server->stats().bad_frames - s.before.bad_frames, 1u);
  s.server->Stop();
}

TEST(ServerTest, OversizedFrameDropsConnection) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  Served s = StartSynthetic(1, options);
  auto socket = TcpConnect("127.0.0.1", s.server->port());
  ASSERT_TRUE(socket.ok());

  // The client-side ceiling is the default 16MB, so the frame goes out;
  // the server sees a length prefix above ITS ceiling and must drop the
  // connection (a mis-framed stream cannot be resynchronized).
  std::string huge(4096, 'x');
  ASSERT_TRUE(WriteFrame(*socket, huge).ok());

  // The connection dies without a response: clean EOF, or a reset if
  // the server closed with our payload still unread. Never a frame,
  // never a hang.
  std::string response_payload;
  auto got = ReadFrame(*socket, &response_payload);
  EXPECT_TRUE(!got.ok() || !*got);
}

TEST(ServerTest, StopShedsQueuedRequests) {
  ServerOptions options;
  options.max_queue = 2;
  Served s = StartSynthetic(1, options);
  s.server->PauseDispatchForTest();

  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  LineageRequest req = LineageRequest::SingleRun(
      "r0", {kWorkflowProcessor, "RESULT"}, Index());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->Send("naive", req).ok());
  }
  // Receiving the reader-shed response for request 3 proves requests 1
  // and 2 were admitted and sit in the queue (the reader is strictly
  // in-order), so Stop below deterministically finds two to shed.
  auto shed = client->Receive();
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->code, wire::ErrorCode::kOverloaded);

  // Stop with the dispatcher still paused and two requests queued:
  // shutdown must not hang, and the queued requests are shed (their
  // responses may or may not reach the closing socket — liveness and
  // the shed accounting are what is guaranteed).
  s.server->Stop();
  EXPECT_EQ(s.server->stats().overload_shed - s.before.overload_shed, 3u);
}

}  // namespace
}  // namespace provlin::server
