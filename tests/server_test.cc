// Integration tests for the network lineage server (server/server.h):
// concurrent multi-client traffic must produce answers byte-identical
// to in-process engine queries (at 1 and 4 store shards), unknown
// engines and malformed frames get typed error responses, admission
// control sheds deterministically when the dispatcher is frozen, and
// oversized frames drop the connection instead of allocating.
//
// No sleeps anywhere: overload is driven by PauseDispatchForTest (the
// dispatcher is provably idle while paused, so queue occupancy is a
// pure function of what the readers admitted), and every wait is a
// blocking Receive() on a response the server is guaranteed to send.
//
// ServerStats snapshots the process-wide registry, which accumulates
// across the tests in this binary — every assertion is on a delta
// against a snapshot taken right after the server under test started.

#include "server/server.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "lineage/engine.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/wire.h"
#include "provenance/trace_store.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/slow_log.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::server {
namespace {

using lineage::InterestSet;
using lineage::LineageAnswer;
using lineage::LineageRequest;
using provenance::TraceStoreOptions;
using testbed::Workbench;
using workflow::kWorkflowProcessor;
using workflow::PortRef;
namespace wire = lineage::wire;

/// Serialized answer with the timing struct zeroed. Timing fields are
/// wall-clock and cache-state dependent — everything else (the
/// bindings, their order, every string and index) must survive the
/// network round-trip byte-for-byte.
std::string AnswerBytes(LineageAnswer answer) {
  answer.timing = lineage::LineageTiming{};
  return wire::EncodeAnswerResponse(0, answer);
}

/// A served workbench: runs executed, both engines registered, server
/// listening on an ephemeral loopback port. `before` is the stats
/// snapshot all assertions diff against.
struct Served {
  std::unique_ptr<Workbench> wb;
  std::unique_ptr<LineageServer> server;
  std::vector<std::string> runs;
  ServerStats before;
};

Served StartSynthetic(size_t shards, ServerOptions options = {},
                      const std::function<void(Served&)>& before_start = {}) {
  Served s;
  TraceStoreOptions store_options;
  store_options.shards = shards;
  auto wb = Workbench::Synthetic(5, store_options);
  EXPECT_TRUE(wb.ok());
  s.wb = std::move(*wb);
  for (int r = 0; r < 3; ++r) {
    std::string run = "r" + std::to_string(r);
    EXPECT_TRUE(s.wb->RunSynthetic(2 + r, run).ok()) << run;
    s.runs.push_back(run);
  }
  LineageServer::EngineMap engines;
  engines["naive"] = s.wb->Engine("naive");
  engines["indexproj"] = s.wb->Engine("indexproj");
  s.server = std::make_unique<LineageServer>(std::move(engines), options);
  // Pre-Start configuration (e.g. SetExplainer, which must not be
  // called once the server is serving).
  if (before_start) before_start(s);
  EXPECT_TRUE(s.server->Start().ok());
  s.before = s.server->stats();
  return s;
}

/// The query mix both halves of the equivalence test execute: both
/// engines, several targets/indexes/focus sets, single- and multi-run.
struct NamedRequest {
  std::string engine;
  LineageRequest request;
};

std::vector<NamedRequest> BuildMix(const std::vector<std::string>& runs) {
  const std::pair<PortRef, Index> queries[] = {
      {{kWorkflowProcessor, "RESULT"}, Index()},
      {{kWorkflowProcessor, "RESULT"}, Index({1})},
      {{kWorkflowProcessor, "RESULT"}, Index({1, 2})},
  };
  const InterestSet interests[] = {{}, {testbed::kListGen}};
  std::vector<NamedRequest> mix;
  for (const char* engine : {"naive", "indexproj"}) {
    for (const auto& [port, q] : queries) {
      for (const InterestSet& interest : interests) {
        for (const std::string& run : runs) {
          mix.push_back(
              {engine, LineageRequest::SingleRun(run, port, q, interest)});
        }
        mix.push_back(
            {engine, LineageRequest::MultiRun(runs, port, q, interest)});
      }
    }
  }
  return mix;
}

/// Concurrent clients each replay the whole mix against the server and
/// assert every served answer is byte-identical to the in-process
/// answer from the same engine instance.
void ExpectServedMatchesInProcess(size_t shards) {
  Served s = StartSynthetic(shards);
  std::vector<NamedRequest> mix = BuildMix(s.runs);

  // In-process ground truth, computed before any served traffic so the
  // comparison cannot depend on cache state the server warmed.
  std::vector<std::string> want;
  want.reserve(mix.size());
  for (const NamedRequest& nr : mix) {
    auto answer = s.wb->Engine(nr.engine)->Query(nr.request);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    want.push_back(AnswerBytes(*answer));
  }

  constexpr size_t kClients = 4;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = LineageClient::Connect("127.0.0.1", s.server->port());
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      for (size_t i = 0; i < mix.size(); ++i) {
        auto response = client->Call(mix[i].engine, mix[i].request);
        if (!response.ok()) {
          failures[c] = response.status().ToString();
          return;
        }
        if (!response->ok) {
          failures[c] =
              "request " + std::to_string(i) + ": " + response->message;
          return;
        }
        if (AnswerBytes(response->answer) != want[i]) {
          failures[c] = "request " + std::to_string(i) + " (" +
                        mix[i].engine +
                        "): served answer diverges from in-process";
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  ServerStats stats = s.server->stats();
  EXPECT_EQ(stats.requests - s.before.requests, kClients * mix.size());
  EXPECT_EQ(stats.responses_ok - s.before.responses_ok,
            kClients * mix.size());
  EXPECT_EQ(stats.responses_error, s.before.responses_error);
  EXPECT_EQ(stats.overload_shed, s.before.overload_shed);
  EXPECT_EQ(stats.bad_frames, s.before.bad_frames);
  s.server->Stop();
}

TEST(ServerTest, ServedMatchesInProcessUnsharded) {
  ExpectServedMatchesInProcess(1);
}

TEST(ServerTest, ServedMatchesInProcessFourShards) {
  ExpectServedMatchesInProcess(4);
}

TEST(ServerTest, UnknownEngineIsBadRequest) {
  Served s = StartSynthetic(1);
  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Call(
      "bogus", LineageRequest::SingleRun(
                   "r0", {kWorkflowProcessor, "RESULT"}, Index()));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, wire::ErrorCode::kBadRequest);
  EXPECT_NE(response->message.find("unknown engine"), std::string::npos)
      << response->message;
  EXPECT_TRUE(response->ToStatus().IsInvalidArgument());

  // A good request on the same connection still works afterwards.
  auto good = client->Call(
      "naive", LineageRequest::SingleRun(
                   "r0", {kWorkflowProcessor, "RESULT"}, Index()));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->ok);
  s.server->Stop();
}

TEST(ServerTest, UnknownTargetIsTypedNotFound) {
  Served s = StartSynthetic(1);
  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Call(
      "indexproj", LineageRequest::SingleRun(
                       "r0", {kWorkflowProcessor, "NO_SUCH_PORT"}, Index()));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, wire::ErrorCode::kNotFound);
  EXPECT_TRUE(response->ToStatus().IsNotFound());
  s.server->Stop();
}

TEST(ServerTest, OverloadShedsDeterministically) {
  ServerOptions options;
  options.max_queue = 2;
  Served s = StartSynthetic(1, options);
  // Freeze the dispatcher: nothing leaves the queue, so after k
  // pipelined sends exactly min(k, max_queue) occupy the queue and the
  // rest are shed by the reader thread with typed OVERLOADED.
  s.server->PauseDispatchForTest();

  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  LineageRequest req = LineageRequest::SingleRun(
      "r0", {kWorkflowProcessor, "RESULT"}, Index({1}));
  constexpr uint64_t kSent = 5;  // 2 queued + 3 shed
  for (uint64_t i = 0; i < kSent; ++i) {
    ASSERT_TRUE(client->Send("naive", req).ok());
  }
  // The shed responses arrive first — the reader wrote them inline
  // while the queued two sit behind the paused dispatcher.
  for (uint64_t i = 0; i < kSent - options.max_queue; ++i) {
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->ok);
    EXPECT_EQ(response->code, wire::ErrorCode::kOverloaded);
    EXPECT_TRUE(response->ToStatus().IsUnavailable());
    EXPECT_NE(response->message.find("queue full"), std::string::npos);
    // Shed responses echo the id of the refused request (3, 4, 5).
    EXPECT_GT(response->request_id, options.max_queue);
  }

  s.server->ResumeDispatchForTest();
  for (uint64_t i = 0; i < options.max_queue; ++i) {
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->ok) << response->message;
    EXPECT_LE(response->request_id, options.max_queue);
  }

  ServerStats stats = s.server->stats();
  EXPECT_EQ(stats.requests - s.before.requests, kSent);
  EXPECT_EQ(stats.overload_shed - s.before.overload_shed,
            kSent - options.max_queue);
  EXPECT_EQ(stats.responses_ok - s.before.responses_ok, options.max_queue);
  s.server->Stop();
}

TEST(ServerTest, WrongVersionFrameGetsTypedError) {
  Served s = StartSynthetic(1);
  auto socket = TcpConnect("127.0.0.1", s.server->port());
  ASSERT_TRUE(socket.ok());

  // A frame whose payload leads with an unknown version byte. The id
  // field is at the same offset in every version, so the server can
  // still echo it in the error.
  wire::RequestEnvelope envelope;
  envelope.request_id = 77;
  envelope.engine = "naive";
  std::string payload = wire::EncodeRequestEnvelope(envelope);
  payload[0] = 9;
  ASSERT_TRUE(WriteFrame(*socket, payload).ok());

  std::string response_payload;
  auto got = ReadFrame(*socket, &response_payload);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  auto response = wire::DecodeResponseEnvelope(response_payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, wire::ErrorCode::kUnsupportedVersion);
  EXPECT_EQ(response->request_id, 77u);
  EXPECT_EQ(s.server->stats().bad_frames - s.before.bad_frames, 1u);
  s.server->Stop();
}

TEST(ServerTest, MalformedPayloadGetsBadRequest) {
  Served s = StartSynthetic(1);
  auto socket = TcpConnect("127.0.0.1", s.server->port());
  ASSERT_TRUE(socket.ok());

  // Right version, right type, salvageable id, garbage body.
  std::string payload;
  payload.push_back(static_cast<char>(wire::kWireVersion));
  payload.push_back(static_cast<char>(wire::MessageType::kRequest));
  uint64_t id = 123;
  payload.append(reinterpret_cast<const char*>(&id), sizeof(id));
  payload += "\xff\xff\xff\xff";
  ASSERT_TRUE(WriteFrame(*socket, payload).ok());

  std::string response_payload;
  auto got = ReadFrame(*socket, &response_payload);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  auto response = wire::DecodeResponseEnvelope(response_payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, wire::ErrorCode::kBadRequest);
  EXPECT_EQ(response->request_id, 123u);
  EXPECT_EQ(s.server->stats().bad_frames - s.before.bad_frames, 1u);
  s.server->Stop();
}

TEST(ServerTest, OversizedFrameDropsConnection) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  Served s = StartSynthetic(1, options);
  auto socket = TcpConnect("127.0.0.1", s.server->port());
  ASSERT_TRUE(socket.ok());

  // The client-side ceiling is the default 16MB, so the frame goes out;
  // the server sees a length prefix above ITS ceiling and must drop the
  // connection (a mis-framed stream cannot be resynchronized).
  std::string huge(4096, 'x');
  ASSERT_TRUE(WriteFrame(*socket, huge).ok());

  // The connection dies without a response: clean EOF, or a reset if
  // the server closed with our payload still unread. Never a frame,
  // never a hang.
  std::string response_payload;
  auto got = ReadFrame(*socket, &response_payload);
  EXPECT_TRUE(!got.ok() || !*got);
}

TEST(ServerTest, TimelineAttachedOnlyWhenRequested) {
  Served s = StartSynthetic(4);
  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  LineageRequest req = LineageRequest::SingleRun(
      "r1", {kWorkflowProcessor, "RESULT"}, Index({1}));

  // v1 call: the answer must be byte-identical to the legacy shape —
  // no timeline, version 1, same bindings as in-process.
  auto v1 = client->Call("indexproj", req);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ASSERT_TRUE(v1->ok) << v1->message;
  EXPECT_EQ(v1->version, wire::kWireVersionLegacy);
  EXPECT_FALSE(v1->has_timeline);

  // v2 call asking for the timeline: same answer, plus the phase
  // decomposition with its invariants.
  auto v2 = client->Call("indexproj", req, /*want_timeline=*/true);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ASSERT_TRUE(v2->ok) << v2->message;
  EXPECT_EQ(v2->version, wire::kWireVersion);
  ASSERT_TRUE(v2->has_timeline);
  EXPECT_EQ(AnswerBytes(v2->answer), AnswerBytes(v1->answer));

  const wire::RequestTimeline& tl = v2->timeline;
  EXPECT_GE(tl.queue_ms, 0.0);
  EXPECT_GE(tl.dispatch_ms, 0.0);
  EXPECT_GT(tl.total_ms, 0.0);
  // serialize/write are structurally unknowable at encode time and are
  // always 0 on the wire (wire.h contract).
  EXPECT_EQ(tl.serialize_ms, 0.0);
  EXPECT_EQ(tl.write_ms, 0.0);
  // The phases nest inside the total (all measured on the server from
  // the same admission timer; tiny fp slack only).
  EXPECT_LE(tl.queue_ms + tl.dispatch_ms + tl.execute_ms,
            tl.total_ms + 1e-6);
  // An indexproj query does physical probe work, attributed per shard;
  // the hot/sealed split must cover exactly the per-shard sum.
  EXPECT_GT(tl.trace_probes, 0u);
  ASSERT_FALSE(tl.shards.empty());
  uint64_t shard_probes = 0;
  for (const wire::ShardCost& sc : tl.shards) {
    EXPECT_LT(sc.shard, 4u);
    shard_probes += sc.probes;
  }
  EXPECT_GT(shard_probes, 0u);
  EXPECT_EQ(tl.hot_probes + tl.sealed_probes, shard_probes);
  s.server->Stop();
}

TEST(ServerTest, StatsScrapeAnsweredWhileDispatchIsFrozen) {
  // The STATS path must never enter the dispatch queue: freeze the
  // dispatcher, fill the queue to the brim, and a scrape on a fresh
  // connection still answers immediately.
  ServerOptions options;
  options.max_queue = 2;
  Served s = StartSynthetic(1, options);
  s.server->PauseDispatchForTest();

  auto busy = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(busy.ok());
  LineageRequest req = LineageRequest::SingleRun(
      "r0", {kWorkflowProcessor, "RESULT"}, Index());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(busy->Send("naive", req).ok());
  }
  // The shed response for request 3 proves the queue is full.
  auto shed = busy->Receive();
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->code, wire::ErrorCode::kOverloaded);

  auto scraper = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(scraper.ok());
  auto stats = scraper->Stats(wire::kStatsWantMetrics);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->has_metrics);
  EXPECT_NE(stats->prometheus_text.find("provlin_server_queue_depth"),
            std::string::npos);
  EXPECT_FALSE(stats->has_trace);

  // Scrapes are accounted separately from requests: the request
  // counters still balance without them.
  ServerStats after = s.server->stats();
  EXPECT_EQ(after.stats_requests - s.before.stats_requests, 1u);
  EXPECT_EQ(after.requests - s.before.requests, 3u);

  s.server->ResumeDispatchForTest();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(busy->Receive().ok());
  }
  s.server->Stop();
}

TEST(ServerTest, ConcurrentScrapesDuringTraffic) {
  // TSan-hammered: several client threads serve real queries while a
  // scraper thread pulls STATS snapshots from its own connection. At
  // the end the served-request balance must hold exactly:
  // answers + errors + sheds == requests admitted.
  Served s = StartSynthetic(4);
  std::vector<NamedRequest> mix = BuildMix(s.runs);

  constexpr size_t kClients = 3;
  constexpr int kScrapes = 25;
  std::vector<std::string> failures(kClients + 1);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = LineageClient::Connect("127.0.0.1", s.server->port());
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      for (size_t i = 0; i < mix.size(); ++i) {
        auto response =
            client->Call(mix[i].engine, mix[i].request, i % 2 == 0);
        if (!response.ok()) {
          failures[c] = response.status().ToString();
          return;
        }
        if (!response->ok) {
          failures[c] = response->message;
          return;
        }
        if ((i % 2 == 0) != response->has_timeline) {
          failures[c] = "timeline presence does not match the request flag";
          return;
        }
      }
    });
  }
  threads.emplace_back([&] {
    auto scraper = LineageClient::Connect("127.0.0.1", s.server->port());
    if (!scraper.ok()) {
      failures[kClients] = scraper.status().ToString();
      return;
    }
    for (int i = 0; i < kScrapes; ++i) {
      auto stats = scraper->Stats(wire::kStatsWantMetrics);
      if (!stats.ok()) {
        failures[kClients] = stats.status().ToString();
        return;
      }
      if (!stats->has_metrics || stats->prometheus_text.empty()) {
        failures[kClients] = "scrape returned no metrics";
        return;
      }
    }
  });
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < failures.size(); ++i) {
    EXPECT_EQ(failures[i], "") << "thread " << i;
  }

  ServerStats stats = s.server->stats();
  EXPECT_EQ(stats.requests - s.before.requests, kClients * mix.size());
  EXPECT_EQ((stats.responses_ok - s.before.responses_ok) +
                (stats.responses_error - s.before.responses_error) +
                (stats.overload_shed - s.before.overload_shed),
            stats.requests - s.before.requests);
  EXPECT_EQ(stats.stats_requests - s.before.stats_requests,
            static_cast<uint64_t>(kScrapes));
  s.server->Stop();
}

TEST(ServerTest, QueueDepthGaugeTracksQueueAndDrainsToZero) {
  common::metrics::Gauge* depth =
      common::metrics::GetGauge("server/queue_depth");
  ServerOptions options;
  options.max_queue = 2;
  Served s = StartSynthetic(1, options);
  s.server->PauseDispatchForTest();

  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  LineageRequest req = LineageRequest::SingleRun(
      "r0", {kWorkflowProcessor, "RESULT"}, Index());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->Send("naive", req).ok());
  }
  // The shed response for request 3 proves both earlier requests were
  // admitted — with the dispatcher frozen the gauge must read exactly
  // the queue bound.
  auto shed = client->Receive();
  ASSERT_TRUE(shed.ok());
  ASSERT_EQ(shed->code, wire::ErrorCode::kOverloaded);
  EXPECT_EQ(depth->Value(), 2);

  s.server->ResumeDispatchForTest();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client->Receive().ok());
  }
  // Both responses received ⇒ the dispatcher has dequeued everything;
  // the gauge was updated under the queue lock at every transition.
  EXPECT_EQ(depth->Value(), 0);
  s.server->Stop();
  EXPECT_EQ(depth->Value(), 0);
}

TEST(ServerTest, QueueDepthGaugeZeroAfterStopSheds) {
  common::metrics::Gauge* depth =
      common::metrics::GetGauge("server/queue_depth");
  ServerOptions options;
  options.max_queue = 4;
  Served s = StartSynthetic(1, options);
  s.server->PauseDispatchForTest();

  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  LineageRequest req = LineageRequest::SingleRun(
      "r0", {kWorkflowProcessor, "RESULT"}, Index());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->Send("naive", req).ok());
  }
  auto shed = client->Receive();
  ASSERT_TRUE(shed.ok());
  ASSERT_EQ(shed->code, wire::ErrorCode::kOverloaded);
  EXPECT_EQ(depth->Value(), 4);

  // Stop with four requests still queued: the shutdown shed path must
  // leave the gauge at zero, not frozen at the old occupancy.
  s.server->Stop();
  EXPECT_EQ(depth->Value(), 0);
  EXPECT_EQ(s.server->stats().overload_shed - s.before.overload_shed, 5u);
}

TEST(ServerTest, SlowLogRecordsEveryRequestAtThresholdZero) {
  std::string log_path =
      ::testing::TempDir() + "/slow_requests_test.jsonl";
  std::remove(log_path.c_str());
  ServerOptions options;
  options.slow_request_ms = 0.0;  // log every served request
  options.slow_log_path = log_path;

  // The EXPLAIN payload in the log is produced exactly like the CLI's
  // `explain` output (ExplainResult::ToJson over the same engine).
  Served s = StartSynthetic(1, options, [](Served& served) {
    lineage::IndexProjLineage* engine = served.wb->IndexProj();
    provenance::TraceStore* store = served.wb->store();
    served.server->SetExplainer(
        "indexproj", [engine, store](const LineageRequest& request) {
          auto explained = engine->Explain(request);
          if (!explained.ok()) return std::string();
          return explained->ToJson(*store);
        });
  });
  lineage::IndexProjLineage* engine = s.wb->IndexProj();
  provenance::TraceStore* store = s.wb->store();

  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  LineageRequest req = LineageRequest::SingleRun(
      "r0", {kWorkflowProcessor, "RESULT"}, Index({1}));
  auto indexed = client->Call("indexproj", req, /*want_timeline=*/true);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(indexed->ok) << indexed->message;
  auto naive = client->Call("naive", req);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(naive->ok);
  s.server->Stop();
  EXPECT_EQ(s.server->stats().slow_requests_logged -
                s.before.slow_requests_logged,
            2u);

  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);

  // First record: the indexproj request, with an EXPLAIN payload whose
  // step structure matches an in-process Explain of the same request.
  const std::string& rec = lines[0];
  EXPECT_NE(rec.find("\"engine\":\"indexproj\""), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"status\":\"OK\""), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"timeline\":{"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"queue_ms\":"), std::string::npos);
  EXPECT_NE(rec.find("\"serialize_ms\":"), std::string::npos);
  EXPECT_NE(rec.find("\"write_ms\":"), std::string::npos);
  EXPECT_NE(rec.find("\"shards\":["), std::string::npos);
  auto explained = engine->Explain(req);
  ASSERT_TRUE(explained.ok());
  std::string explain_json = explained->ToJson(*store);
  // Wall-times differ run to run; the plan identity (every generated
  // trace query, in order) must match the CLI's exactly.
  for (const lineage::ExplainStep& step : explained->steps) {
    std::string quoted;
    {
      std::string raw = step.query.ToString(*store);
      quoted.reserve(raw.size());
      for (char ch : raw) {
        if (ch == '"' || ch == '\\') quoted += '\\';
        quoted += ch;
      }
    }
    EXPECT_NE(rec.find(quoted), std::string::npos)
        << "slow-log EXPLAIN lacks step " << step.query.ToString(*store);
  }
  EXPECT_NE(rec.find("\"plan_cache_hit\":"), std::string::npos);
  // Second record: naive engine has no registered explainer → null.
  EXPECT_NE(lines[1].find("\"engine\":\"naive\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"explain\":null"), std::string::npos);
  std::remove(log_path.c_str());
  std::remove((log_path + ".1").c_str());
}

TEST(ServerTest, SlowLogRotatesAtByteBound) {
  std::string path = ::testing::TempDir() + "/slow_rotate_test.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  SlowRequestLog::Options options;
  options.path = path;
  options.max_bytes = 256;
  auto log = SlowRequestLog::Open(options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  const std::string record(100, 'x');
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*log)->Append("{\"r\":\"" + record + "\"}").ok());
  }
  EXPECT_EQ((*log)->records(), 5u);

  // The live file was rotated: it must hold fewer than max_bytes' worth
  // of records, and the previous generation sits at <path>.1.
  std::ifstream live(path);
  ASSERT_TRUE(live.is_open());
  std::string all((std::istreambuf_iterator<char>(live)),
                  std::istreambuf_iterator<char>());
  EXPECT_LE(all.size(), options.max_bytes);
  EXPECT_GT(all.size(), 0u);
  std::ifstream rotated(path + ".1");
  EXPECT_TRUE(rotated.is_open());
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(ServerTest, StopShedsQueuedRequests) {
  ServerOptions options;
  options.max_queue = 2;
  Served s = StartSynthetic(1, options);
  s.server->PauseDispatchForTest();

  auto client = LineageClient::Connect("127.0.0.1", s.server->port());
  ASSERT_TRUE(client.ok());
  LineageRequest req = LineageRequest::SingleRun(
      "r0", {kWorkflowProcessor, "RESULT"}, Index());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->Send("naive", req).ok());
  }
  // Receiving the reader-shed response for request 3 proves requests 1
  // and 2 were admitted and sit in the queue (the reader is strictly
  // in-order), so Stop below deterministically finds two to shed.
  auto shed = client->Receive();
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->code, wire::ErrorCode::kOverloaded);

  // Stop with the dispatcher still paused and two requests queued:
  // shutdown must not hang, and the queued requests are shed (their
  // responses may or may not reach the closing socket — liveness and
  // the shed accounting are what is guaranteed).
  s.server->Stop();
  EXPECT_EQ(s.server->stats().overload_shed - s.before.overload_shed, 3u);
}

}  // namespace
}  // namespace provlin::server
