// Processor graph: adjacency, toposort, upstream cones.

#include "workflow/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "workflow/builder.h"

namespace provlin::workflow {
namespace {

/// Diamond: in -> a -> {b, c} -> d -> out.
std::shared_ptr<const Dataflow> Diamond() {
  DataflowBuilder bld("diamond");
  bld.Input("in", PortType::String(1));
  bld.Output("out", PortType::String(1));
  for (const char* name : {"a", "b", "c"}) {
    bld.Proc(name)
        .Activity("to_upper")
        .In("x", PortType::String(0))
        .Out("y", PortType::String(0));
  }
  bld.Proc("d")
      .Activity("concat2")
      .In("x1", PortType::String(0))
      .In("x2", PortType::String(0))
      .Out("y", PortType::String(0));
  bld.Arc("workflow:in", "a:x");
  bld.Arc("a:y", "b:x");
  bld.Arc("a:y", "c:x");
  bld.Arc("b:y", "d:x1");
  bld.Arc("c:y", "d:x2");
  bld.Arc("d:y", "workflow:out");
  auto flow = bld.Build();
  EXPECT_TRUE(flow.ok()) << flow.status().ToString();
  return *flow;
}

TEST(ProcessorGraph, PredecessorsAndSuccessors) {
  auto flow = Diamond();
  ProcessorGraph g(*flow);
  EXPECT_TRUE(g.Predecessors("a").empty());
  EXPECT_EQ(g.Predecessors("d"), (std::set<std::string>{"b", "c"}));
  EXPECT_EQ(g.Successors("a"), (std::set<std::string>{"b", "c"}));
  EXPECT_TRUE(g.Successors("d").empty());
  EXPECT_TRUE(g.Predecessors("unknown").empty());
}

TEST(ProcessorGraph, WorkflowArcsAreNotGraphEdges) {
  auto flow = Diamond();
  ProcessorGraph g(*flow);
  EXPECT_EQ(g.num_nodes(), 4u);
  // a has no predecessors despite the workflow:in arc.
  EXPECT_TRUE(g.Predecessors("a").empty());
}

TEST(ProcessorGraph, TopologicalOrderRespectsDependencies) {
  auto flow = Diamond();
  ProcessorGraph g(*flow);
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  auto pos = [&](const std::string& p) {
    return std::find(order->begin(), order->end(), p) - order->begin();
  };
  EXPECT_LT(pos("a"), pos("b"));
  EXPECT_LT(pos("a"), pos("c"));
  EXPECT_LT(pos("b"), pos("d"));
  EXPECT_LT(pos("c"), pos("d"));
  EXPECT_EQ(order->size(), 4u);
}

TEST(ProcessorGraph, TopologicalOrderIsDeterministic) {
  auto flow = Diamond();
  ProcessorGraph g(*flow);
  auto o1 = *g.TopologicalOrder();
  auto o2 = *g.TopologicalOrder();
  EXPECT_EQ(o1, o2);
  // Ties broken by declaration order: b declared before c.
  auto pos = [&](const std::string& p) {
    return std::find(o1.begin(), o1.end(), p) - o1.begin();
  };
  EXPECT_LT(pos("b"), pos("c"));
}

TEST(ProcessorGraph, DetectsCycle) {
  // Build an (invalid) dataflow with a cycle directly.
  Dataflow flow("cyclic");
  for (const char* name : {"a", "b"}) {
    Processor p;
    p.name = name;
    p.activity = "identity";
    p.inputs.push_back(Port{"x", PortType::String(0)});
    p.outputs.push_back(Port{"y", PortType::String(0)});
    flow.AddProcessor(p);
  }
  ASSERT_TRUE(flow.AddArc(PortRef{"a", "y"}, PortRef{"b", "x"}).ok());
  ASSERT_TRUE(flow.AddArc(PortRef{"b", "y"}, PortRef{"a", "x"}).ok());
  ProcessorGraph g(flow);
  EXPECT_FALSE(g.TopologicalOrder().ok());
}

TEST(ProcessorGraph, UpstreamConeIsInclusive) {
  auto flow = Diamond();
  ProcessorGraph g(*flow);
  EXPECT_EQ(g.UpstreamOf("d"),
            (std::set<std::string>{"a", "b", "c", "d"}));
  EXPECT_EQ(g.UpstreamOf("b"), (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(g.UpstreamOf("a"), (std::set<std::string>{"a"}));
}

TEST(ProcessorGraph, DisconnectedProcessorsStillSort) {
  Dataflow flow("disc");
  for (const char* name : {"x", "y"}) {
    Processor p;
    p.name = name;
    p.activity = "identity";
    flow.AddProcessor(p);
  }
  ProcessorGraph g(flow);
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->size(), 2u);
}

}  // namespace
}  // namespace provlin::workflow
