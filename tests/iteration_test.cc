// The list-iteration model: generalized cross product (Def. 2), eval_l
// (Def. 3), dot products, singleton wrapping. Several cases are the
// paper's own worked examples.

#include "engine/iteration.h"

#include <gtest/gtest.h>

namespace provlin::engine {
namespace {

using workflow::IterationStrategy;

Value AB() { return Value::StringList({"a", "b"}); }

TEST(Iteration, NoMismatchIsSingleInvocation) {
  auto tree = BuildIterationTree({Value::Str("x")}, {0},
                                 IterationStrategy::kCross);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->is_leaf);
  EXPECT_EQ(tree->Depth(), 0);
  EXPECT_EQ(tree->CountLeaves(), 1u);
  EXPECT_EQ(tree->args, (std::vector<Value>{Value::Str("x")}));
  EXPECT_EQ(tree->arg_indices, (std::vector<Index>{Index()}));
}

TEST(Iteration, SingleLevelIterationEnumeratesElements) {
  auto tree = BuildIterationTree({AB()}, {1}, IterationStrategy::kCross);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Depth(), 1);
  ASSERT_EQ(tree->children.size(), 2u);
  EXPECT_EQ(tree->children[0].args[0], Value::Str("a"));
  EXPECT_EQ(tree->children[0].arg_indices[0], Index({0}));
  EXPECT_EQ(tree->children[1].args[0], Value::Str("b"));
  EXPECT_EQ(tree->children[1].arg_indices[0], Index({1}));
}

TEST(Iteration, PaperEval2Example) {
  // (eval_2 P [[a,b]]) with δ = 2: two leaves under a single outer node.
  Value v = Value::List({AB()});
  auto tree = BuildIterationTree({v}, {2}, IterationStrategy::kCross);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Depth(), 2);
  ASSERT_EQ(tree->children.size(), 1u);
  ASSERT_EQ(tree->children[0].children.size(), 2u);
  const TupleTree& leaf = tree->children[0].children[1];
  EXPECT_EQ(leaf.args[0], Value::Str("b"));
  EXPECT_EQ(leaf.arg_indices[0], Index({0, 1}));
}

TEST(Iteration, PaperFig3CrossProduct) {
  // P with ⟨a,1⟩ ⊗ ⟨c,0⟩ ⊗ ⟨b,1⟩: n*m leaves, c passed whole to each.
  Value a = Value::StringList({"a1", "a2", "a3"});  // n = 3
  Value c = Value::Str("c");
  Value b = Value::StringList({"b1", "b2"});  // m = 2
  auto tree = BuildIterationTree({a, c, b}, {1, 0, 1},
                                 IterationStrategy::kCross);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Depth(), 2);
  EXPECT_EQ(tree->CountLeaves(), 6u);
  ASSERT_EQ(tree->children.size(), 3u);  // outer dim from a
  ASSERT_EQ(tree->children[0].children.size(), 2u);  // inner dim from b

  // Leaf (i=1, j=0): args (a2, c, b1); q = [1] · [] · [0] = path [1,0].
  const TupleTree& leaf = tree->children[1].children[0];
  EXPECT_EQ(leaf.args,
            (std::vector<Value>{Value::Str("a2"), c, Value::Str("b1")}));
  EXPECT_EQ(leaf.arg_indices,
            (std::vector<Index>{Index({1}), Index(), Index({0})}));
}

TEST(Iteration, LeafPathEqualsConcatenatedIndices) {
  // Engine-side Prop. 1: walking to each leaf, the path equals the
  // concatenation of the per-port indices.
  Value a = Value::StringList({"x", "y"});
  Value b = Value::List({Value::StringList({"p", "q"}),
                         Value::StringList({"r"})});
  auto tree = BuildIterationTree({a, b}, {1, 2}, IterationStrategy::kCross);
  ASSERT_TRUE(tree.ok());

  std::function<void(const TupleTree&, const Index&)> walk =
      [&](const TupleTree& node, const Index& path) {
        if (node.is_leaf) {
          Index concat;
          for (const Index& p : node.arg_indices) concat = concat.Concat(p);
          EXPECT_EQ(concat, path);
          return;
        }
        for (size_t i = 0; i < node.children.size(); ++i) {
          walk(node.children[i], path.Child(static_cast<int32_t>(i)));
        }
      };
  walk(*tree, Index());
  EXPECT_EQ(tree->CountLeaves(), 2u * 3u);
}

TEST(Iteration, RaggedInnerListsKeepShape) {
  Value ragged = Value::List({Value::StringList({"a"}),
                              Value::StringList({"b", "c", "d"})});
  auto tree = BuildIterationTree({ragged}, {2}, IterationStrategy::kCross);
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children.size(), 2u);
  EXPECT_EQ(tree->children[0].children.size(), 1u);
  EXPECT_EQ(tree->children[1].children.size(), 3u);
}

TEST(Iteration, EmptyListYieldsNoLeaves) {
  auto tree = BuildIterationTree({Value::List({})}, {1},
                                 IterationStrategy::kCross);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->CountLeaves(), 0u);
  EXPECT_FALSE(tree->is_leaf);
  EXPECT_TRUE(tree->children.empty());
}

TEST(Iteration, NegativeMismatchWrapsSingletons) {
  auto tree = BuildIterationTree({Value::Str("x")}, {-2},
                                 IterationStrategy::kCross);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->is_leaf);
  EXPECT_EQ(tree->args[0], Value::List({Value::List({Value::Str("x")})}));
  EXPECT_EQ(tree->arg_indices[0], Index());
}

TEST(Iteration, WrapSingletonsHelper) {
  EXPECT_EQ(WrapSingletons(Value::Str("x"), 0), Value::Str("x"));
  EXPECT_EQ(WrapSingletons(Value::Str("x"), 1),
            Value::List({Value::Str("x")}));
}

TEST(Iteration, TooShallowValueIsAnError) {
  EXPECT_FALSE(
      BuildIterationTree({Value::Str("x")}, {1}, IterationStrategy::kCross)
          .ok());
  EXPECT_FALSE(
      BuildIterationTree({AB()}, {2}, IterationStrategy::kCross).ok());
}

TEST(Iteration, ArityMismatchRejected) {
  EXPECT_FALSE(
      BuildIterationTree({AB()}, {1, 1}, IterationStrategy::kCross).ok());
}

TEST(Iteration, DotPairsElementsPositionally) {
  Value a = Value::StringList({"a1", "a2"});
  Value b = Value::StringList({"b1", "b2"});
  auto tree = BuildIterationTree({a, b}, {1, 1}, IterationStrategy::kDot);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Depth(), 1);
  ASSERT_EQ(tree->children.size(), 2u);
  EXPECT_EQ(tree->children[0].args,
            (std::vector<Value>{Value::Str("a1"), Value::Str("b1")}));
  // Both iterated ports carry the SAME index under dot.
  EXPECT_EQ(tree->children[1].arg_indices,
            (std::vector<Index>{Index({1}), Index({1})}));
}

TEST(Iteration, DotMixesIteratedAndWholePorts) {
  Value a = Value::StringList({"a1", "a2"});
  Value c = Value::Str("c");
  auto tree = BuildIterationTree({a, c}, {1, 0}, IterationStrategy::kDot);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->CountLeaves(), 2u);
  EXPECT_EQ(tree->children[0].args[1], c);
  EXPECT_EQ(tree->children[0].arg_indices[1], Index());
}

TEST(Iteration, DotRejectsUnequalLengths) {
  Value a = Value::StringList({"a1", "a2"});
  Value b = Value::StringList({"b1"});
  EXPECT_FALSE(
      BuildIterationTree({a, b}, {1, 1}, IterationStrategy::kDot).ok());
}

TEST(Iteration, DotRejectsUnequalMismatches) {
  Value a = Value::StringList({"a1"});
  Value b = Value::List({Value::StringList({"b1"})});
  EXPECT_FALSE(
      BuildIterationTree({a, b}, {1, 2}, IterationStrategy::kDot).ok());
}

TEST(Iteration, DotWithNoIteratedPortsIsSingleInvocation) {
  auto tree = BuildIterationTree({Value::Str("x")}, {0},
                                 IterationStrategy::kDot);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->is_leaf);
}

TEST(Iteration, DeepDotZipsNestedLists) {
  Value a = Value::List({Value::StringList({"a", "b"})});
  Value b = Value::List({Value::StringList({"c", "d"})});
  auto tree = BuildIterationTree({a, b}, {2, 2}, IterationStrategy::kDot);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Depth(), 2);
  EXPECT_EQ(tree->CountLeaves(), 2u);
  EXPECT_EQ(tree->children[0].children[1].args,
            (std::vector<Value>{Value::Str("b"), Value::Str("d")}));
}

}  // namespace
}  // namespace provlin::engine
