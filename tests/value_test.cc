#include "values/value.h"

#include <gtest/gtest.h>

#include "values/type.h"

namespace provlin {
namespace {

Value Nested() {
  // [["foo","bar"],["red","fox"]] — the paper's §2.1 example.
  return Value::List({Value::StringList({"foo", "bar"}),
                      Value::StringList({"red", "fox"})});
}

TEST(Value, AtomBasics) {
  Value v = Value::Str("x");
  EXPECT_TRUE(v.is_atom());
  EXPECT_FALSE(v.is_list());
  EXPECT_EQ(v.atom().AsString(), "x");
  EXPECT_EQ(v.depth(), 0);
  EXPECT_EQ(v.TotalAtoms(), 1u);
}

TEST(Value, ListBasics) {
  Value v = Nested();
  EXPECT_TRUE(v.is_list());
  EXPECT_EQ(v.list_size(), 2u);
  EXPECT_EQ(v.depth(), 2);
  EXPECT_EQ(v.TotalAtoms(), 4u);
}

TEST(Value, EmptyListHasDepthOne) {
  EXPECT_EQ(Value::List({}).depth(), 1);
  EXPECT_EQ(Value::List({}).TotalAtoms(), 0u);
}

TEST(Value, PaperElementAccessor) {
  // ⟨P:X[1,2], [["foo","bar"],["red","fox"]]⟩ = "bar" (1-based in paper;
  // our API is 0-based, so [0,1]).
  auto elem = Nested().At(Index({0, 1}));
  ASSERT_TRUE(elem.ok());
  EXPECT_EQ(elem->atom().AsString(), "bar");
}

TEST(Value, EmptyIndexReturnsWholeValue) {
  auto v = Nested().At(Index());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Nested());
}

TEST(Value, AtRejectsOutOfRange) {
  EXPECT_FALSE(Nested().At(Index({2})).ok());
  EXPECT_FALSE(Nested().At(Index({0, 5})).ok());
  EXPECT_FALSE(Nested().At(Index({-1})).ok());
}

TEST(Value, AtRejectsDescendingIntoAtom) {
  EXPECT_FALSE(Value::Str("x").At(Index({0})).ok());
  EXPECT_FALSE(Nested().At(Index({0, 0, 0})).ok());
}

TEST(Value, LeafIndicesEnumerateAtoms) {
  std::vector<Index> leaves = Nested().LeafIndices();
  ASSERT_EQ(leaves.size(), 4u);
  EXPECT_EQ(leaves[0], Index({0, 0}));
  EXPECT_EQ(leaves[3], Index({1, 1}));
  EXPECT_EQ(Value::Str("a").LeafIndices(),
            (std::vector<Index>{Index()}));
}

TEST(Value, IndicesAtLevel) {
  Value v = Nested();
  EXPECT_EQ(v.IndicesAtLevel(0), (std::vector<Index>{Index()}));
  EXPECT_EQ(v.IndicesAtLevel(1),
            (std::vector<Index>{Index({0}), Index({1})}));
  EXPECT_EQ(v.IndicesAtLevel(2).size(), 4u);
  // Deeper than the value: atoms block descent.
  EXPECT_TRUE(v.IndicesAtLevel(3).empty());
}

TEST(Value, ToStringRendersNestedLiterals) {
  EXPECT_EQ(Nested().ToString(),
            "[[\"foo\",\"bar\"],[\"red\",\"fox\"]]");
  EXPECT_EQ(Value::List({}).ToString(), "[]");
  EXPECT_EQ(Value::Int(3).ToString(), "3");
}

TEST(Value, EqualityIsDeep) {
  EXPECT_EQ(Nested(), Nested());
  EXPECT_NE(Nested(), Value::StringList({"foo"}));
  EXPECT_NE(Value::Str("a"), Value::List({Value::Str("a")}));
}

TEST(Value, StringListConvenience) {
  Value v = Value::StringList({"a", "b"});
  EXPECT_EQ(v.depth(), 1);
  EXPECT_EQ(v.elements()[1].atom().AsString(), "b");
}

TEST(InferType, AtomTypes) {
  auto t = InferType(Value::Int(3));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->base, AtomKind::kInt);
  EXPECT_EQ(t->depth, 0);
}

TEST(InferType, UniformNestedList) {
  auto t = InferType(Nested());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->base, AtomKind::kString);
  EXPECT_EQ(t->depth, 2);
}

TEST(InferType, EmptyListInfersNullBase) {
  auto t = InferType(Value::List({}));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->base, AtomKind::kNull);
  EXPECT_EQ(t->depth, 1);
}

TEST(InferType, RejectsRaggedDepth) {
  Value ragged = Value::List({Value::Str("a"), Value::StringList({"b"})});
  EXPECT_FALSE(InferType(ragged).ok());
}

TEST(InferType, RejectsMixedAtomKinds) {
  Value mixed = Value::List({Value::Str("a"), Value::Int(1)});
  EXPECT_FALSE(InferType(mixed).ok());
}

TEST(InferType, EmptySubListCoexistsWithTypedSiblings) {
  // [[], ["a"]] — the empty sub-list contributes no base kind.
  Value v = Value::List({Value::List({}), Value::StringList({"a"})});
  auto t = InferType(v);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->base, AtomKind::kString);
  EXPECT_EQ(t->depth, 2);
}

}  // namespace
}  // namespace provlin
