// Structural validation of dataflows.

#include "workflow/validate.h"

#include <gtest/gtest.h>

#include "workflow/builder.h"

namespace provlin::workflow {
namespace {

/// A builder pre-loaded with one valid processor; tests mutate from here.
DataflowBuilder BaseBuilder() {
  DataflowBuilder b("base");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("p")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x");
  b.Arc("p:y", "workflow:out");
  return b;
}

TEST(Validate, AcceptsWellFormed) {
  EXPECT_TRUE(BaseBuilder().Build().ok());
}

TEST(Validate, RejectsReservedProcessorName) {
  DataflowBuilder b("bad");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("workflow").Activity("identity").In("x", PortType::String(0)).Out(
      "y", PortType::String(0));
  EXPECT_FALSE(b.Build().ok());
}

TEST(Validate, RejectsDuplicateProcessorNames) {
  auto b = BaseBuilder();
  b.Proc("p").Activity("identity").In("x", PortType::String(0)).Out(
      "y", PortType::String(0));
  EXPECT_FALSE(b.Build().ok());
}

TEST(Validate, RejectsMissingActivity) {
  DataflowBuilder b("bad");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("p").In("x", PortType::String(0)).Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x");
  b.Arc("p:y", "workflow:out");
  EXPECT_FALSE(b.Build().ok());
}

TEST(Validate, RejectsDuplicatePortNames) {
  auto b = BaseBuilder();
  b.Proc("q")
      .Activity("identity")
      .In("x", PortType::String(0))
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  EXPECT_FALSE(b.Build().ok());
}

TEST(Validate, RejectsArcToUnknownPort) {
  auto b = BaseBuilder();
  b.Arc("p:y", "p:nonexistent");
  EXPECT_FALSE(b.Build().ok());
}

TEST(Validate, RejectsArcFromUnknownProcessor) {
  auto b = BaseBuilder();
  b.Proc("q").Activity("identity").In("x", PortType::String(0)).Out(
      "y", PortType::String(0));
  b.Arc("ghost:y", "q:x");
  EXPECT_FALSE(b.Build().ok());
}

TEST(Validate, RejectsBaseTypeMismatchAcrossArc) {
  DataflowBuilder b("bad");
  b.Input("in", PortType::Int(1));
  b.Output("out", PortType::String(1));
  b.Proc("p")
      .Activity("to_upper")
      .In("x", PortType::String(0))  // string port fed by int input
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x");
  b.Arc("p:y", "workflow:out");
  EXPECT_FALSE(b.Build().ok());
}

TEST(Validate, DepthMismatchAcrossArcIsLegal) {
  // list(list(string)) into a scalar string port: that is the iteration
  // feature, not an error.
  DataflowBuilder b("ok");
  b.Input("in", PortType::String(2));
  b.Output("out", PortType::String(2));
  b.Proc("p")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x");
  b.Arc("p:y", "workflow:out");
  EXPECT_TRUE(b.Build().ok());
}

TEST(Validate, RejectsCycles) {
  DataflowBuilder b("cycle");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("a")
      .Activity("identity")
      .In("x", PortType::String(0))
      .In("loop", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Proc("c")
      .Activity("identity")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "a:x");
  b.Arc("a:y", "c:x");
  b.Arc("c:y", "a:loop");  // back edge
  b.Arc("c:y", "workflow:out");
  EXPECT_FALSE(b.Build().ok());
}

TEST(Validate, RejectsDefaultForUnknownPort) {
  auto b = BaseBuilder();
  b.Proc("q")
      .Activity("identity")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0))
      .Default("nope", Value::Str("v"));
  EXPECT_FALSE(b.Build().ok());
}

TEST(Validate, DotStrategyRequiresEqualMismatches) {
  DataflowBuilder b("dot_bad");
  b.Input("a", PortType::String(1));
  b.Input("b", PortType::String(2));
  b.Output("out", PortType::String(1));
  b.Proc("zip")
      .Activity("concat2")
      .Strategy(IterationStrategy::kDot)
      .In("x1", PortType::String(0))  // δ = 1
      .In("x2", PortType::String(0))  // δ = 2 — unequal
      .Out("y", PortType::String(0));
  b.Arc("workflow:a", "zip:x1");
  b.Arc("workflow:b", "zip:x2");
  b.Arc("zip:y", "workflow:out");
  EXPECT_FALSE(b.Build().ok());
}

TEST(Validate, DotStrategyAcceptsEqualMismatches) {
  DataflowBuilder b("dot_ok");
  b.Input("a", PortType::String(1));
  b.Input("b", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("zip")
      .Activity("concat2")
      .Strategy(IterationStrategy::kDot)
      .In("x1", PortType::String(0))
      .In("x2", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:a", "zip:x1");
  b.Arc("workflow:b", "zip:x2");
  b.Arc("zip:y", "workflow:out");
  EXPECT_TRUE(b.Build().ok());
}

TEST(Validate, RequiresFlattenedInput) {
  // Validate() itself (not via builder) must reject nested processors.
  auto inner_b = BaseBuilder();
  auto inner = *inner_b.Build();
  Dataflow outer("outer");
  Processor nested;
  nested.name = "sub";
  nested.activity = "nested";
  nested.sub_dataflow = inner;
  outer.AddProcessor(nested);
  EXPECT_FALSE(Validate(outer).ok());
}

}  // namespace
}  // namespace provlin::workflow
