// NEGATIVE-COMPILE TEST: calls a REQUIRES(mu_) function without holding
// the lock. Clang must reject this under -Werror=thread-safety; the
// run_negative_compile.py driver asserts the failure.

#include "common/annotations.h"
#include "common/sync.h"

namespace {

using provlin::common::LockRank;
using provlin::common::Mutex;

class Ledger {
 public:
  void Add(int delta) {
    AddLocked(delta);  // BUG: caller does not hold mu_
  }

 private:
  void AddLocked(int delta) REQUIRES(mu_) { total_ += delta; }

  Mutex mu_{LockRank::kTestOuter};
  int total_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger l;
  l.Add(7);
  return 0;
}
