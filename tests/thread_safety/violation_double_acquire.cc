// NEGATIVE-COMPILE TEST: acquires a mutex that is already held
// (self-deadlock on a non-recursive mutex). Clang must reject this
// under -Werror=thread-safety; the run_negative_compile.py driver
// asserts the failure.

#include "common/annotations.h"
#include "common/sync.h"

namespace {

using provlin::common::LockRank;
using provlin::common::Mutex;

class Widget {
 public:
  void Bump() {
    mu_.Lock();
    mu_.Lock();  // BUG: mu_ already held — deadlock at runtime
    ++value_;
    mu_.Unlock();
    mu_.Unlock();
  }

 private:
  Mutex mu_{LockRank::kTestOuter};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Widget w;
  w.Bump();
  return 0;
}
