// NEGATIVE-COMPILE TEST: constructs a Mutex without a LockRank. The
// rank-less constructor is deleted (common/sync.h) — every mutex must
// name its place in the central hierarchy (common/lock_rank.h), or the
// PROVLIN_LOCK_DEBUG detector has nothing to check. The compiler must
// reject the defaulted member initialization below.
// negative-compile-expect: deleted

#include "common/annotations.h"
#include "common/sync.h"

namespace {

using provlin::common::Mutex;
using provlin::common::MutexLock;

class Counter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++value_;
  }

 private:
  Mutex mu_;  // BUG: no LockRank — must not compile
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
