// NEGATIVE-COMPILE TEST: constructs a SharedMutex without a LockRank.
// Same contract as violation_rankless_mutex.cc — the rank-less
// constructor is deleted, so the local declaration below must not
// compile.
// negative-compile-expect: deleted

#include "common/annotations.h"
#include "common/sync.h"

namespace {

using provlin::common::ReaderLock;
using provlin::common::SharedMutex;

int Snapshot() {
  SharedMutex mu;  // BUG: no LockRank — must not compile
  ReaderLock lock(mu);
  return 0;
}

}  // namespace

int main() { return Snapshot(); }
