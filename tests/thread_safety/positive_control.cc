// Positive control for the negative-compile suite: canonical, correct
// use of every annotated primitive. This file MUST compile cleanly
// under -Werror=thread-safety — if it does not, the violation tests
// prove nothing (the compiler might be rejecting the harness itself,
// not the seeded bug).

#include "common/annotations.h"
#include "common/sync.h"

namespace {

using provlin::common::CondVar;
using provlin::common::LockRank;
using provlin::common::Mutex;
using provlin::common::MutexLock;
using provlin::common::ReaderLock;
using provlin::common::SharedMutex;
using provlin::common::WriterLock;

class Account {
 public:
  void Deposit(int amount) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    balance_ += amount;
  }

  int Balance() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return balance_;
  }

  // REQUIRES caller-held lock: the analysis checks every call site.
  void DepositLocked(int amount) REQUIRES(mu_) { balance_ += amount; }

  void DepositTwice(int amount) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    DepositLocked(amount);
    DepositLocked(amount);
  }

 private:
  Mutex mu_{LockRank::kTestOuter};
  int balance_ GUARDED_BY(mu_) = 0;
};

class Snapshotting {
 public:
  int Read() EXCLUDES(mu_) {
    ReaderLock lock(mu_);
    return value_;
  }

  void Write(int v) EXCLUDES(mu_) {
    WriterLock lock(mu_);
    value_ = v;
  }

 private:
  SharedMutex mu_{LockRank::kTestMiddle};
  int value_ GUARDED_BY(mu_) = 0;
};

class Latch {
 public:
  void CountDown() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.NotifyAll();
  }

  void Await() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    // Explicit predicate loop: the guarded read of count_ stays inside
    // the locked scope, which is the project idiom (sync.h header doc).
    while (count_ != 0) cv_.Wait(mu_);
  }

 private:
  Mutex mu_{LockRank::kTestInner};
  CondVar cv_;
  int count_ GUARDED_BY(mu_) = 1;
};

void Exercise() {
  Account a;
  a.Deposit(1);
  a.DepositTwice(2);
  (void)a.Balance();
  Snapshotting s;
  s.Write(3);
  (void)s.Read();
  Latch l;
  l.CountDown();
  l.Await();
}

}  // namespace

int main() {
  Exercise();
  return 0;
}
