// NEGATIVE-COMPILE TEST: reads a GUARDED_BY field without holding its
// mutex. Clang must reject this under -Werror=thread-safety; the
// run_negative_compile.py driver asserts the failure.

#include "common/annotations.h"
#include "common/sync.h"

namespace {

using provlin::common::LockRank;
using provlin::common::Mutex;
using provlin::common::MutexLock;

class Account {
 public:
  void Deposit(int amount) {
    MutexLock lock(mu_);
    balance_ += amount;
  }

  int Balance() {
    return balance_;  // BUG: guarded read without mu_
  }

 private:
  Mutex mu_{LockRank::kTestOuter};
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  return a.Balance();
}
