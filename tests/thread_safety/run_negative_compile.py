#!/usr/bin/env python3
"""Negative-compile tests for the annotated sync primitives.

Each violation_*.cc in this directory seeds exactly one bug that the
compiler must reject; positive_control.cc is the same code shapes
written correctly and must compile cleanly. A violation file that
compiles means the protections in src/common/sync.h have rotted and are
no longer guarding the tree.

Two kinds of violation are covered, selected per file by a marker
comment:

  // negative-compile-expect: thread-safety   (the default when absent)
      The seeded bug is a Clang Thread Safety Analysis violation (an
      unguarded read, a double acquire, a missing REQUIRES); the
      rejection must carry a thread-safety diagnostic.
  // negative-compile-expect: deleted
      The seeded bug is rank-less Mutex/SharedMutex construction; the
      rejection must name the deleted constructor.

The analysis is Clang-only. When no compiler supporting -Wthread-safety
is found, the script prints one line per candidate explaining WHY it was
rejected (not on PATH, or the flag probe's exit status) and exits 77 —
wired as SKIP_RETURN_CODE in CMake, so ctest reports the test as skipped
rather than passed on GCC-only machines. CI passes --forbid-skip in the
static-analysis job, turning that skip into a hard failure: the job
exists to run this suite, so silently skipping it there would be a
false green.

Usage:
  run_negative_compile.py --include SRC_DIR [--compiler CXX]
                          [--forbid-skip] [--verbose]

Exit status: 0 all expectations met, 1 any violation accepted / control
rejected / skip forbidden, 77 no thread-safety-capable compiler found.
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

SKIP = 77
FLAGS = ["-std=c++20", "-fsyntax-only", "-Wthread-safety",
         "-Werror=thread-safety"]
# Diagnostics carry the warning-group suffix, e.g.
#   [-Werror,-Wthread-safety-analysis] / [-Wthread-safety-precise]
DEFAULT_MARKER = "thread-safety"

EXPECT_RE = re.compile(r"//\s*negative-compile-expect:\s*(\S+)")


def expected_marker(source: Path) -> str:
    """The per-file expectation marker, defaulting to thread-safety."""
    m = EXPECT_RE.search(source.read_text(encoding="utf-8"))
    return m.group(1) if m else DEFAULT_MARKER


def compile_file(cxx: str, source: Path, include: Path):
    return subprocess.run(
        [cxx, *FLAGS, "-I", str(include), str(source)],
        capture_output=True,
        text=True,
    )


def probe_compiler(cxx: str) -> str | None:
    """None when `cxx` accepts the -Wthread-safety flags, else a one-line
    reason why this candidate is unusable."""
    if shutil.which(cxx) is None:
        return "not found on PATH"
    with tempfile.TemporaryDirectory() as tmpdir:
        probe = Path(tmpdir) / "probe_thread_safety.cc"
        probe.write_text("int main() { return 0; }\n")
        try:
            r = subprocess.run(
                [cxx, *FLAGS, str(probe)], capture_output=True, text=True
            )
        except OSError as e:
            return f"failed to execute ({e})"
    if r.returncode != 0:
        first = (r.stderr.strip().splitlines() or ["(no diagnostics)"])[0]
        return (f"rejected {' '.join(FLAGS)} "
                f"(exit {r.returncode}: {first})")
    return None


def main(argv):
    parser = argparse.ArgumentParser(
        description="Assert that clang rejects each seeded violation and "
        "accepts the positive control."
    )
    parser.add_argument(
        "--include",
        type=Path,
        required=True,
        help="src/ directory providing common/sync.h and common/annotations.h",
    )
    parser.add_argument(
        "--compiler",
        default=None,
        help="compiler to try first (e.g. the CMake build compiler); "
        "falls back to clang++ variants on PATH",
    )
    parser.add_argument(
        "--forbid-skip",
        action="store_true",
        help="treat 'no capable compiler' as a failure instead of a skip "
        "(CI static-analysis job: skipping there is a false green)",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="print compiler diagnostics for every file")
    args = parser.parse_args(argv)

    here = Path(__file__).resolve().parent
    candidates = []
    if args.compiler:
        candidates.append(args.compiler)
    candidates += ["clang++", "clang++-19", "clang++-18", "clang++-17",
                   "clang++-16", "clang++-15"]

    cxx = None
    reasons = []
    for c in candidates:
        reason = probe_compiler(c)
        if reason is None:
            cxx = c
            break
        reasons.append(f"  {c}: {reason}")
    if cxx is None:
        print("SKIP: no compiler supporting -Wthread-safety found:")
        for line in reasons:
            print(line)
        if args.forbid_skip:
            print("--forbid-skip: this environment must run the "
                  "negative-compile suite — failing instead of skipping")
            return 1
        return SKIP
    print(f"using compiler: {cxx}")

    failures = []

    control = here / "positive_control.cc"
    r = compile_file(cxx, control, args.include)
    if r.returncode != 0:
        failures.append(
            f"{control.name}: must compile cleanly but failed:\n{r.stderr}"
        )
    elif args.verbose:
        print(f"PASS {control.name}: compiles cleanly")

    violations = sorted(here.glob("violation_*.cc"))
    if not violations:
        failures.append("no violation_*.cc files found — suite is empty")
    for v in violations:
        marker = expected_marker(v)
        r = compile_file(cxx, v, args.include)
        if r.returncode == 0:
            failures.append(
                f"{v.name}: compiled cleanly — the seeded bug was NOT "
                "rejected"
            )
        elif marker not in r.stderr:
            failures.append(
                f"{v.name}: rejected, but not for the expected reason "
                f"(no '{marker}' in diagnostics):\n{r.stderr}"
            )
        else:
            if args.verbose:
                print(f"PASS {v.name}: rejected with '{marker}' diagnostic")

    if failures:
        print(f"{len(failures)} failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"all {len(violations)} violations rejected, positive control clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
