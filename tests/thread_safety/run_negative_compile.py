#!/usr/bin/env python3
"""Negative-compile tests for the Clang Thread Safety annotations.

Each violation_*.cc in this directory seeds exactly one concurrency bug
(an unguarded read, a double acquire, a missing REQUIRES at a call site)
that the analysis must reject; positive_control.cc is the same code
shapes written correctly and must compile cleanly. A violation file that
compiles means the annotations in src/common/sync.h have rotted and the
analysis is no longer protecting the tree.

The analysis is Clang-only. When no compiler supporting -Wthread-safety
is found (the probe fails for the build compiler and every fallback
clang++ on PATH), the script exits 77 — wired as SKIP_RETURN_CODE in
CMake, so ctest reports the test as skipped rather than passed on
GCC-only machines.

Usage:
  run_negative_compile.py --include SRC_DIR [--compiler CXX] [--verbose]

Exit status: 0 all expectations met, 1 any violation accepted / control
rejected, 77 no thread-safety-capable compiler available.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

SKIP = 77
FLAGS = ["-std=c++20", "-fsyntax-only", "-Wthread-safety",
         "-Werror=thread-safety"]
# Diagnostics carry the warning-group suffix, e.g.
#   [-Werror,-Wthread-safety-analysis] / [-Wthread-safety-precise]
DIAG_MARKER = "thread-safety"


def compile_file(cxx: str, source: Path, include: Path):
    return subprocess.run(
        [cxx, *FLAGS, "-I", str(include), str(source)],
        capture_output=True,
        text=True,
    )


def supports_thread_safety(cxx: str) -> bool:
    """True when `cxx` exists and accepts the -Wthread-safety flags."""
    if shutil.which(cxx) is None:
        return False
    with tempfile.TemporaryDirectory() as tmpdir:
        probe = Path(tmpdir) / "probe_thread_safety.cc"
        probe.write_text("int main() { return 0; }\n")
        try:
            r = subprocess.run(
                [cxx, *FLAGS, str(probe)], capture_output=True, text=True
            )
        except OSError:
            return False
    return r.returncode == 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Assert that clang -Wthread-safety rejects each seeded "
        "violation and accepts the positive control."
    )
    parser.add_argument(
        "--include",
        type=Path,
        required=True,
        help="src/ directory providing common/sync.h and common/annotations.h",
    )
    parser.add_argument(
        "--compiler",
        default=None,
        help="compiler to try first (e.g. the CMake build compiler); "
        "falls back to clang++ variants on PATH",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="print compiler diagnostics for every file")
    args = parser.parse_args(argv)

    here = Path(__file__).resolve().parent
    candidates = []
    if args.compiler:
        candidates.append(args.compiler)
    candidates += ["clang++", "clang++-19", "clang++-18", "clang++-17",
                   "clang++-16", "clang++-15"]

    cxx = next((c for c in candidates if supports_thread_safety(c)), None)
    if cxx is None:
        print(
            "SKIP: no compiler supporting -Wthread-safety found "
            f"(tried: {', '.join(candidates)})"
        )
        return SKIP
    print(f"using compiler: {cxx}")

    failures = []

    control = here / "positive_control.cc"
    r = compile_file(cxx, control, args.include)
    if r.returncode != 0:
        failures.append(
            f"{control.name}: must compile cleanly but failed:\n{r.stderr}"
        )
    elif args.verbose:
        print(f"PASS {control.name}: compiles cleanly")

    violations = sorted(here.glob("violation_*.cc"))
    if not violations:
        failures.append("no violation_*.cc files found — suite is empty")
    for v in violations:
        r = compile_file(cxx, v, args.include)
        if r.returncode == 0:
            failures.append(
                f"{v.name}: compiled cleanly — the seeded thread-safety bug "
                "was NOT rejected"
            )
        elif DIAG_MARKER not in r.stderr:
            failures.append(
                f"{v.name}: rejected, but not by the thread-safety analysis "
                f"(no '{DIAG_MARKER}' in diagnostics):\n{r.stderr}"
            )
        else:
            if args.verbose:
                print(f"PASS {v.name}: rejected with thread-safety diagnostic")

    if failures:
        print(f"{len(failures)} failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"all {len(violations)} violations rejected, positive control clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
