// Materialized provenance graph: structure, stats, DOT export.

#include "provenance/provenance_graph.h"

#include <gtest/gtest.h>

#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::provenance {
namespace {

using testbed::Workbench;

class ProvenanceGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wb_ = std::move(*Workbench::Synthetic(2));
    ASSERT_TRUE(wb_->RunSynthetic(3, "r0").ok());
  }
  std::unique_ptr<Workbench> wb_;
};

TEST_F(ProvenanceGraphTest, BuildsNodesAndEdges) {
  auto graph = ProvenanceGraph::Build(*wb_->store(), "r0");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ProvenanceGraphStats stats = graph->Stats();
  EXPECT_GT(stats.nodes, 0u);
  // Edge counts equal the trace's dependency records.
  auto counts = *wb_->store()->CountRecords("r0");
  EXPECT_EQ(stats.xform_edges + stats.xfer_edges,
            counts.TotalDependencyRecords() - 1);  // source row has no edge
}

TEST_F(ProvenanceGraphTest, SourcesAndSinksAreIdentified) {
  auto graph = *ProvenanceGraph::Build(*wb_->store(), "r0");
  ProvenanceGraphStats stats = graph.Stats();
  // Sources: the workflow input binding, plus coarse producer-side
  // transfer nodes (refinement edges run coarse -> fine only, so a
  // coarse out-binding recorded solely by an xfer row has no incoming).
  EXPECT_GE(stats.source_nodes, 1u);
  EXPECT_LE(stats.source_nodes, 2u);
  // Sinks are the workflow output binding(s).
  EXPECT_GE(stats.sink_nodes, 1u);
  bool found_input_source = false;
  std::set<BindingNode> has_in;
  for (const auto& e : graph.edges()) has_in.insert(e.to);
  for (const BindingNode& n : graph.nodes()) {
    if (has_in.count(n) == 0 && n.processor == workflow::kWorkflowProcessor) {
      found_input_source = true;
    }
  }
  EXPECT_TRUE(found_input_source);
}

TEST_F(ProvenanceGraphTest, ScopedToOneRun) {
  ASSERT_TRUE(wb_->RunSynthetic(5, "r1").ok());
  auto g0 = *ProvenanceGraph::Build(*wb_->store(), "r0");
  auto g1 = *ProvenanceGraph::Build(*wb_->store(), "r1");
  EXPECT_LT(g0.Stats().nodes, g1.Stats().nodes);  // d=3 vs d=5
  auto missing = *ProvenanceGraph::Build(*wb_->store(), "ghost");
  EXPECT_EQ(missing.Stats().nodes, 0u);
}

TEST_F(ProvenanceGraphTest, DotOutputIsWellFormed) {
  auto graph = *ProvenanceGraph::Build(*wb_->store(), "r0");
  std::string dot = graph.ToDot("r0");
  EXPECT_NE(dot.find("digraph \"r0\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // xfer edges
  EXPECT_NE(dot.find("shape=box"), std::string::npos);     // workflow ports
  EXPECT_EQ(dot.back(), '\n');
  // Every node referenced by an edge is declared.
  size_t node_decls = 0;
  size_t pos = 0;
  while ((pos = dot.find("[label=", pos)) != std::string::npos) {
    ++node_decls;
    ++pos;
  }
  EXPECT_EQ(node_decls, graph.nodes().size());
}

TEST_F(ProvenanceGraphTest, FineGrainedBindingsAreDistinctNodes) {
  auto graph = *ProvenanceGraph::Build(*wb_->store(), "r0");
  // CHAINA_1 processed 3 elements: its input port contributes nodes
  // x[1], x[2], x[3] (plus possibly the coarse transfer node x[]).
  int fine = 0;
  for (const BindingNode& n : graph.nodes()) {
    if (n.processor == "CHAINA_1" && n.port == "x" && n.index.length() == 1) {
      ++fine;
    }
  }
  EXPECT_EQ(fine, 3);
}

}  // namespace
}  // namespace provlin::provenance
