// Workflow diff and lineage across versions (§3.4 generalization).

#include "lineage/versioned_lineage.h"

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "engine/executor.h"
#include "provenance/recorder.h"
#include "workflow/builder.h"
#include "workflow/diff.h"

namespace provlin::lineage {
namespace {

using workflow::DataflowBuilder;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

/// v1: in -> up -> out.   v2 adds a tagging step after up.
std::shared_ptr<const workflow::Dataflow> V1() {
  DataflowBuilder b("pipeline-v1");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("up")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "up:x");
  b.Arc("up:y", "workflow:out");
  return *b.Build();
}

std::shared_ptr<const workflow::Dataflow> V2() {
  DataflowBuilder b("pipeline-v2");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("up")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Proc("tag")
      .Activity("prefix")
      .Config("prefix", ">")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "up:x");
  b.Arc("up:y", "tag:x");
  b.Arc("tag:y", "workflow:out");
  return *b.Build();
}

TEST(DataflowDiff, DetectsStructuralChanges) {
  auto diff = workflow::DiffDataflows(*V1(), *V2());
  EXPECT_EQ(diff.added_processors, (std::vector<std::string>{"tag"}));
  EXPECT_TRUE(diff.removed_processors.empty());
  EXPECT_TRUE(diff.changed_processors.empty());
  EXPECT_EQ(diff.added_arcs.size(), 2u);   // up->tag, tag->out
  EXPECT_EQ(diff.removed_arcs.size(), 1u); // up->out
  EXPECT_TRUE(diff.added_ports.empty());
  EXPECT_FALSE(diff.Empty());
  EXPECT_NE(diff.ToString().find("+proc tag"), std::string::npos);
}

TEST(DataflowDiff, IdenticalFlowsAreEmpty) {
  auto diff = workflow::DiffDataflows(*V1(), *V1());
  EXPECT_TRUE(diff.Empty());
  EXPECT_NE(diff.ToString().find("no differences"), std::string::npos);
}

TEST(DataflowDiff, DetectsChangedProcessorAndPorts) {
  DataflowBuilder b("pipeline-v1b");
  b.Input("in", PortType::String(1));
  b.Input("extra", PortType::String(0));
  b.Output("out", PortType::String(1));
  b.Proc("up")
      .Activity("to_lower")  // changed activity
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "up:x");
  b.Arc("up:y", "workflow:out");
  auto v1b = *b.Build();

  auto diff = workflow::DiffDataflows(*V1(), *v1b);
  EXPECT_EQ(diff.changed_processors, (std::vector<std::string>{"up"}));
  EXPECT_EQ(diff.added_ports, (std::vector<std::string>{"in extra string"}));
}

class VersionedLineageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<engine::ActivityRegistry>();
    engine::RegisterBuiltinActivities(registry_.get());
    store_.emplace(*provenance::TraceStore::Open(&db_));

    ASSERT_TRUE(workflows_.Register(V1()).ok());
    ASSERT_TRUE(workflows_.Register(V2()).ok());

    Execute(V1(), "run-v1a", {"ada", "grace"});
    Execute(V1(), "run-v1b", {"alan"});
    Execute(V2(), "run-v2a", {"edsger"});
  }

  void Execute(std::shared_ptr<const workflow::Dataflow> flow,
               const std::string& run_id,
               const std::vector<std::string>& names) {
    provenance::TraceRecorder recorder(&*store_);
    engine::Executor executor(registry_.get(), &recorder);
    auto result =
        executor.Execute(*flow, {{"in", Value::StringList(names)}}, run_id);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(recorder.status().ok());
  }

  storage::Database db_;
  std::optional<provenance::TraceStore> store_;
  std::unique_ptr<engine::ActivityRegistry> registry_;
  WorkflowRegistry workflows_;
};

TEST_F(VersionedLineageTest, RegistryBasics) {
  EXPECT_EQ(workflows_.Names(),
            (std::vector<std::string>{"pipeline-v1", "pipeline-v2"}));
  EXPECT_TRUE(workflows_.Get("pipeline-v1").ok());
  EXPECT_FALSE(workflows_.Get("pipeline-v3").ok());
  EXPECT_FALSE(workflows_.Register(V1()).ok());  // duplicate
}

TEST_F(VersionedLineageTest, QuerySpansVersions) {
  VersionedLineage vl(&workflows_, &*store_);
  auto result = vl.QueryAcrossVersions(
      {"run-v1a", "run-v1b", "run-v2a"}, {kWorkflowProcessor, "out"},
      Index({0}), {kWorkflowProcessor});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->versions_queried, 2u);
  EXPECT_TRUE(result->skipped_runs.empty());
  // One workflow-input binding per run, each from its own version.
  ASSERT_EQ(result->answer.bindings.size(), 3u);
  std::set<std::string> values;
  for (const auto& b : result->answer.bindings) {
    values.insert(b.value_repr);
  }
  EXPECT_EQ(values,
            (std::set<std::string>{"\"ada\"", "\"alan\"", "\"edsger\""}));
}

TEST_F(VersionedLineageTest, TargetMissingInOneVersionIsSkipped) {
  VersionedLineage vl(&workflows_, &*store_);
  // "tag" only exists in v2: v1 runs are skipped with a reason.
  auto result = vl.QueryAcrossVersions(
      {"run-v1a", "run-v2a"}, {"tag", "y"}, Index({0}),
      {kWorkflowProcessor});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->versions_queried, 1u);
  ASSERT_EQ(result->skipped_runs.size(), 1u);
  EXPECT_EQ(result->skipped_runs.begin()->first, "run-v1a");
  ASSERT_EQ(result->answer.bindings.size(), 1u);
  EXPECT_EQ(result->answer.bindings[0].run_id, "run-v2a");
}

TEST_F(VersionedLineageTest, UnknownRunAndUnregisteredVersionSkip) {
  WorkflowRegistry only_v1;
  ASSERT_TRUE(only_v1.Register(V1()).ok());
  VersionedLineage vl(&only_v1, &*store_);
  auto result = vl.QueryAcrossVersions(
      {"run-v1a", "run-v2a", "ghost"}, {kWorkflowProcessor, "out"},
      Index({0}), {kWorkflowProcessor});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->versions_queried, 1u);
  EXPECT_EQ(result->skipped_runs.size(), 2u);  // v2 run + ghost
  ASSERT_EQ(result->answer.bindings.size(), 1u);
  EXPECT_EQ(result->answer.bindings[0].run_id, "run-v1a");
}

}  // namespace
}  // namespace provlin::lineage
