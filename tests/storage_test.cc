// Table, hash index, datum and schema behaviour of the embedded engine.

#include <gtest/gtest.h>

#include "storage/hash_index.h"
#include "storage/table.h"

namespace provlin::storage {
namespace {

Schema TestSchema() {
  return Schema({{"run", DatumKind::kString},
                 {"proc", DatumKind::kString},
                 {"idx", DatumKind::kString},
                 {"val", DatumKind::kInt}});
}

TEST(Datum, KindsAndOrdering) {
  EXPECT_TRUE(Datum::Null().is_null());
  EXPECT_LT(Datum::Null(), Datum(int64_t{0}));  // null sorts first
  EXPECT_LT(Datum(int64_t{1}), Datum(int64_t{2}));
  EXPECT_LT(Datum("a"), Datum("b"));
  EXPECT_EQ(Datum("x"), Datum("x"));
  EXPECT_NE(Datum("x"), Datum("y"));
}

TEST(Datum, CompareKeysLexicographic) {
  EXPECT_EQ(CompareKeys({Datum("a")}, {Datum("a")}), 0);
  EXPECT_LT(CompareKeys({Datum("a")}, {Datum("b")}), 0);
  EXPECT_LT(CompareKeys({Datum("a")}, {Datum("a"), Datum("x")}), 0);
  EXPECT_GT(CompareKeys({Datum("b")}, {Datum("a"), Datum("z")}), 0);
}

TEST(Datum, KeyHasPrefix) {
  Key key{Datum("a"), Datum("b"), Datum("c")};
  EXPECT_TRUE(KeyHasPrefix(key, {}));
  EXPECT_TRUE(KeyHasPrefix(key, {Datum("a")}));
  EXPECT_TRUE(KeyHasPrefix(key, {Datum("a"), Datum("b")}));
  EXPECT_FALSE(KeyHasPrefix(key, {Datum("b")}));
  EXPECT_FALSE(KeyHasPrefix({Datum("a")}, key));
}

TEST(Schema, ColumnLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(*s.ColumnIndex("proc"), 1u);
  EXPECT_FALSE(s.ColumnIndex("nope").ok());
  auto idx = s.ColumnIndices({"idx", "run"});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, (std::vector<size_t>{2, 0}));
}

TEST(Schema, ValidateRow) {
  Schema s = TestSchema();
  EXPECT_TRUE(
      s.ValidateRow({Datum("r"), Datum("p"), Datum("i"), Datum(int64_t{1})})
          .ok());
  // NULL allowed anywhere.
  EXPECT_TRUE(
      s.ValidateRow({Datum("r"), Datum::Null(), Datum("i"), Datum::Null()})
          .ok());
  // Wrong arity.
  EXPECT_FALSE(s.ValidateRow({Datum("r")}).ok());
  // Wrong kind.
  EXPECT_FALSE(
      s.ValidateRow({Datum("r"), Datum("p"), Datum("i"), Datum("not-int")})
          .ok());
}

TEST(HashIndex, InsertLookupErase) {
  HashIndex idx;
  idx.Insert({Datum("a")}, 1);
  idx.Insert({Datum("a")}, 2);
  idx.Insert({Datum("b")}, 3);
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.Lookup({Datum("a")}), (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(idx.Erase({Datum("a")}, 1));
  EXPECT_FALSE(idx.Erase({Datum("a")}, 1));
  EXPECT_FALSE(idx.Erase({Datum("z")}, 9));
  EXPECT_EQ(idx.Lookup({Datum("a")}), (std::vector<uint64_t>{2}));
}

TEST(HashIndex, DuplicateInsertIgnored) {
  HashIndex idx;
  idx.Insert({Datum("a")}, 1);
  idx.Insert({Datum("a")}, 1);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(Table, InsertGetDelete) {
  Table t("t", TestSchema());
  auto rid = t.Insert({Datum("r0"), Datum("P"), Datum("i"), Datum(int64_t{7})});
  ASSERT_TRUE(rid.ok());
  auto row = t.Get(*rid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[3].AsInt(), 7);
  EXPECT_EQ(t.num_rows(), 1u);
  ASSERT_TRUE(t.Delete(*rid).ok());
  EXPECT_FALSE(t.Get(*rid).ok());
  EXPECT_FALSE(t.Delete(*rid).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(Table, InsertValidatesSchema) {
  Table t("t", TestSchema());
  EXPECT_FALSE(t.Insert({Datum("r0")}).ok());
  EXPECT_FALSE(
      t.Insert({Datum("r0"), Datum(int64_t{1}), Datum("i"), Datum(int64_t{1})})
          .ok());
}

TEST(Table, SecondaryBTreeIndexMaintained) {
  Table t("t", TestSchema());
  ASSERT_TRUE(
      t.CreateIndex({"by_proc", {"run", "proc"}, IndexType::kBTree}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Datum("r0"), Datum("P" + std::to_string(i % 3)),
                          Datum("i"), Datum(int64_t{i})})
                    .ok());
  }
  auto rids = t.IndexLookup("by_proc", {Datum("r0"), Datum("P1")});
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 3u);  // i = 1, 4, 7
  EXPECT_TRUE(t.CheckIndexConsistency().ok());
  // Delete updates the index.
  ASSERT_TRUE(t.Delete(rids->front()).ok());
  EXPECT_EQ(t.IndexLookup("by_proc", {Datum("r0"), Datum("P1")})->size(), 2u);
  EXPECT_TRUE(t.CheckIndexConsistency().ok());
}

TEST(Table, IndexBackfillsExistingRows) {
  Table t("t", TestSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.Insert({Datum("r0"), Datum("P"), Datum("i"),
                          Datum(int64_t{i})})
                    .ok());
  }
  ASSERT_TRUE(t.CreateIndex({"by_run", {"run"}, IndexType::kHash}).ok());
  auto rids = t.IndexLookup("by_run", {Datum("r0")});
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 5u);
}

TEST(Table, DuplicateIndexNameRejected) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex({"i1", {"run"}, IndexType::kBTree}).ok());
  EXPECT_FALSE(t.CreateIndex({"i1", {"proc"}, IndexType::kBTree}).ok());
}

TEST(Table, IndexOnUnknownColumnRejected) {
  Table t("t", TestSchema());
  EXPECT_FALSE(t.CreateIndex({"i1", {"nope"}, IndexType::kBTree}).ok());
  EXPECT_FALSE(t.CreateIndex({"i1", {}, IndexType::kBTree}).ok());
}

TEST(Table, PrefixAndRangeLookupRequireBTree) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex({"h", {"run"}, IndexType::kHash}).ok());
  EXPECT_FALSE(t.IndexPrefixLookup("h", {Datum("r0")}).ok());
  EXPECT_FALSE(t.IndexRangeLookup("h", {Datum("a")}, {Datum("b")}).ok());
}

TEST(Table, IndexLookupArityChecked) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex({"b", {"run", "proc"}, IndexType::kBTree}).ok());
  EXPECT_FALSE(t.IndexLookup("b", {Datum("r0")}).ok());
  EXPECT_FALSE(t.IndexLookup("nonexistent", {Datum("r0")}).ok());
}

TEST(Table, FullScanSkipsTombstones) {
  Table t("t", TestSchema());
  std::vector<uint64_t> rids;
  for (int i = 0; i < 4; ++i) {
    rids.push_back(*t.Insert(
        {Datum("r"), Datum("P"), Datum("i"), Datum(int64_t{i})}));
  }
  ASSERT_TRUE(t.Delete(rids[1]).ok());
  EXPECT_EQ(t.FullScan(), (std::vector<uint64_t>{rids[0], rids[2], rids[3]}));
  EXPECT_EQ(t.num_slots(), 4u);
}

TEST(Table, StatsCountAccessPaths) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex({"b", {"run"}, IndexType::kBTree}).ok());
  ASSERT_TRUE(
      t.Insert({Datum("r"), Datum("P"), Datum("i"), Datum(int64_t{0})}).ok());
  t.ResetStats();
  (void)t.IndexLookup("b", {Datum("r")});
  (void)t.FullScan();
  EXPECT_EQ(t.stats().index_probes, 1u);
  EXPECT_EQ(t.stats().full_scans, 1u);
}

}  // namespace
}  // namespace provlin::storage
