// Dataflow model: ports, arcs, builder, lookup helpers.

#include "workflow/dataflow.h"

#include <gtest/gtest.h>

#include "workflow/builder.h"

namespace provlin::workflow {
namespace {

Result<std::shared_ptr<const Dataflow>> TwoStep() {
  DataflowBuilder b("two_step");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("p1")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Proc("p2")
      .Activity("to_lower")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p1:x");
  b.Arc("p1:y", "p2:x");
  b.Arc("p2:y", "workflow:out");
  return b.Build();
}

TEST(Dataflow, BuilderProducesValidatedFlow) {
  auto flow = TwoStep();
  ASSERT_TRUE(flow.ok()) << flow.status().ToString();
  EXPECT_EQ((*flow)->name(), "two_step");
  EXPECT_EQ((*flow)->num_processors(), 2u);
  EXPECT_EQ((*flow)->arcs().size(), 3u);
}

TEST(Dataflow, FindProcessorAndPorts) {
  auto flow = *TwoStep();
  const Processor* p1 = flow->FindProcessor("p1");
  ASSERT_NE(p1, nullptr);
  EXPECT_NE(p1->FindInput("x"), nullptr);
  EXPECT_EQ(p1->FindInput("y"), nullptr);
  EXPECT_NE(p1->FindOutput("y"), nullptr);
  EXPECT_EQ(p1->InputOrdinal("x"), 0u);
  EXPECT_FALSE(p1->InputOrdinal("nope").has_value());
  EXPECT_EQ(flow->FindProcessor("nope"), nullptr);
  EXPECT_NE(flow->FindWorkflowInput("in"), nullptr);
  EXPECT_NE(flow->FindWorkflowOutput("out"), nullptr);
  EXPECT_EQ(flow->FindWorkflowInput("out"), nullptr);
}

TEST(Dataflow, ArcsIntoAndFrom) {
  auto flow = *TwoStep();
  auto into_p2 = flow->ArcsInto(PortRef{"p2", "x"});
  ASSERT_EQ(into_p2.size(), 1u);
  EXPECT_EQ(into_p2[0]->src.ToString(), "p1:y");
  auto from_p1 = flow->ArcsFrom(PortRef{"p1", "y"});
  ASSERT_EQ(from_p1.size(), 1u);
  EXPECT_TRUE(flow->ArcsInto(PortRef{"p1", "nope"}).empty());
}

TEST(Dataflow, OutputPortCanFanOut) {
  DataflowBuilder b("fanout");
  b.Input("in", PortType::String(1));
  b.Output("out1", PortType::String(1));
  b.Output("out2", PortType::String(1));
  b.Proc("p")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x");
  b.Arc("p:y", "workflow:out1");
  b.Arc("p:y", "workflow:out2");
  EXPECT_TRUE(b.Build().ok());
}

TEST(Dataflow, InputPortRejectsSecondIncomingArc) {
  DataflowBuilder b("dup_arc");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("p")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x");
  b.Arc("p:y", "p:x");  // second arc into p:x
  EXPECT_FALSE(b.Build().ok());
}

TEST(Dataflow, PortDeclaredTypeResolution) {
  auto flow = *TwoStep();
  auto t = flow->PortDeclaredType(PortRef{"p1", "y"}, /*as_destination=*/false);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->depth, 0);
  auto wt = flow->PortDeclaredType(PortRef{kWorkflowProcessor, "in"},
                                   /*as_destination=*/false);
  ASSERT_TRUE(wt.ok());
  EXPECT_EQ(wt->depth, 1);
  EXPECT_FALSE(
      flow->PortDeclaredType(PortRef{"p1", "zzz"}, false).ok());
  EXPECT_FALSE(
      flow->PortDeclaredType(PortRef{"zzz", "y"}, false).ok());
}

TEST(ParsePortRef, AcceptsWellFormed) {
  auto ref = ParsePortRef("proc:port");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->processor, "proc");
  EXPECT_EQ(ref->port, "port");
}

TEST(ParsePortRef, RejectsMalformed) {
  EXPECT_FALSE(ParsePortRef("noport").ok());
  EXPECT_FALSE(ParsePortRef(":port").ok());
  EXPECT_FALSE(ParsePortRef("proc:").ok());
}

TEST(PortRef, StringAndOrdering) {
  PortRef a{"p", "x"};
  PortRef b{"p", "y"};
  EXPECT_EQ(a.ToString(), "p:x");
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a, (PortRef{"p", "x"}));
}

TEST(Arc, ToStringFormat) {
  Arc arc{PortRef{"a", "y"}, PortRef{"b", "x"}};
  EXPECT_EQ(arc.ToString(), "a:y -> b:x");
}

}  // namespace
}  // namespace provlin::workflow
