// Lineage engines on hand-built workflows: the paper's Fig. 3 example,
// focused/unfocused behaviour, granularity loss at coarse processors,
// plan caching.

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "testbed/workbench.h"
#include "workflow/builder.h"

namespace provlin::lineage {
namespace {

using testbed::Workbench;
using workflow::DataflowBuilder;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

/// The paper's Fig. 3: Q iterates over v, R maps w to a list, P crosses
/// Q's output with R's output while consuming constant c whole.
std::unique_ptr<Workbench> Fig3() {
  DataflowBuilder b("fig3");
  b.Input("v", PortType::String(1));
  b.Input("w", PortType::String(0));
  b.Input("c", PortType::String(0));
  b.Output("y", PortType::String(2));
  b.Proc("Q")
      .Activity("to_upper")
      .In("X", PortType::String(0))
      .Out("Y", PortType::String(0));
  b.Proc("R")
      .Activity("split_words")
      .In("X", PortType::String(0))
      .Out("Y", PortType::String(1));
  b.Proc("P")
      .Activity("identity")
      .In("X1", PortType::String(0))
      .In("X2", PortType::String(0))
      .In("X3", PortType::String(0))
      .Out("Y1", PortType::String(0))
      .Out("Y2", PortType::String(0))
      .Out("Y3", PortType::String(0));
  b.Arc("workflow:v", "Q:X");
  b.Arc("workflow:c", "P:X2");
  b.Arc("workflow:w", "R:X");
  b.Arc("Q:Y", "P:X1");
  b.Arc("R:Y", "P:X3");
  b.Arc("P:Y1", "workflow:y");
  auto flow = b.Build();
  EXPECT_TRUE(flow.ok()) << flow.status().ToString();
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  auto wb = Workbench::Create(*flow, registry);
  EXPECT_TRUE(wb.ok());
  auto r = (*wb)->Run({{"v", Value::StringList({"a1", "a2", "a3"})},
                       {"w", Value::Str("b1 b2")},
                       {"c", Value::Str("c")}},
                      "run");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(*wb);
}

TEST(Lineage, PaperFig3WorkedExample) {
  // lin(P:Y[h,l], {Q, R}) = { ⟨Q:X[h], v⟩, ⟨R:X[], w⟩ } (§2.4).
  auto wb = Fig3();
  InterestSet interest{"Q", "R"};
  PortRef target{"P", "Y1"};
  Index q({1, 0});  // h=2, l=1 in paper's 1-based notation

  auto ni = wb->Naive().Query(LineageRequest::SingleRun("run", target, q, interest));
  ASSERT_TRUE(ni.ok()) << ni.status().ToString();
  auto ip = wb->IndexProj()->Query(LineageRequest::SingleRun("run", target, q, interest));
  ASSERT_TRUE(ip.ok()) << ip.status().ToString();

  EXPECT_EQ(ni->bindings, ip->bindings);
  ASSERT_EQ(ip->bindings.size(), 2u);
  // ⟨Q:X[2], "a2"⟩ — fine-grained.
  EXPECT_EQ(ip->bindings[0].port.ToString(), "Q:X");
  EXPECT_EQ(ip->bindings[0].index, Index({1}));
  EXPECT_EQ(ip->bindings[0].value_repr, "\"a2\"");
  // ⟨R:X[], "b1 b2"⟩ — coarse: R consumed w whole.
  EXPECT_EQ(ip->bindings[1].port.ToString(), "R:X");
  EXPECT_EQ(ip->bindings[1].index, Index());
  EXPECT_EQ(ip->bindings[1].value_repr, "\"b1 b2\"");
}

TEST(Lineage, PaperFig3WholeValueQuery) {
  // lin(P:Y[], {Q,R}): coarse query returns every Q element + R whole.
  auto wb = Fig3();
  auto ip = wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index(),
                                   InterestSet{"Q", "R"}));
  ASSERT_TRUE(ip.ok());
  auto ni = wb->Naive().Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index(),
                              InterestSet{"Q", "R"}));
  ASSERT_TRUE(ni.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
  EXPECT_EQ(ip->bindings.size(), 4u);  // Q:X[1..3] + R:X[]
}

TEST(Lineage, ConstantInputAttributedViaP) {
  // Focused on P itself: its input bindings include the constant c.
  auto wb = Fig3();
  auto ip =
      wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index({0, 0}),
                             InterestSet{"P"}));
  ASSERT_TRUE(ip.ok());
  ASSERT_EQ(ip->bindings.size(), 3u);
  EXPECT_EQ(ip->bindings[0].port.ToString(), "P:X1");
  EXPECT_EQ(ip->bindings[1].port.ToString(), "P:X2");
  EXPECT_EQ(ip->bindings[1].value_repr, "\"c\"");
  EXPECT_EQ(ip->bindings[2].port.ToString(), "P:X3");
}

TEST(Lineage, WorkflowInputsAsInterestSet) {
  auto wb = Fig3();
  InterestSet interest{kWorkflowProcessor};
  auto ni = wb->Naive().Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index({2, 1}), interest));
  ASSERT_TRUE(ni.ok());
  auto ip = wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index({2, 1}),
                                   interest));
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
  // v (fine: element [2]), w (whole), c (whole).
  ASSERT_EQ(ip->bindings.size(), 3u);
  EXPECT_EQ(ip->bindings[0].port.ToString(), "workflow:c");
  EXPECT_EQ(ip->bindings[1].port.ToString(), "workflow:v");
  EXPECT_EQ(ip->bindings[1].index, Index({2}));
  EXPECT_EQ(ip->bindings[1].value_repr, "\"a3\"");
  EXPECT_EQ(ip->bindings[2].port.ToString(), "workflow:w");
}

TEST(Lineage, UnfocusedQueryCollectsEverything) {
  auto wb = Fig3();
  auto ip = wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index({0, 0}),
                                   InterestSet{}));
  ASSERT_TRUE(ip.ok());
  auto ni =
      wb->Naive().Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index({0, 0}), InterestSet{}));
  ASSERT_TRUE(ni.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
  // P's three inputs + Q:X element + R:X + three workflow inputs.
  EXPECT_GE(ip->bindings.size(), 6u);
}

TEST(Lineage, QueryFromIntermediatePort) {
  auto wb = Fig3();
  auto ip = wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"Q", "Y"}, Index({1}),
                                   InterestSet{kWorkflowProcessor}));
  ASSERT_TRUE(ip.ok());
  auto ni = wb->Naive().Query(LineageRequest::SingleRun("run", {"Q", "Y"}, Index({1}),
                              InterestSet{kWorkflowProcessor}));
  ASSERT_TRUE(ni.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
  ASSERT_EQ(ip->bindings.size(), 1u);
  EXPECT_EQ(ip->bindings[0].port.ToString(), "workflow:v");
  EXPECT_EQ(ip->bindings[0].index, Index({1}));
}

TEST(Lineage, UnknownTargetsFailCleanly) {
  auto wb = Fig3();
  EXPECT_FALSE(
      wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"ghost", "Y"}, Index(), {})).ok());
  EXPECT_FALSE(
      wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"P", "ghost"}, Index(), {})).ok());
  EXPECT_FALSE(wb->IndexProj()
                   ->Query(LineageRequest::SingleRun("run", {kWorkflowProcessor, "ghost"}, Index(), {}))
                   .ok());
  // NI on a nonexistent port finds nothing (empty, not an error — the
  // trace simply has no matching events).
  auto ni = wb->Naive().Query(LineageRequest::SingleRun("run", {"ghost", "Y"}, Index(), {}));
  ASSERT_TRUE(ni.ok());
  EXPECT_TRUE(ni->bindings.empty());
}

TEST(Lineage, UnknownRunYieldsEmptyAnswer) {
  auto wb = Fig3();
  auto ip = wb->IndexProj()->Query(LineageRequest::SingleRun("nope", {"P", "Y1"}, Index({0, 0}),
                                   InterestSet{"Q"}));
  ASSERT_TRUE(ip.ok());
  EXPECT_TRUE(ip->bindings.empty());
}

TEST(Lineage, PlanCacheHitsOnRepeatedQueries) {
  auto wb = Fig3();
  wb->IndexProj()->ClearPlanCache();
  auto first = wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index({0, 0}),
                                      InterestSet{"Q"}));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->timing.plan_cache_hit);
  auto second = wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index({0, 0}),
                                       InterestSet{"Q"}));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->timing.plan_cache_hit);
  EXPECT_EQ(first->bindings, second->bindings);
  EXPECT_EQ(wb->IndexProj()->plan_cache_size(), 1u);
  // A different interest set is a different plan.
  ASSERT_TRUE(wb->IndexProj()
                  ->Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index({0, 0}),
                          InterestSet{"R"}))
                  .ok());
  EXPECT_EQ(wb->IndexProj()->plan_cache_size(), 2u);
}

TEST(Lineage, PlanListsOneQueryPerInterestingProcessorInput) {
  auto wb = Fig3();
  auto plan = wb->IndexProj()->Plan({"P", "Y1"}, Index({0, 0}),
                                    InterestSet{"Q", "R"});
  ASSERT_TRUE(plan.ok());
  // Q:X and R:X — one focused trace query each.
  EXPECT_EQ((*plan)->queries.size(), 2u);
  EXPECT_GT((*plan)->graph_steps, 0u);
}

TEST(Lineage, GranularityLossThroughCoarseProcessorIsShared) {
  // Downstream of R (coarse), both engines report R's whole input; the
  // precision of the Q branch is preserved independently.
  auto wb = Fig3();
  InterestSet interest{kWorkflowProcessor};
  auto ni = wb->Naive().Query(LineageRequest::SingleRun("run", {"P", "Y3"}, Index({0, 1}), interest));
  auto ip =
      wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"P", "Y3"}, Index({0, 1}), interest));
  ASSERT_TRUE(ni.ok());
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
}

TEST(Lineage, TimingBreakdownPopulated) {
  auto wb = Fig3();
  auto ip = wb->IndexProj()->Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index({0, 0}),
                                   InterestSet{"Q"}));
  ASSERT_TRUE(ip.ok());
  EXPECT_GT(ip->timing.trace_probes, 0u);
  EXPECT_GT(ip->timing.graph_steps, 0u);
  EXPECT_GE(ip->timing.t1_ms, 0.0);
  EXPECT_GE(ip->timing.t2_ms, 0.0);
  auto ni = wb->Naive().Query(LineageRequest::SingleRun("run", {"P", "Y1"}, Index({0, 0}),
                              InterestSet{"Q"}));
  ASSERT_TRUE(ni.ok());
  EXPECT_EQ(ni->timing.t1_ms, 0.0);  // NI has no spec-graph phase
  EXPECT_GT(ni->timing.trace_probes, ip->timing.trace_probes);
}

}  // namespace
}  // namespace provlin::lineage
