// Sealing runs into compressed immutable segments is purely physical
// (DESIGN.md §13): a store that answers probes from sealed segments —
// whether sealed by policy (--compress seal/always) or explicitly
// (SealRun / SealAllRuns) — must return bindings identical to the
// all-hot B+tree store, with the same logical probe counts and the
// same EXPLAIN row counts per step, for both engines and both probe
// execution modes. The suite sweeps the paper workloads (GK, PD,
// synthetic) plus random workflows over shards ∈ {1, 4} and the three
// sealing shapes (policy-mixed hot/sealed, everything sealed,
// explicitly sealed), and checks DeleteRun and image persistence
// against sealed runs.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "engine/builtin_activities.h"
#include "lineage/engine.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "provenance/trace_store.h"
#include "testbed/gk_workflow.h"
#include "testbed/pd_workflow.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"
#include "tests/random_workflow.h"

namespace provlin::lineage {
namespace {

using provenance::CompressMode;
using provenance::TraceStoreOptions;
using testbed::Workbench;
using testbed_testing::GeneratedWorkflow;
using testbed_testing::IsDotShapeMismatch;
using testbed_testing::MakeRandomWorkflow;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

/// A workbench with its runs executed, ready to be queried. The factory
/// is invoked once per store variant so every store captures the same
/// trace through an identical execution.
struct Populated {
  std::unique_ptr<Workbench> wb;
  std::vector<std::string> runs;
  std::vector<std::pair<PortRef, Index>> queries;
  std::vector<InterestSet> interests;
};

using Factory = std::function<Populated(const TraceStoreOptions&)>;

/// One sealed-store shape under test.
struct Variant {
  const char* name;
  CompressMode mode;
  size_t shards;
  /// Seal the remaining hot tier after capture (Flush for kAlways,
  /// SealAllRuns for the explicit-API shape).
  bool seal_rest;
};

const Variant kVariants[] = {
    // Policy sealing at InsertRun: all-but-latest per shard sealed, the
    // latest stays hot — the mixed-tier shape queries must merge across.
    {"seal/1", CompressMode::kSeal, 1, false},
    {"seal/4", CompressMode::kSeal, 4, false},
    // Everything sealed: Flush under kAlways parks the latest run too.
    {"always/1", CompressMode::kAlways, 1, true},
    {"always/4", CompressMode::kAlways, 4, true},
    // Explicit API on an uncompressed store: SealAllRuns after capture.
    {"explicit/1", CompressMode::kOff, 1, true},
};

/// Asserts that `make` produces identical answers on the all-hot store
/// and on every sealed variant: bindings and logical probe counts from
/// both engines in both probe modes, multi-run answers, EXPLAIN row
/// counts, and the record totals themselves.
void ExpectSealingIsPurelyPhysical(const Factory& make) {
  TraceStoreOptions base_options;
  base_options.shards = 1;        // pin: immune to PROVLIN_TEST_SHARDS
  base_options.compress = CompressMode::kOff;  // and PROVLIN_TEST_COMPRESS
  Populated base = make(base_options);
  ASSERT_NE(base.wb, nullptr);
  ASSERT_EQ(base.wb->store()->compress_mode(), CompressMode::kOff);
  ASSERT_EQ(base.wb->store()->ApproxMemory().sealed_rows, 0u);

  auto base_counts = base.wb->store()->CountAllRecords();
  ASSERT_TRUE(base_counts.ok());
  auto base_runs = base.wb->store()->ListRuns();
  ASSERT_TRUE(base_runs.ok());

  auto base_ip = IndexProjLineage::Create(base.wb->flow(), base.wb->store(),
                                          ProbeExecution::kBatched);
  ASSERT_TRUE(base_ip.ok());

  for (const Variant& v : kVariants) {
    TraceStoreOptions options;
    options.shards = v.shards;
    options.compress = v.mode;
    Populated sealed = make(options);
    ASSERT_NE(sealed.wb, nullptr);
    provenance::TraceStore* store = sealed.wb->store();
    ASSERT_EQ(store->compress_mode(), v.mode) << v.name;
    if (v.seal_rest) {
      // Flush seals the remainder under kAlways; the explicit shape
      // drives the public API directly.
      if (v.mode == CompressMode::kAlways) {
        ASSERT_TRUE(store->Flush().ok()) << v.name;
      } else {
        ASSERT_TRUE(store->SealAllRuns().ok()) << v.name;
      }
    }

    // The sealed tier is actually in play, and no row is lost to it:
    // hot + sealed rows account for every xform/xfer row captured.
    auto tiers = store->ApproxMemory();
    // (Sharded kSeal keeps the latest run per shard hot, so with few
    // runs spread 1:1 over shards nothing may be sealed — only the
    // unsharded and seal-the-rest shapes guarantee a non-empty tier.)
    if (v.seal_rest || (v.shards == 1 && base.runs.size() > 1)) {
      EXPECT_GT(tiers.sealed_rows, 0u) << v.name;
    }
    auto counts = store->CountAllRecords();
    ASSERT_TRUE(counts.ok());
    EXPECT_EQ(tiers.hot_rows + tiers.sealed_rows,
              counts->xform_rows + counts->xfer_rows)
        << v.name;
    if (v.seal_rest) {
      EXPECT_EQ(tiers.hot_rows, 0u) << v.name;
    }

    // Same runs, same record totals as the all-hot store.
    auto runs = store->ListRuns();
    ASSERT_TRUE(runs.ok());
    EXPECT_EQ(*runs, *base_runs) << v.name;
    EXPECT_EQ(counts->xform_rows, base_counts->xform_rows) << v.name;
    EXPECT_EQ(counts->xfer_rows, base_counts->xfer_rows) << v.name;
    EXPECT_EQ(counts->value_rows, base_counts->value_rows) << v.name;

    // The property is per engine and per probe mode: the SAME engine on
    // the sealed store answers exactly as on the all-hot store.
    NaiveLineage ni_single(base.wb->store(), ProbeExecution::kSingleProbe);
    NaiveLineage ni_batched(base.wb->store(), ProbeExecution::kBatched);
    auto ip_single = IndexProjLineage::Create(
        base.wb->flow(), base.wb->store(), ProbeExecution::kSingleProbe);
    auto ip_batched = IndexProjLineage::Create(
        base.wb->flow(), base.wb->store(), ProbeExecution::kBatched);
    ASSERT_TRUE(ip_single.ok());
    ASSERT_TRUE(ip_batched.ok());
    NaiveLineage se_ni_single(store, ProbeExecution::kSingleProbe);
    NaiveLineage se_ni_batched(store, ProbeExecution::kBatched);
    auto se_ip_single = IndexProjLineage::Create(
        sealed.wb->flow(), store, ProbeExecution::kSingleProbe);
    auto se_ip_batched = IndexProjLineage::Create(
        sealed.wb->flow(), store, ProbeExecution::kBatched);
    ASSERT_TRUE(se_ip_single.ok());
    ASSERT_TRUE(se_ip_batched.ok());
    const std::pair<const LineageEngine*, const LineageEngine*> pairs[] = {
        {&ni_single, &se_ni_single},
        {&ni_batched, &se_ni_batched},
        {&*ip_single, &*se_ip_single},
        {&*ip_batched, &*se_ip_batched},
    };

    for (const auto& [port, q] : base.queries) {
      for (const InterestSet& interest : base.interests) {
        auto tag = [&, port = port, q = q] {
          return port.ToString() + q.ToString() + " |P|=" +
                 std::to_string(interest.size()) + " variant=" + v.name;
        };
        for (const std::string& run : base.runs) {
          LineageRequest req =
              LineageRequest::SingleRun(run, port, q, interest);
          for (const auto& [hot, sealeng] : pairs) {
            auto want = hot->Query(req);
            ASSERT_TRUE(want.ok())
                << tag() << ": " << want.status().ToString();
            auto got = sealeng->Query(req);
            ASSERT_TRUE(got.ok())
                << sealeng->name() << " " << tag() << ": "
                << got.status().ToString();
            ASSERT_EQ(got->bindings, want->bindings)
                << sealeng->name() << " diverges at " << tag() << " run "
                << run;
            // Sealing must not change the logical probe count either —
            // only how each probe is answered.
            EXPECT_EQ(got->timing.trace_probes, want->timing.trace_probes)
                << sealeng->name() << " probes changed at " << tag();
          }

          // EXPLAIN against the sealed store mirrors the all-hot plan:
          // same steps, same logical row and binding counts.
          auto base_ex = base_ip->Explain(req);
          auto se_ex = se_ip_batched->Explain(req);
          ASSERT_TRUE(base_ex.ok()) << tag();
          ASSERT_TRUE(se_ex.ok()) << tag();
          EXPECT_EQ(se_ex->answer.bindings, base_ex->answer.bindings);
          ASSERT_EQ(se_ex->steps.size(), base_ex->steps.size()) << tag();
          for (size_t s = 0; s < base_ex->steps.size(); ++s) {
            EXPECT_EQ(se_ex->steps[s].rows, base_ex->steps[s].rows)
                << tag() << " step " << s;
            EXPECT_EQ(se_ex->steps[s].bindings, base_ex->steps[s].bindings)
                << tag() << " step " << s;
            EXPECT_EQ(se_ex->steps[s].trace_probes,
                      base_ex->steps[s].trace_probes)
                << tag() << " step " << s;
          }
        }

        // Multi-run requests mix hot and sealed runs inside one batch —
        // the tier split in FindBatch must keep per-run answers intact.
        if (base.runs.size() > 1) {
          LineageRequest multi;
          multi.runs = base.runs;
          multi.target = port;
          multi.index = q;
          multi.interest = interest;
          for (const auto& [hot, sealeng] : pairs) {
            auto want = hot->Query(multi);
            ASSERT_TRUE(want.ok()) << tag();
            auto got = sealeng->Query(multi);
            ASSERT_TRUE(got.ok()) << tag();
            EXPECT_EQ(got->bindings, want->bindings)
                << "multi-run " << sealeng->name() << " diverges at "
                << tag();
          }
        }
      }
    }
  }
}

/// Synthetic chains: five runs with distinct list sizes, so sealed
/// segments carry distinct row volumes (and, sharded, land on distinct
/// shards).
Populated MakeSynthetic(const TraceStoreOptions& options) {
  Populated p;
  auto wb = Workbench::Synthetic(8, options);
  EXPECT_TRUE(wb.ok());
  p.wb = std::move(*wb);
  for (int r = 0; r < 5; ++r) {
    std::string run = "r" + std::to_string(r);
    EXPECT_TRUE(p.wb->RunSynthetic(2 + r, run).ok()) << run;
    p.runs.push_back(run);
  }
  p.queries = {{{kWorkflowProcessor, "RESULT"}, Index()},
               {{kWorkflowProcessor, "RESULT"}, Index({1})},
               {{kWorkflowProcessor, "RESULT"}, Index({1, 2})}};
  p.interests = {{}, {kWorkflowProcessor}, {testbed::kListGen}};
  return p;
}

TEST(CompressEquivalence, Synthetic) {
  ExpectSealingIsPurelyPhysical(MakeSynthetic);
}

TEST(CompressEquivalence, GK) {
  ExpectSealingIsPurelyPhysical([](const TraceStoreOptions& options) {
    Populated p;
    auto wb = Workbench::GK(42, options);
    EXPECT_TRUE(wb.ok());
    p.wb = std::move(*wb);
    for (int r = 0; r < 3; ++r) {
      std::string run = "gk" + std::to_string(r);
      auto result = p.wb->Run(
          {{"list_of_geneIDList", testbed::GkSampleInput()}}, run);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (r == 0) {
        for (const auto& [port, value] : result->outputs) {
          PortRef ref{kWorkflowProcessor, port};
          p.queries.push_back({ref, Index()});
          std::vector<Index> leaves = value.LeafIndices();
          if (!leaves.empty()) p.queries.push_back({ref, leaves.front()});
        }
      }
      p.runs.push_back(run);
    }
    p.interests = {{},
                   {kWorkflowProcessor},
                   {p.wb->flow()->processors().front().name}};
    return p;
  });
}

TEST(CompressEquivalence, PD) {
  ExpectSealingIsPurelyPhysical([](const TraceStoreOptions& options) {
    Populated p;
    auto wb = Workbench::PD(/*text_steps=*/5, /*seed=*/7, options);
    EXPECT_TRUE(wb.ok());
    p.wb = std::move(*wb);
    for (int r = 0; r < 3; ++r) {
      std::string run = "pd" + std::to_string(r);
      auto result = p.wb->Run({{"terms", testbed::PdSampleInput()}}, run);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (r == 0) {
        for (const auto& [port, value] : result->outputs) {
          PortRef ref{kWorkflowProcessor, port};
          p.queries.push_back({ref, Index()});
          std::vector<Index> leaves = value.LeafIndices();
          if (!leaves.empty()) p.queries.push_back({ref, leaves.back()});
        }
      }
      p.runs.push_back(run);
    }
    p.interests = {{}, {kWorkflowProcessor}};
    return p;
  });
}

class CompressEquivalenceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressEquivalenceFuzz, RandomWorkflows) {
  uint64_t seed = GetParam();
  GeneratedWorkflow gen = MakeRandomWorkflow(seed);
  ASSERT_NE(gen.flow, nullptr);

  // Probe-run the workflow once to find out whether this seed executes
  // (ragged dot pairs abort) before sweeping seal variants.
  {
    auto registry = std::make_shared<engine::ActivityRegistry>();
    engine::RegisterBuiltinActivities(registry.get());
    auto wb = std::move(*Workbench::Create(gen.flow, registry));
    auto run = wb->Run(gen.inputs, "probe");
    if (!run.ok() && IsDotShapeMismatch(run.status())) {
      GTEST_SKIP() << "seed " << seed << ": ragged dot pair, skipped";
    }
    ASSERT_TRUE(run.ok()) << run.status().ToString();
  }

  Random rng(seed * 1009 + 17);
  ExpectSealingIsPurelyPhysical([&](const TraceStoreOptions& options) {
    Populated p;
    auto registry = std::make_shared<engine::ActivityRegistry>();
    engine::RegisterBuiltinActivities(registry.get());
    auto wb = Workbench::Create(gen.flow, registry, options);
    EXPECT_TRUE(wb.ok());
    p.wb = std::move(*wb);
    for (int r = 0; r < 4; ++r) {
      std::string run = "cw" + std::to_string(r);
      auto result = p.wb->Run(gen.inputs, run);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (r == 0 && p.queries.empty()) {
        for (const auto& [port, value] : result->outputs) {
          PortRef ref{kWorkflowProcessor, port};
          p.queries.push_back({ref, Index()});
          std::vector<Index> leaves = value.LeafIndices();
          if (!leaves.empty()) {
            p.queries.push_back({ref, leaves[rng.Uniform(leaves.size())]});
          }
        }
      }
      p.runs.push_back(run);
    }
    const auto& procs = gen.flow->processors();
    p.interests = {{}, {procs[rng.Uniform(procs.size())].name}};
    return p;
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressEquivalenceFuzz,
                         ::testing::Range<uint64_t>(20, 26));

// ---------------------------------------------------------------------------
// Maintenance against sealed runs: DeleteRun drops the segment blobs
// and only them; a single run can be sealed on demand; re-opening an
// image that carries segment blobs re-attaches or unseals them per the
// requested mode.
// ---------------------------------------------------------------------------

TEST(CompressMaintenance, DeleteRunDropsSealedSegments) {
  TraceStoreOptions options;
  options.shards = 4;
  options.compress = CompressMode::kAlways;
  auto wb = std::move(*Workbench::Synthetic(4, options));
  for (int r = 0; r < 6; ++r) {
    ASSERT_TRUE(wb->RunSynthetic(3, "d" + std::to_string(r)).ok());
  }
  ASSERT_TRUE(wb->store()->Flush().ok());
  auto tiers = wb->store()->ApproxMemory();
  EXPECT_EQ(tiers.hot_rows, 0u);
  EXPECT_GT(tiers.sealed_rows, 0u);

  auto before = *wb->store()->CountAllRecords();
  auto victim = *wb->store()->CountRecords("d2");
  EXPECT_GT(victim.xform_rows, 0u);
  auto removed = wb->store()->DeleteRun("d2");
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_GT(*removed, 0u);

  auto after = *wb->store()->CountAllRecords();
  EXPECT_EQ(after.xform_rows, before.xform_rows - victim.xform_rows);
  EXPECT_EQ(after.xfer_rows, before.xfer_rows - victim.xfer_rows);
  EXPECT_EQ(after.value_rows, before.value_rows - victim.value_rows);
  auto after_tiers = wb->store()->ApproxMemory();
  EXPECT_EQ(after_tiers.sealed_rows,
            tiers.sealed_rows - victim.xform_rows - victim.xfer_rows);

  // The surviving sealed runs answer exactly as before.
  for (const char* run : {"d0", "d1", "d3", "d4", "d5"}) {
    auto answer = wb->Naive().Query(LineageRequest::SingleRun(
        run, {kWorkflowProcessor, "RESULT"}, Index({1}),
        {testbed::kListGen}));
    ASSERT_TRUE(answer.ok()) << run;
    EXPECT_EQ(answer->bindings.size(), 1u) << run;
  }
  EXPECT_FALSE(wb->store()->DeleteRun("d2").ok());  // NotFound now
}

TEST(CompressMaintenance, SealRunSealsExactlyThatRun) {
  TraceStoreOptions options;
  options.shards = 1;
  options.compress = CompressMode::kOff;
  auto wb = std::move(*Workbench::Synthetic(5, options));
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(wb->RunSynthetic(3, "s" + std::to_string(r)).ok());
  }
  auto all_hot = wb->store()->ApproxMemory();
  EXPECT_EQ(all_hot.sealed_rows, 0u);

  auto s1 = *wb->store()->CountRecords("s1");
  ASSERT_TRUE(wb->store()->SealRun("s1").ok());
  ASSERT_TRUE(wb->store()->SealRun("s1").ok());  // idempotent
  auto mixed = wb->store()->ApproxMemory();
  EXPECT_EQ(mixed.sealed_rows, s1.xform_rows + s1.xfer_rows);
  EXPECT_EQ(mixed.hot_rows + mixed.sealed_rows,
            all_hot.hot_rows + all_hot.sealed_rows);
  EXPECT_FALSE(wb->store()->SealRun("missing").ok());  // NotFound

  // Hot and sealed runs answer alike through the same engine.
  for (const char* run : {"s0", "s1", "s2"}) {
    auto answer = wb->Naive().Query(LineageRequest::SingleRun(
        run, {kWorkflowProcessor, "RESULT"}, Index({1}),
        {testbed::kListGen}));
    ASSERT_TRUE(answer.ok()) << run;
    EXPECT_EQ(answer->bindings.size(), 1u) << run;
  }
}

TEST(CompressMaintenance, SealedImageRoundTripsAndUnsealsOnRequest) {
  std::string path =
      std::string(::testing::TempDir()) + "/compress_roundtrip.db";
  TraceStoreOptions options;
  options.shards = 2;
  options.compress = CompressMode::kAlways;
  auto wb = std::move(*Workbench::Synthetic(5, options));
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(wb->RunSynthetic(3, "p" + std::to_string(r)).ok());
  }
  ASSERT_TRUE(wb->store()->Flush().ok());
  ASSERT_GT(wb->store()->ApproxMemory().sealed_rows, 0u);
  LineageRequest req = LineageRequest::SingleRun(
      "p1", {kWorkflowProcessor, "RESULT"}, Index({1, 2}),
      {testbed::kListGen});
  auto live = wb->Naive().Query(req);
  ASSERT_TRUE(live.ok());
  ASSERT_FALSE(live->bindings.empty());
  ASSERT_TRUE(wb->db()->Save(path).ok());

  // Re-open sealed: the segment blobs re-attach and serve the probes.
  {
    storage::Database db;
    ASSERT_TRUE(db.Load(path).ok());
    TraceStoreOptions reopen;
    reopen.compress = CompressMode::kAlways;
    auto store = *provenance::TraceStore::Open(&db, reopen);
    EXPECT_GT(store.ApproxMemory().sealed_rows, 0u);
    NaiveLineage naive(&store);
    auto cold = naive.Query(req);
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(cold->bindings, live->bindings);
  }

  // Re-open with compression off: everything unseals back into the
  // B+tree tier and the answers stand.
  {
    storage::Database db;
    ASSERT_TRUE(db.Load(path).ok());
    TraceStoreOptions reopen;
    reopen.compress = CompressMode::kOff;
    auto store = *provenance::TraceStore::Open(&db, reopen);
    EXPECT_EQ(store.ApproxMemory().sealed_rows, 0u);
    EXPECT_GT(store.ApproxMemory().hot_rows, 0u);
    NaiveLineage naive(&store);
    auto warm = naive.Query(req);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm->bindings, live->bindings);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace provlin::lineage
