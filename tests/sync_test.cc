// The annotated synchronization primitives in common/sync.h: under GCC
// the annotations are no-ops, so these tests pin the runtime semantics
// the wrappers must preserve over the std primitives they delegate to.
// The compile-time half of the contract lives in tests/thread_safety/.

#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace provlin::common {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu{LockRank::kTestOuter};
  int counter = 0;  // deliberately non-atomic: the mutex is the guard
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(MutexTest, TryLockFailsWhenHeldSucceedsWhenFree) {
  Mutex mu{LockRank::kTestOuter};
  mu.Lock();
  // A second thread must observe the mutex as busy (same-thread TryLock
  // on a held std::mutex is undefined behavior, so probe from another).
  bool acquired = true;
  std::thread prober([&] { acquired = mu.TryLock(); });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  ASSERT_TRUE(mu.TryLock());
  mu.AssertHeld();
  mu.Unlock();
}

TEST(MutexTest, AssertHeldIsANoOpAtRuntime) {
  Mutex mu{LockRank::kTestOuter};
  MutexLock lock(mu);
  mu.AssertHeld();  // must not block or crash while holding
}

TEST(SharedMutexTest, ManyConcurrentReaders) {
  SharedMutex mu{LockRank::kTestOuter};
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      ReaderLock lock(mu);
      int now = concurrent.fetch_add(1, std::memory_order_acq_rel) + 1;
      int expected = peak.load(std::memory_order_relaxed);
      while (expected < now &&
             !peak.compare_exchange_weak(expected, now,
                                         std::memory_order_relaxed)) {
      }
      // Hold the shared lock until every reader has entered, proving
      // shared acquisition really is concurrent (an exclusive-only
      // implementation would deadlock here, caught by the test timeout).
      while (concurrent.load(std::memory_order_acquire) < 4) {
        std::this_thread::yield();
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(peak.load(), 4);
}

TEST(SharedMutexTest, WriterExcludesReadersAndWriters) {
  SharedMutex mu{LockRank::kTestOuter};
  int value = 0;
  std::vector<std::thread> threads;
  threads.reserve(6);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        WriterLock lock(mu);
        ++value;
      }
    });
  }
  std::atomic<bool> tore{false};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        ReaderLock lock(mu);
        if (value < 0 || value > 15000) tore.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(value, 15000);
  EXPECT_FALSE(tore.load());
}

TEST(SharedMutexTest, TryLockVariants) {
  SharedMutex mu{LockRank::kTestOuter};
  ASSERT_TRUE(mu.TryLock());
  bool shared_while_exclusive = true;
  std::thread prober([&] { shared_while_exclusive = mu.TryLockShared(); });
  prober.join();
  EXPECT_FALSE(shared_while_exclusive);
  mu.Unlock();

  ASSERT_TRUE(mu.TryLockShared());
  mu.AssertReaderHeld();
  // A second shared acquisition from another thread must succeed.
  bool second_shared = false;
  std::thread prober2([&] {
    second_shared = mu.TryLockShared();
    if (second_shared) mu.UnlockShared();
  });
  prober2.join();
  EXPECT_TRUE(second_shared);
  mu.UnlockShared();
}

TEST(CondVarTest, LatchWaitAndNotify) {
  struct Latch {
    Mutex mu{LockRank::kTestOuter};
    CondVar cv;
    int count GUARDED_BY(mu) = 3;
  } latch;

  std::vector<std::thread> workers;
  workers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      MutexLock lock(latch.mu);
      if (--latch.count == 0) latch.cv.NotifyAll();
    });
  }
  {
    MutexLock lock(latch.mu);
    while (latch.count != 0) latch.cv.Wait(latch.mu);
    EXPECT_EQ(latch.count, 0);
  }
  for (std::thread& t : workers) t.join();
}

TEST(CondVarTest, NotifyOneWakesAWaiter) {
  struct Box {
    Mutex mu{LockRank::kTestOuter};
    CondVar cv;
    bool ready GUARDED_BY(mu) = false;
    int consumed GUARDED_BY(mu) = 0;
  } box;

  std::thread consumer([&] {
    MutexLock lock(box.mu);
    while (!box.ready) box.cv.Wait(box.mu);
    ++box.consumed;
  });
  {
    MutexLock lock(box.mu);
    box.ready = true;
    box.cv.NotifyOne();
  }
  consumer.join();
  MutexLock lock(box.mu);
  EXPECT_EQ(box.consumed, 1);
}

TEST(ZeroOverheadTest, ReleaseBuildsCompileRankTrackingOut) {
  // The layout half is a static_assert in sync.h (release Mutex ==
  // std primitive). The behavioral half: without PROVLIN_LOCK_DEBUG,
  // HeldDepth() is a constexpr 0 even while a lock is held — there is
  // no per-thread stack to push onto.
  Mutex mu{LockRank::kTestOuter};
  MutexLock lock(mu);
  if (kLockDebugEnabled) {
    EXPECT_EQ(lock_debug::HeldDepth(), 1u);
  } else {
    EXPECT_EQ(lock_debug::HeldDepth(), 0u);
  }
}

TEST(GuardTest, MutexLockReleasesOnScopeExit) {
  Mutex mu{LockRank::kTestOuter};
  {
    MutexLock lock(mu);
  }
  // Destructor released: an immediate re-acquire must not deadlock.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(GuardTest, ReaderAndWriterLocksReleaseOnScopeExit) {
  SharedMutex mu{LockRank::kTestOuter};
  {
    WriterLock lock(mu);
  }
  {
    ReaderLock lock(mu);
  }
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

}  // namespace
}  // namespace provlin::common
