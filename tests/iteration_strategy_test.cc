// Iteration-strategy expressions (footnote 7): parsing, layout, engine
// semantics, and end-to-end lineage under nested cross/dot trees.

#include "workflow/iteration_strategy.h"

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "engine/iteration.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "testbed/workbench.h"
#include "workflow/builder.h"
#include "workflow/workflow_io.h"

namespace provlin::workflow {
namespace {

TEST(StrategyNode, ToStringAndParseRoundTrip) {
  for (const char* text :
       {"a", "cross(a,b)", "dot(a,b)", "cross(a,dot(b,c))",
        "dot(cross(a,b),c)", "cross(dot(a,b),dot(c,d),e)"}) {
    auto parsed = StrategyNode::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->ToString(), text);
  }
}

TEST(StrategyNode, ParseToleratesSpaces) {
  auto parsed = StrategyNode::Parse("cross( a , dot( b , c ) )");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), "cross(a,dot(b,c))");
}

TEST(StrategyNode, ParseRejectsMalformed) {
  EXPECT_FALSE(StrategyNode::Parse("").ok());
  EXPECT_FALSE(StrategyNode::Parse("cross(").ok());
  EXPECT_FALSE(StrategyNode::Parse("cross()").ok());
  EXPECT_FALSE(StrategyNode::Parse("zip(a,b)").ok());
  EXPECT_FALSE(StrategyNode::Parse("cross(a,b) extra").ok());
  EXPECT_FALSE(StrategyNode::Parse("cross(a,,b)").ok());
}

TEST(StrategyLayout, CrossAppendsDotAligns) {
  // cross(a, dot(b, c)) with δ⁺ = (a:1, b:2, c:2): a at offset 0,
  // b and c aligned at offset 1, total 3 levels.
  auto tree = *StrategyNode::Parse("cross(a,dot(b,c))");
  auto layout = LayoutStrategy(tree, {{"a", 1}, {"b", 2}, {"c", 2}});
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  EXPECT_EQ(layout->levels, 3);
  EXPECT_EQ(layout->slots.at("a").offset, 0u);
  EXPECT_EQ(layout->slots.at("a").length, 1u);
  EXPECT_EQ(layout->slots.at("b").offset, 1u);
  EXPECT_EQ(layout->slots.at("b").length, 2u);
  EXPECT_EQ(layout->slots.at("c").offset, 1u);
  EXPECT_EQ(layout->slots.at("c").length, 2u);
}

TEST(StrategyLayout, NonIteratedPortsGetZeroSlots) {
  auto tree = *StrategyNode::Parse("cross(a,b)");
  auto layout = LayoutStrategy(tree, {{"a", 2}, {"b", 0}, {"c", 0}});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->levels, 2);
  EXPECT_EQ(layout->slots.at("b").length, 0u);
  EXPECT_EQ(layout->slots.at("c").length, 0u);  // unreferenced, δ=0
}

TEST(StrategyLayout, Validation) {
  auto tree = *StrategyNode::Parse("dot(a,b)");
  // Unequal dot depths.
  EXPECT_FALSE(LayoutStrategy(tree, {{"a", 1}, {"b", 2}}).ok());
  // Unknown port.
  EXPECT_FALSE(LayoutStrategy(tree, {{"a", 1}}).ok());
  // Duplicate port reference.
  auto dup = *StrategyNode::Parse("cross(a,a)");
  EXPECT_FALSE(LayoutStrategy(dup, {{"a", 1}}).ok());
  // Iterated port missing from the tree.
  auto partial = *StrategyNode::Parse("cross(a)");
  EXPECT_FALSE(LayoutStrategy(partial, {{"a", 1}, {"b", 1}}).ok());
  // Dot with one iterated lane and one whole port is fine.
  EXPECT_TRUE(LayoutStrategy(tree, {{"a", 1}, {"b", 0}}).ok());
}

TEST(StrategyEngine, CrossOfDotShapes) {
  // cross(a, dot(b, c)): |a| x |b| invocations; b and c advance together.
  Value a = Value::StringList({"a1", "a2"});
  Value b = Value::StringList({"b1", "b2", "b3"});
  Value c = Value::StringList({"c1", "c2", "c3"});
  auto tree = *StrategyNode::Parse("cross(pa,dot(pb,pc))");
  auto built = engine::BuildStrategyIterationTree(
      tree, {"pa", "pb", "pc"}, {a, b, c}, {1, 1, 1});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->Depth(), 2);
  EXPECT_EQ(built->CountLeaves(), 6u);
  // Leaf [1][2]: (a2, b3, c3) with indices ([1], [2], [2]).
  const engine::TupleTree& leaf = built->children[1].children[2];
  EXPECT_EQ(leaf.args, (std::vector<Value>{Value::Str("a2"),
                                           Value::Str("b3"),
                                           Value::Str("c3")}));
  EXPECT_EQ(leaf.arg_indices,
            (std::vector<Index>{Index({1}), Index({2}), Index({2})}));
}

TEST(StrategyEngine, DotOfCrossShapes) {
  // dot(cross(a,b), c) with δ(a)=δ(b)=1 and δ(c)=2: the cross of a and b
  // (2 levels) zips with c's two levels.
  Value a = Value::StringList({"a1", "a2"});
  Value b = Value::StringList({"b1", "b2", "b3"});
  Value c = Value::List({Value::StringList({"x", "y", "z"}),
                         Value::StringList({"p", "q", "r"})});
  auto tree = *StrategyNode::Parse("dot(cross(pa,pb),pc)");
  auto built = engine::BuildStrategyIterationTree(
      tree, {"pa", "pb", "pc"}, {a, b, c}, {1, 1, 2});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->CountLeaves(), 6u);
  const engine::TupleTree& leaf = built->children[0].children[1];
  EXPECT_EQ(leaf.args, (std::vector<Value>{Value::Str("a1"),
                                           Value::Str("b2"),
                                           Value::Str("y")}));
  EXPECT_EQ(leaf.arg_indices,
            (std::vector<Index>{Index({0}), Index({1}), Index({0, 1})}));
}

TEST(StrategyEngine, RaggedZipLaneRejected) {
  Value a = Value::StringList({"a1", "a2"});
  Value b = Value::StringList({"b1"});
  auto tree = *StrategyNode::Parse("dot(pa,pb)");
  auto built = engine::BuildStrategyIterationTree(tree, {"pa", "pb"},
                                                  {a, b}, {1, 1});
  EXPECT_FALSE(built.ok());
}

/// Three-input workflow with strategy cross(g, dot(s, l)): genes are
/// crossed against position-wise (sample, label) pairs.
std::unique_ptr<testbed::Workbench> TreeWorkbench() {
  DataflowBuilder bld("tree_strategy");
  bld.Input("genes", PortType::String(1));
  bld.Input("samples", PortType::String(1));
  bld.Input("labels", PortType::String(1));
  bld.Output("out", PortType::String(2));
  auto proc = bld.Proc("combine");
  proc.Activity("identity")
      .StrategyTree(*StrategyNode::Parse("cross(g,dot(s,l))"))
      .In("g", PortType::String(0))
      .In("s", PortType::String(0))
      .In("l", PortType::String(0))
      .Out("og", PortType::String(0))
      .Out("os", PortType::String(0))
      .Out("ol", PortType::String(0));
  bld.Arc("workflow:genes", "combine:g");
  bld.Arc("workflow:samples", "combine:s");
  bld.Arc("workflow:labels", "combine:l");
  bld.Arc("combine:os", "workflow:out");
  auto flow = bld.Build();
  EXPECT_TRUE(flow.ok()) << flow.status().ToString();
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  auto wb = testbed::Workbench::Create(*flow, registry);
  EXPECT_TRUE(wb.ok());
  auto run = (*wb)->Run({{"genes", Value::StringList({"g1", "g2"})},
                         {"samples", Value::StringList({"s1", "s2", "s3"})},
                         {"labels", Value::StringList({"l1", "l2", "l3"})}},
                        "r0");
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->outputs.at("out").At(Index({1, 2}))->atom().AsString(),
            "s3");
  return std::move(*wb);
}

TEST(StrategyLineage, BackwardEnginesAgreeUnderTreeStrategy) {
  auto wb = TreeWorkbench();
  PortRef target{kWorkflowProcessor, "out"};
  for (const Index& q : {Index(), Index({1}), Index({1, 2}), Index({0, 0})}) {
    for (const lineage::InterestSet& interest :
         {lineage::InterestSet{}, lineage::InterestSet{kWorkflowProcessor},
          lineage::InterestSet{"combine"}}) {
      auto ni = wb->Naive().Query(lineage::LineageRequest::SingleRun("r0", target, q, interest));
      auto ip = wb->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", target, q, interest));
      ASSERT_TRUE(ni.ok());
      ASSERT_TRUE(ip.ok());
      ASSERT_EQ(ni->bindings, ip->bindings)
          << "q=" << q.ToString() << " |P|=" << interest.size();
    }
  }
  // Precision check: out[2][3] depends on gene 2 and the (sample,label)
  // pair at position 3 — not on the other pairs.
  auto lin = wb->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", target, Index({1, 2}),
                                    {kWorkflowProcessor}));
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->bindings.size(), 3u);
  EXPECT_EQ(lin->bindings[0].value_repr, "\"g2\"");   // genes[2]
  EXPECT_EQ(lin->bindings[1].value_repr, "\"l3\"");   // labels[3]
  EXPECT_EQ(lin->bindings[2].value_repr, "\"s3\"");   // samples[3]
}

TEST(StrategyLineage, SerializationRoundTripsTreeStrategies) {
  auto wb = TreeWorkbench();
  std::string text = SerializeDataflow(*wb->flow());
  EXPECT_NE(text.find("strategy=cross(g,dot(s,l))"), std::string::npos);
  auto parsed = ParseDataflow(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeDataflow(**parsed), text);
}

TEST(StrategyLineage, InvalidTreeRejectedAtBuild) {
  DataflowBuilder bld("bad_tree");
  bld.Input("a", PortType::String(1));
  bld.Input("b", PortType::String(1));
  bld.Output("out", PortType::String(1));
  auto proc = bld.Proc("p");
  proc.Activity("concat2")
      .StrategyTree(*StrategyNode::Parse("cross(x1)"))  // x2 uncovered
      .In("x1", PortType::String(0))
      .In("x2", PortType::String(0))
      .Out("y", PortType::String(0));
  bld.Arc("workflow:a", "p:x1");
  bld.Arc("workflow:b", "p:x2");
  bld.Arc("p:y", "workflow:out");
  EXPECT_FALSE(bld.Build().ok());
}

}  // namespace
}  // namespace provlin::workflow
