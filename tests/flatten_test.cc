// Nested-dataflow inlining (Dataflow::Flatten).

#include <gtest/gtest.h>

#include "workflow/builder.h"
#include "workflow/validate.h"

namespace provlin::workflow {
namespace {

/// Inner dataflow: one upper-casing step.
std::shared_ptr<const Dataflow> Inner() {
  DataflowBuilder b("inner");
  b.Input("iin", PortType::String(1));
  b.Output("iout", PortType::String(1));
  b.Proc("step")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:iin", "step:x");
  b.Arc("step:y", "workflow:iout");
  auto flow = b.Build();
  EXPECT_TRUE(flow.ok()) << flow.status().ToString();
  return *flow;
}

TEST(Flatten, NoNestingIsACopy) {
  auto flow = Inner();
  auto flat = flow->Flatten();
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ((*flat)->num_processors(), 1u);
  EXPECT_EQ((*flat)->arcs().size(), 2u);
}

TEST(Flatten, InlinesNestedProcessor) {
  DataflowBuilder b("outer");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("pre")
      .Activity("to_lower")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Proc("sub").Nested(Inner()).In("iin", PortType::String(1)).Out(
      "iout", PortType::String(1));
  b.Proc("post")
      .Activity("to_lower")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "pre:x");
  b.Arc("pre:y", "sub:iin");
  b.Arc("sub:iout", "post:x");
  b.Arc("post:y", "workflow:out");
  auto flat = b.Build();  // Build() flattens + validates
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();

  // The nested processor is replaced by its namespaced inner step.
  EXPECT_EQ((*flat)->num_processors(), 3u);
  EXPECT_EQ((*flat)->FindProcessor("sub"), nullptr);
  ASSERT_NE((*flat)->FindProcessor("sub.step"), nullptr);
  // Boundary arcs are spliced end to end.
  auto into = (*flat)->ArcsInto(PortRef{"sub.step", "x"});
  ASSERT_EQ(into.size(), 1u);
  EXPECT_EQ(into[0]->src.ToString(), "pre:y");
  auto from = (*flat)->ArcsFrom(PortRef{"sub.step", "y"});
  ASSERT_EQ(from.size(), 1u);
  EXPECT_EQ(from[0]->dst.ToString(), "post:x");
}

TEST(Flatten, TwoLevelsOfNesting) {
  // middle wraps inner; outer wraps middle. Names become
  // "mid.sub.step" after full flattening.
  DataflowBuilder mid("middle");
  mid.Input("min", PortType::String(1));
  mid.Output("mout", PortType::String(1));
  mid.Proc("sub").Nested(Inner()).In("iin", PortType::String(1)).Out(
      "iout", PortType::String(1));
  mid.Arc("workflow:min", "sub:iin");
  mid.Arc("sub:iout", "workflow:mout");
  auto middle = *mid.Build();  // already flattened to "sub.step"

  DataflowBuilder outer("outer");
  outer.Input("in", PortType::String(1));
  outer.Output("out", PortType::String(1));
  outer.Proc("mid").Nested(middle).In("min", PortType::String(1)).Out(
      "mout", PortType::String(1));
  outer.Arc("workflow:in", "mid:min");
  outer.Arc("mid:mout", "workflow:out");
  auto flat = outer.Build();
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_NE((*flat)->FindProcessor("mid.sub.step"), nullptr);
  EXPECT_EQ((*flat)->num_processors(), 1u);
}

TEST(Flatten, NestedWithFanOutInside) {
  // Inner with two parallel consumers of the same workflow input.
  DataflowBuilder ib("inner2");
  ib.Input("iin", PortType::String(1));
  ib.Output("o1", PortType::String(1));
  ib.Output("o2", PortType::String(1));
  ib.Proc("u")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  ib.Proc("l")
      .Activity("to_lower")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  ib.Arc("workflow:iin", "u:x");
  ib.Arc("workflow:iin", "l:x");
  ib.Arc("u:y", "workflow:o1");
  ib.Arc("l:y", "workflow:o2");
  auto inner = *ib.Build();

  DataflowBuilder ob("outer2");
  ob.Input("in", PortType::String(1));
  ob.Output("out1", PortType::String(1));
  ob.Output("out2", PortType::String(1));
  ob.Proc("sub").Nested(inner).In("iin", PortType::String(1));
  ob.Arc("workflow:in", "sub:iin");
  ob.Arc("sub:o1", "workflow:out1");
  ob.Arc("sub:o2", "workflow:out2");
  auto flat = ob.Build();
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_EQ((*flat)->num_processors(), 2u);
  // One outer arc into sub:iin fans out to both inner consumers.
  EXPECT_EQ((*flat)->ArcsInto(PortRef{"sub.u", "x"}).size(), 1u);
  EXPECT_EQ((*flat)->ArcsInto(PortRef{"sub.l", "x"}).size(), 1u);
}

TEST(Flatten, UnconsumedNestedInputIsDropped) {
  // The outer arc into a nested input that no inner processor reads
  // simply disappears; flattening succeeds.
  DataflowBuilder ib("inner3");
  ib.Input("used", PortType::String(1));
  ib.Input("unused", PortType::String(1));
  ib.Output("iout", PortType::String(1));
  ib.Proc("step")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  ib.Arc("workflow:used", "step:x");
  ib.Arc("step:y", "workflow:iout");
  auto inner = *ib.Build();

  DataflowBuilder ob("outer3");
  ob.Input("a", PortType::String(1));
  ob.Input("b", PortType::String(1));
  ob.Output("out", PortType::String(1));
  ob.Proc("sub").Nested(inner);
  ob.Arc("workflow:a", "sub:used");
  ob.Arc("workflow:b", "sub:unused");
  ob.Arc("sub:iout", "workflow:out");
  auto flat = ob.Build();
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
}

TEST(Flatten, MissingInnerProducerIsAnError) {
  // Outer consumes a nested output that no inner processor feeds.
  DataflowBuilder ib("inner4");
  ib.Input("iin", PortType::String(1));
  ib.Output("never_fed", PortType::String(1));
  ib.Proc("step")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  ib.Arc("workflow:iin", "step:x");
  auto inner_result = ib.Build();
  // Inner itself fails validation? No: outputs without arcs are only
  // caught at execution; Build validates structure. If Build rejects it,
  // construct manually.
  std::shared_ptr<const Dataflow> inner;
  if (inner_result.ok()) {
    inner = *inner_result;
  } else {
    GTEST_SKIP() << "inner with unfed output rejected at build time";
  }

  DataflowBuilder ob("outer4");
  ob.Input("in", PortType::String(1));
  ob.Output("out", PortType::String(1));
  ob.Proc("sub").Nested(inner);
  ob.Arc("workflow:in", "sub:iin");
  ob.Arc("sub:never_fed", "workflow:out");
  EXPECT_FALSE(ob.Build().ok());
}

}  // namespace
}  // namespace provlin::workflow
