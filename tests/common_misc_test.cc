// Logging and timing utilities.

#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace provlin {
namespace {

TEST(Logging, LevelRoundTrip) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(prev);
}

TEST(Logging, StreamMacroCompilesAndFilters) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Below the threshold: dropped (observable only via no crash).
  PROVLIN_LOG(Debug) << "suppressed " << 42;
  PROVLIN_LOG(Info) << "also suppressed";
  SetLogLevel(prev);
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  // The sleep IS the thing under test (elapsed-time measurement), not a
  // synchronization shortcut.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // lint: allow(sleep)
  int64_t us = timer.ElapsedMicros();
  EXPECT_GE(us, 8000);
  EXPECT_LT(us, 2000000);
  EXPECT_GE(timer.ElapsedMillis(), 8.0);
}

TEST(WallTimer, RestartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // lint: allow(sleep)
  timer.Restart();
  EXPECT_LT(timer.ElapsedMicros(), 5000);
}

TEST(WallTimer, Monotonic) {
  WallTimer timer;
  int64_t a = timer.ElapsedMicros();
  int64_t b = timer.ElapsedMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace provlin
