// The fixed-size worker pool underneath LineageService: task execution,
// worker-index plumbing, WaitIdle semantics, and destructor draining.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace provlin::common {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WorkerIndexIsInRangeAndStable) {
  constexpr size_t kThreads = 3;
  ThreadPool pool(kThreads);
  EXPECT_EQ(pool.num_threads(), kThreads);

  std::mutex mu;
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&](size_t worker) {
      ASSERT_LT(worker, kThreads);
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(worker);
    });
  }
  pool.WaitIdle();
  // With 200 tasks over 3 workers every worker should have run at least
  // one (tasks yield the queue lock between pops).
  EXPECT_GE(seen.size(), 1u);
  for (size_t w : seen) EXPECT_LT(w, kThreads);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilInFlightTasksFinish) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  pool.WaitIdle();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No WaitIdle: destruction must still run everything queued.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, SubmitFromManyThreadsIsSafe) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  producers.reserve(8);
  for (int p = 0; p < 8; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 800);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace provlin::common
