// The fixed-size worker pool underneath LineageService: task execution,
// worker-index plumbing, WaitIdle semantics, and destructor draining.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace provlin::common {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WorkerIndexIsInRangeAndStable) {
  constexpr size_t kThreads = 3;
  ThreadPool pool(kThreads);
  EXPECT_EQ(pool.num_threads(), kThreads);

  Mutex mu{LockRank::kTestOuter};
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&](size_t worker) {
      ASSERT_LT(worker, kThreads);
      MutexLock lock(mu);
      seen.insert(worker);
    });
  }
  pool.WaitIdle();
  // With 200 tasks over 3 workers every worker should have run at least
  // one (tasks yield the queue lock between pops).
  EXPECT_GE(seen.size(), 1u);
  for (size_t w : seen) EXPECT_LT(w, kThreads);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilInFlightTasksFinish) {
  ThreadPool pool(2);
  // The task blocks until released, so WaitIdle cannot return before
  // the release happens — an explicit handshake instead of a sleep.
  std::atomic<bool> release{false};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });
  std::thread releaser([&] { release.store(true, std::memory_order_release); });
  pool.WaitIdle();
  EXPECT_TRUE(done.load(std::memory_order_acquire));
  releaser.join();
}

// Regression for the annotated predicate-loop rewrite of WaitIdle: a
// task that enqueues another task leaves the queue non-empty at the
// moment the first one finishes, so quiescence must consider both the
// queue and the in-flight count — returning on "queue drained once"
// would miss the chained half of the work.
TEST(ThreadPoolTest, ChainedSubmitsDrainBeforeWaitIdleReturns) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      pool.Submit([&] { count.fetch_add(1); });
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 128);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No WaitIdle: destruction must still run everything queued.
  }
  EXPECT_EQ(count.load(), 64);
}

// Regression for the shutdown path: shutting_down_ and the queue are
// read together under the pool mutex, so a destructor racing many
// still-queued tasks across several workers must both run every task
// and terminate every worker (no lost wakeups, no early returns with a
// non-empty queue).
TEST(ThreadPoolTest, DestructorDrainsUnderManyWorkersRepeatedly) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    {
      ThreadPool pool(4);
      for (int i = 0; i < 256; ++i) {
        pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    ASSERT_EQ(count.load(), 256) << "round " << round;
  }
}

TEST(ThreadPoolTest, SubmitFromManyThreadsIsSafe) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  producers.reserve(8);
  for (int p = 0; p < 8; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 800);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace provlin::common
