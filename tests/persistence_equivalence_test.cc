// Post-mortem property: persisting the trace database to disk, loading
// it into a fresh process state, and querying lineage there returns
// exactly the answers computed against the live capture — for random
// workflows and random queries. This exercises the full encode/decode
// path (datums, index encodings, indexes rebuilt on load).

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "tests/random_workflow.h"
#include "testbed/workbench.h"

namespace provlin::lineage {
namespace {

using testbed::Workbench;
using testbed_testing::GeneratedWorkflow;
using testbed_testing::IsDotShapeMismatch;
using testbed_testing::MakeRandomWorkflow;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

class PersistenceEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PersistenceEquivalenceTest, ReloadedTraceAnswersIdentically) {
  uint64_t seed = GetParam();
  GeneratedWorkflow gen = MakeRandomWorkflow(seed);
  ASSERT_NE(gen.flow, nullptr);

  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  auto wb = std::move(*Workbench::Create(gen.flow, registry));
  auto run = wb->Run(gen.inputs, "r0");
  if (!run.ok() && IsDotShapeMismatch(run.status())) {
    GTEST_SKIP() << "ragged dot pair";
  }
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::string path = std::string(::testing::TempDir()) + "/persist_eq_" +
                     std::to_string(seed) + ".db";
  ASSERT_TRUE(wb->db()->Save(path).ok());

  storage::Database reloaded;
  ASSERT_TRUE(reloaded.Load(path).ok());
  auto store = *provenance::TraceStore::Open(&reloaded);
  auto engine = *IndexProjLineage::Create(gen.flow, &store);
  NaiveLineage naive(&store);

  Random rng(seed * 13 + 1);
  int checked = 0;
  for (const auto& [port, value] : run->outputs) {
    PortRef target{kWorkflowProcessor, port};
    std::vector<Index> indices{Index()};
    std::vector<Index> leaves = value.LeafIndices();
    if (!leaves.empty()) {
      indices.push_back(leaves[rng.Uniform(leaves.size())]);
    }
    for (const Index& q : indices) {
      for (const InterestSet& interest :
           {InterestSet{}, InterestSet{kWorkflowProcessor}}) {
        auto live = wb->IndexProj()->Query(LineageRequest::SingleRun("r0", target, q, interest));
        auto cold_ip = engine.Query(LineageRequest::SingleRun("r0", target, q, interest));
        auto cold_ni = naive.Query(LineageRequest::SingleRun("r0", target, q, interest));
        ASSERT_TRUE(live.ok());
        ASSERT_TRUE(cold_ip.ok());
        ASSERT_TRUE(cold_ni.ok());
        ASSERT_EQ(live->bindings, cold_ip->bindings)
            << "live vs reloaded IndexProj at " << target.ToString()
            << q.ToString() << " seed " << seed;
        ASSERT_EQ(live->bindings, cold_ni->bindings)
            << "live vs reloaded NI at " << target.ToString()
            << q.ToString() << " seed " << seed;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceEquivalenceTest,
                         ::testing::Range<uint64_t>(800, 815));

}  // namespace
}  // namespace provlin::lineage
