// Seeded random workflow generator for the property-test suites.
//
// Generates valid, executable string-typed dataflows exercising the full
// iteration feature space: positive mismatches of 1..3 levels (implicit
// iteration), zero mismatch (whole-value consumption / granularity
// loss), negative mismatch (singleton wrapping), binary cross and dot
// combinators, diamonds (fan-out + rejoin), and defaults on unconnected
// ports. Inputs are generated to match the declared depths with small
// non-empty lists so every processor fires at least once.

#ifndef PROVLIN_TESTS_RANDOM_WORKFLOW_H_
#define PROVLIN_TESTS_RANDOM_WORKFLOW_H_

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "values/value.h"
#include "workflow/builder.h"

namespace provlin::testbed_testing {

struct GeneratedWorkflow {
  std::shared_ptr<const workflow::Dataflow> flow;
  std::map<std::string, Value> inputs;
};

/// A nested string list of the given depth with 1–3 elements per level.
inline Value RandomNestedList(Random* rng, int depth, std::string* counter) {
  if (depth == 0) {
    *counter += "i";
    return Value::Str("v" + std::to_string(counter->size()) + "_" +
                      std::to_string(rng->Uniform(1000)));
  }
  size_t n = 1 + rng->Uniform(3);
  std::vector<Value> elems;
  for (size_t i = 0; i < n; ++i) {
    elems.push_back(RandomNestedList(rng, depth - 1, counter));
  }
  return Value::List(std::move(elems));
}

inline GeneratedWorkflow MakeRandomWorkflow(uint64_t seed,
                                            int num_processors = 8) {
  Random rng(seed);
  workflow::DataflowBuilder b("random_" + std::to_string(seed));

  // Source ports available for wiring: (port ref string, resolved depth).
  struct Source {
    std::string ref;
    int depth;
  };
  std::vector<Source> sources;

  GeneratedWorkflow out;
  std::string counter;

  // 1–3 workflow inputs of depth 0–2.
  size_t num_inputs = 1 + rng.Uniform(3);
  for (size_t i = 0; i < num_inputs; ++i) {
    std::string name = "in" + std::to_string(i);
    int depth = static_cast<int>(rng.Uniform(3));
    b.Input(name, PortType::String(depth));
    sources.push_back({"workflow:" + name, depth});
    out.inputs[name] = RandomNestedList(&rng, depth, &counter);
  }

  auto pick_source = [&]() -> const Source& {
    return sources[rng.Uniform(sources.size())];
  };

  for (int p = 0; p < num_processors; ++p) {
    std::string name = "proc" + std::to_string(p);
    int shape = static_cast<int>(rng.Uniform(7));
    const Source& src = pick_source();

    if (shape == 0 || shape == 1) {
      // Scalar transform: iterates src.depth levels (fine-grained).
      b.Proc(name)
          .Activity("transform")
          .Config("tag", "t" + std::to_string(p))
          .In("x", PortType::String(0))
          .Out("y", PortType::String(0));
      b.Arc(src.ref, name + ":x");
      sources.push_back({name + ":y", src.depth});
    } else if (shape == 2) {
      // Whole-list consumer (coarse when δ = 0, wraps when src is
      // scalar): sort_list with dd = 1.
      b.Proc(name)
          .Activity("sort_list")
          .In("items", PortType::String(1))
          .Out("items", PortType::String(1));
      b.Arc(src.ref, name + ":items");
      int delta = src.depth - 1;
      int iter = delta > 0 ? delta : 0;
      sources.push_back({name + ":items", 1 + iter});
    } else if (shape == 3) {
      // List producer: scalar -> list (depth grows).
      b.Proc(name)
          .Activity("split_words")
          .In("x", PortType::String(0))
          .Out("words", PortType::String(1));
      b.Arc(src.ref, name + ":x");
      sources.push_back({name + ":words", 1 + src.depth});
    } else if (shape == 4) {
      // Binary cross product of two random sources, possibly with a
      // default on the second port.
      const Source& other = pick_source();
      bool use_default = rng.Bernoulli(0.2);
      auto proc = b.Proc(name);
      proc.Activity("concat2")
          .In("x1", PortType::String(0))
          .In("x2", PortType::String(0))
          .Out("y", PortType::String(0));
      b.Arc(src.ref, name + ":x1");
      int total = src.depth;
      if (use_default) {
        proc.Default("x2", Value::Str("dflt" + std::to_string(p)));
      } else {
        b.Arc(other.ref, name + ":x2");
        total += other.depth;
      }
      sources.push_back({name + ":y", total});
    } else if (shape == 6) {
      // Nested strategy expression cross(x1, dot(x2, x3)): needs two
      // equal-depth sources for the zipped lanes; falls back to a
      // scalar transform otherwise.
      std::vector<const Source*> candidates;
      for (const Source& s2 : sources) {
        if (s2.depth == src.depth && s2.depth >= 1 && s2.ref != src.ref) {
          candidates.push_back(&s2);
        }
      }
      const Source& outer = pick_source();
      if (src.depth >= 1 && !candidates.empty()) {
        const Source* zipped = candidates[rng.Uniform(candidates.size())];
        auto proc = b.Proc(name);
        proc.Activity("identity")
            .StrategyTree(*workflow::StrategyNode::Parse(
                "cross(x1,dot(x2,x3))"))
            .In("x1", PortType::String(0))
            .In("x2", PortType::String(0))
            .In("x3", PortType::String(0))
            .Out("y1", PortType::String(0))
            .Out("y2", PortType::String(0))
            .Out("y3", PortType::String(0));
        b.Arc(outer.ref, name + ":x1");
        b.Arc(src.ref, name + ":x2");
        b.Arc(zipped->ref, name + ":x3");
        sources.push_back({name + ":y2", outer.depth + src.depth});
      } else {
        b.Proc(name)
            .Activity("to_upper")
            .In("x", PortType::String(0))
            .Out("y", PortType::String(0));
        b.Arc(src.ref, name + ":x");
        sources.push_back({name + ":y", src.depth});
      }
    } else {
      // Dot combinator: needs two sources with equal depth >= 1; falls
      // back to a scalar transform when none pair up.
      std::vector<const Source*> candidates;
      for (const Source& s : sources) {
        if (s.depth == src.depth && s.depth >= 1 && s.ref != src.ref) {
          candidates.push_back(&s);
        }
      }
      if (src.depth >= 1 && !candidates.empty()) {
        const Source* other = candidates[rng.Uniform(candidates.size())];
        b.Proc(name)
            .Activity("concat2")
            .Strategy(workflow::IterationStrategy::kDot)
            .In("x1", PortType::String(0))
            .In("x2", PortType::String(0))
            .Out("y", PortType::String(0));
        b.Arc(src.ref, name + ":x1");
        b.Arc(other->ref, name + ":x2");
        sources.push_back({name + ":y", src.depth});
      } else {
        b.Proc(name)
            .Activity("to_upper")
            .In("x", PortType::String(0))
            .Out("y", PortType::String(0));
        b.Arc(src.ref, name + ":x");
        sources.push_back({name + ":y", src.depth});
      }
    }
  }

  // 1–2 workflow outputs from the most recently created sources (so the
  // deepest part of the graph is reachable from a query).
  size_t num_outputs = 1 + rng.Uniform(2);
  for (size_t i = 0; i < num_outputs && i < sources.size(); ++i) {
    const Source& s = sources[sources.size() - 1 - i];
    std::string name = "out" + std::to_string(i);
    b.Output(name, PortType::String(s.depth));
    b.Arc(s.ref, "workflow:" + name);
  }

  auto flow = b.Build();
  // Generation is constructive; a failure here is a generator bug.
  if (!flow.ok()) {
    ADD_FAILURE() << "random workflow " << seed
                  << " failed to build: " << flow.status().ToString();
    out.flow = nullptr;
    return out;
  }
  out.flow = *flow;
  return out;
}

/// Caveat: dot pairs require equal list lengths at every zipped level.
/// The generator pairs ports of equal *depth*, but lengths may differ
/// (RandomNestedList is ragged), so execution can legitimately fail with
/// InvalidArgument for some seeds; property tests skip those seeds.
inline bool IsDotShapeMismatch(const Status& st) {
  return st.code() == StatusCode::kInvalidArgument &&
         st.message().find("dot iteration") != std::string::npos;
}

}  // namespace provlin::testbed_testing

#endif  // PROVLIN_TESTS_RANDOM_WORKFLOW_H_
