// The PROVLIN_LOCK_DEBUG runtime deadlock detector (DESIGN.md §15):
// rank-inversion aborts with both acquisition sites, the process-global
// order graph catches cycles assembled by different threads, the
// DualWriterLock same-rank exemption stays legal, and release builds
// compile the tracking out entirely.
//
// The death tests run only in PROVLIN_LOCK_DEBUG builds (the
// tier1-lockdebug CI job); in release builds they skip and the
// zero-overhead test takes over.

#include "common/lock_debug.h"

#include <gtest/gtest.h>

#include <thread>
#include <utility>

#include "common/interner.h"
#include "common/sync.h"

namespace provlin::common {
namespace {

TEST(LockDebugTest, HeldDepthMatchesBuildMode) {
  Mutex mu{LockRank::kTestOuter};
  MutexLock lock(mu);
  // Debug builds track the held stack; release builds compile it out
  // and HeldDepth() is a constant 0 even while the lock is held.
  EXPECT_EQ(lock_debug::HeldDepth(), kLockDebugEnabled ? 1u : 0u);
}

TEST(LockDebugTest, OrderedAcquisitionChainIsAccepted) {
  Mutex outer{LockRank::kTestOuter};
  SharedMutex middle{LockRank::kTestMiddle};
  Mutex inner{LockRank::kTestInner};
  MutexLock a(outer);
  ReaderLock b(middle);
  MutexLock c(inner);
  EXPECT_EQ(lock_debug::HeldDepth(), kLockDebugEnabled ? 3u : 0u);
}

TEST(LockDebugTest, DualWriterLockExemptionAllowsSameRankPair) {
  // The interner's move assignment locks both tables' same-rank mutexes
  // in address order under SameRankExemptionScope. Both assignment
  // directions must survive a PROVLIN_LOCK_DEBUG build (the address
  // order — not the rank order — is what makes the pair safe).
  SymbolTable a;
  SymbolTable b;
  a.Intern("alpha");
  b.Intern("beta");
  a = std::move(b);
  EXPECT_EQ(a.Lookup("beta"), std::make_optional<SymbolId>(0));
  SymbolTable c;
  c.Intern("gamma");
  a = std::move(c);
  EXPECT_EQ(a.Lookup("gamma"), std::make_optional<SymbolId>(0));
}

TEST(LockDebugTest, ExemptionScopePermitsDirectSameRankNesting) {
  if (!kLockDebugEnabled) GTEST_SKIP() << "detector compiled out";
  Mutex a{LockRank::kTestOuter};
  Mutex b{LockRank::kTestOuter};
  [[maybe_unused]] lock_debug::SameRankExemptionScope exempt;
  MutexLock la(a);
  MutexLock lb(b);  // same rank: legal only under the exemption
  EXPECT_EQ(lock_debug::HeldDepth(), 2u);
}

#if PROVLIN_LOCK_DEBUG

using LockDebugDeathTest = ::testing::Test;

TEST(LockDebugDeathTest, RankInversionAbortsWithBothSites) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The DESIGN.md §11 in-shard order is ingest_mu < data_mu; seed the
  // inversion the detector exists for. The abort message must name the
  // violating acquisition AND the site where the deeper lock was taken
  // — both of which are lines of this file.
  EXPECT_DEATH(
      {
        SharedMutex data{LockRank::kShardData};
        Mutex ingest{LockRank::kShardIngest};
        WriterLock hold_data(data);
        MutexLock inverted(ingest);
      },
      "lock-rank violation: acquiring 'trace_store\\.shard\\.ingest_mu'"
      ".*at .*lock_debug_test\\.cc:"
      ".*while holding 'trace_store\\.shard\\.data_mu'"
      ".*acquired at .*lock_debug_test\\.cc:");
}

TEST(LockDebugDeathTest, SameRankWithoutExemptionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a{LockRank::kTestOuter};
        Mutex b{LockRank::kTestOuter};
        MutexLock la(a);
        MutexLock lb(b);
      },
      "lock-rank violation: acquiring 'test\\.outer'");
}

TEST(LockDebugDeathTest, ReacquiringAHeldLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu{LockRank::kTestOuter};
        mu.Lock();
        mu.Lock();
      },
      "re-acquiring 'test\\.outer' .*already held by this thread");
}

TEST(LockDebugDeathTest, CycleAcrossThreadsEachTakingOneEdge) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Neither thread's acquisition chain violates the rank check (both
  // pairs are same-rank under an exemption, as a DualWriterLock-style
  // protocol would be), and the two conflicting chains never run
  // concurrently — only the process-global order graph can see that
  // thread one recorded a→b while thread two records b→a.
  EXPECT_DEATH(
      {
        Mutex a{LockRank::kTestOuter};
        Mutex b{LockRank::kTestOuter};
        std::thread t1([&] {
          lock_debug::SameRankExemptionScope exempt;
          MutexLock la(a);
          MutexLock lb(b);  // edge a -> b
        });
        t1.join();
        std::thread t2([&] {
          lock_debug::SameRankExemptionScope exempt;
          MutexLock lb(b);
          MutexLock la(a);  // edge b -> a: closes the cycle
        });
        t2.join();
      },
      "lock-order cycle: acquiring 'test\\.outer'"
      ".*conflicting order recorded earlier");
}

#else  // !PROVLIN_LOCK_DEBUG

TEST(LockDebugReleaseTest, RankStateIsCompiledOut) {
  // The layout half of the zero-overhead contract is a static_assert in
  // common/sync.h (sizeof(Mutex) == sizeof(std::mutex)); this pins the
  // behavioral half: an inverted acquisition is NOT detected, because
  // there is no detector to pay for.
  SharedMutex data{LockRank::kShardData};
  Mutex ingest{LockRank::kShardIngest};
  WriterLock hold_data(data);
  MutexLock inverted(ingest);  // would abort under PROVLIN_LOCK_DEBUG
  EXPECT_EQ(lock_debug::HeldDepth(), 0u);
}

#endif  // PROVLIN_LOCK_DEBUG

}  // namespace
}  // namespace provlin::common
