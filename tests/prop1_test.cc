// Validates the generalized Proposition 1 (index projection) against
// the engine's actual behaviour: for every elementary xform event of
// every random workflow, each input binding's index p_i equals exactly
// the slot the strategy layout assigns to its port within the output
// index q — i.e. p_i = q[offset_i : offset_i + len_i], with len_i =
// max(0, δs(X_i)) for iterated ports and 0 otherwise. For the flat
// cross strategy this reduces to the paper's q = p_1 · ... · p_n; for
// dot and nested expressions it is the property that lets IndexProj
// invert transformations without reading the trace.

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "engine/executor.h"
#include "tests/random_workflow.h"
#include "workflow/depth_propagation.h"

namespace provlin::engine {
namespace {

using testbed_testing::GeneratedWorkflow;
using testbed_testing::IsDotShapeMismatch;
using testbed_testing::MakeRandomWorkflow;

/// Observer checking Prop. 1 on the fly.
class Prop1Checker : public ExecutionObserver {
 public:
  Prop1Checker(const workflow::Dataflow& flow,
               const workflow::DepthMap& depths)
      : flow_(flow), depths_(depths) {}

  void OnXform(const std::string& processor,
               const std::vector<BindingEvent>& ins,
               const std::vector<BindingEvent>& outs) override {
    ++events_;
    const workflow::Processor* proc = flow_.FindProcessor(processor);
    ASSERT_NE(proc, nullptr);
    const workflow::ProcessorDepths& pd = depths_.ForProcessor(processor);

    ASSERT_EQ(ins.size(), proc->inputs.size());
    // All output bindings of one elementary event share the index q.
    ASSERT_FALSE(outs.empty());
    const Index& q = outs.front().index;
    for (const auto& out : outs) EXPECT_EQ(out.index, q);
    EXPECT_EQ(static_cast<int>(q.length()), pd.iteration_levels);

    for (size_t i = 0; i < ins.size(); ++i) {
      workflow::PortSlot slot;
      auto it = pd.slots.find(proc->inputs[i].name);
      if (it != pd.slots.end()) slot = it->second;
      EXPECT_EQ(ins[i].index.length(), slot.length)
          << processor << " port " << i;
      EXPECT_EQ(ins[i].index, q.SubIndex(slot.offset, slot.length))
          << "generalized Prop. 1 violated at " << processor << " port "
          << proc->inputs[i].name;
    }
  }

  size_t events() const { return events_; }

 private:
  const workflow::Dataflow& flow_;
  const workflow::DepthMap& depths_;
  size_t events_ = 0;
};

class Prop1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Prop1Test, HoldsOnEveryRecordedEvent) {
  GeneratedWorkflow gen = MakeRandomWorkflow(GetParam(), 10);
  ASSERT_NE(gen.flow, nullptr);

  auto depths = workflow::PropagateDepths(*gen.flow);
  ASSERT_TRUE(depths.ok());

  ActivityRegistry registry;
  RegisterBuiltinActivities(&registry);
  Prop1Checker checker(*gen.flow, *depths);
  Executor executor(&registry, &checker);
  auto run = executor.Execute(*gen.flow, gen.inputs, "r0");
  if (!run.ok() && IsDotShapeMismatch(run.status())) {
    GTEST_SKIP() << "ragged dot pair";
  }
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(checker.events(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop1Test,
                         ::testing::Range<uint64_t>(100, 160));

TEST(Prop1Static, DepthPropagationAgreesWithRuntimeDepths) {
  // δs(X) is statically computable (§3.1): the propagated depth of every
  // port equals the actual depth of the value observed there at runtime.
  for (uint64_t seed = 200; seed < 220; ++seed) {
    GeneratedWorkflow gen = MakeRandomWorkflow(seed, 8);
    ASSERT_NE(gen.flow, nullptr);
    auto depths = workflow::PropagateDepths(*gen.flow);
    ASSERT_TRUE(depths.ok());

    ActivityRegistry registry;
    RegisterBuiltinActivities(&registry);
    Executor executor(&registry, nullptr);
    auto run = executor.Execute(*gen.flow, gen.inputs, "r0");
    if (!run.ok() && IsDotShapeMismatch(run.status())) continue;
    ASSERT_TRUE(run.ok()) << "seed " << seed << ": "
                          << run.status().ToString();

    for (const workflow::Processor& proc : gen.flow->processors()) {
      const workflow::ProcessorDepths& pd =
          depths->ForProcessor(proc.name);
      for (size_t i = 0; i < proc.outputs.size(); ++i) {
        auto it = run->port_values.find(proc.name + ":" +
                                        proc.outputs[i].name);
        ASSERT_NE(it, run->port_values.end());
        EXPECT_EQ(it->second.depth(), pd.output_depths[i])
            << proc.name << ":" << proc.outputs[i].name << " seed "
            << seed;
      }
    }
  }
}

}  // namespace
}  // namespace provlin::engine
