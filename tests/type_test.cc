#include "values/type.h"

#include <gtest/gtest.h>

namespace provlin {
namespace {

TEST(PortType, ToStringMatchesPaperNotation) {
  EXPECT_EQ(PortType::String(0).ToString(), "string");
  EXPECT_EQ(PortType::String(1).ToString(), "list(string)");
  EXPECT_EQ(PortType::String(2).ToString(), "list(list(string))");
  EXPECT_EQ(PortType::Int(1).ToString(), "list(int)");
  EXPECT_EQ(PortType::Bool(0).ToString(), "bool");
  EXPECT_EQ(PortType::Double(0).ToString(), "double");
}

TEST(PortType, ParseRoundTrip) {
  for (const char* text :
       {"string", "list(string)", "list(list(string))", "int",
        "list(list(list(int)))", "double", "bool", "list(bool)"}) {
    auto t = PortType::Parse(text);
    ASSERT_TRUE(t.ok()) << text;
    EXPECT_EQ(t->ToString(), text);
  }
}

TEST(PortType, ParseRejectsMalformed) {
  EXPECT_FALSE(PortType::Parse("list(string").ok());
  EXPECT_FALSE(PortType::Parse("lst(string)").ok());
  EXPECT_FALSE(PortType::Parse("list()").ok());
  EXPECT_FALSE(PortType::Parse("").ok());
  EXPECT_FALSE(PortType::Parse("strings").ok());
}

TEST(PortType, DepthIsDeclaredDepth) {
  EXPECT_EQ(PortType::String(2).depth, 2);
  EXPECT_EQ(PortType::Parse("list(list(string))")->depth, 2);
}

TEST(PortType, NestedAdjustsDepth) {
  EXPECT_EQ(PortType::String(1).Nested(2).depth, 3);
  EXPECT_EQ(PortType::String(1).Nested(-1).depth, 0);
  EXPECT_EQ(PortType::String(1).Nested(-5).depth, 0);  // clamped
}

TEST(PortType, Equality) {
  EXPECT_EQ(PortType::String(1), PortType::String(1));
  EXPECT_FALSE(PortType::String(1) == PortType::String(2));
  EXPECT_FALSE(PortType::String(1) == PortType::Int(1));
}

}  // namespace
}  // namespace provlin
