// Codec tests for compressed trace segments (storage/segment.h):
// round-trips for both table layouts, probe-vs-reference equivalence
// over randomized workloads, rejection of malformed buffers
// (truncation at every prefix length, trailing garbage, forged
// element counts), a seeded mutation-fuzz corpus, and the canonical
// re-encode property encode(decode(x)) == x — mirroring wire_test.cc.

#include "storage/segment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"

namespace provlin::storage {
namespace {

constexpr uint64_t kRun = 7;

Row XformRow(int64_t event, bool has_in, IdPair in, IndexPath in_idx,
             int64_t in_val, bool has_out, IdPair out, IndexPath out_idx,
             int64_t out_val) {
  Row row(8);
  row[0] = Datum(static_cast<int64_t>(kRun));
  row[1] = Datum(event);
  if (has_in) {
    row[2] = Datum(in);
    row[3] = Datum(std::move(in_idx));
    row[4] = Datum(in_val);
  }
  if (has_out) {
    row[5] = Datum(out);
    row[6] = Datum(std::move(out_idx));
    row[7] = Datum(out_val);
  }
  return row;
}

Row XferRow(IdPair src, IndexPath src_idx, IdPair dst, IndexPath dst_idx,
            int64_t value) {
  Row row(6);
  row[0] = Datum(static_cast<int64_t>(kRun));
  row[1] = Datum(src);
  row[2] = Datum(std::move(src_idx));
  row[3] = Datum(dst);
  row[4] = Datum(std::move(dst_idx));
  row[5] = Datum(value);
  return row;
}

/// Randomized but deterministic workload generator: repeated
/// processor/port pairs, dense index-path ranges, occasional nulls —
/// the shapes the encoder targets, sized to span several 512-row
/// blocks.
std::vector<Row> RandomXformRows(Random& rng, size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bool has_in = rng.Bernoulli(0.8);
    bool has_out = rng.Bernoulli(0.8);
    if (!has_in && !has_out) has_out = true;
    IdPair in{static_cast<uint32_t>(rng.Uniform(5)),
              static_cast<uint32_t>(rng.Uniform(3))};
    IdPair out{static_cast<uint32_t>(rng.Uniform(5)),
               static_cast<uint32_t>(3 + rng.Uniform(3))};
    IndexPath in_idx, out_idx;
    uint64_t depth = rng.Uniform(4);
    for (uint64_t d = 0; d < depth; ++d) {
      in_idx.push_back(static_cast<int32_t>(rng.Uniform(6)));
    }
    depth = rng.Uniform(4);
    for (uint64_t d = 0; d < depth; ++d) {
      out_idx.push_back(static_cast<int32_t>(rng.Uniform(6)));
    }
    rows.push_back(XformRow(static_cast<int64_t>(i), has_in, in,
                            std::move(in_idx), static_cast<int64_t>(100 + i),
                            has_out, out, std::move(out_idx),
                            static_cast<int64_t>(200 + i)));
  }
  return rows;
}

std::vector<Row> RandomXferRows(Random& rng, size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    IdPair src{static_cast<uint32_t>(rng.Uniform(4)),
               static_cast<uint32_t>(rng.Uniform(2))};
    IdPair dst{static_cast<uint32_t>(4 + rng.Uniform(4)),
               static_cast<uint32_t>(rng.Uniform(2))};
    IndexPath src_idx, dst_idx;
    uint64_t depth = 1 + rng.Uniform(3);
    for (uint64_t d = 0; d < depth; ++d) {
      src_idx.push_back(static_cast<int32_t>(rng.Uniform(8)));
      dst_idx.push_back(static_cast<int32_t>(rng.Uniform(8)));
    }
    rows.push_back(XferRow(src, std::move(src_idx), dst, std::move(dst_idx),
                           static_cast<int64_t>(i)));
  }
  return rows;
}

int ComparePathRef(const IndexPath& a, const IndexPath& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool PathExtendsRef(const IndexPath& path, const IndexPath& prefix) {
  return path.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), path.begin());
}

/// Reference probe: brute-force over the original rows, sorted the way
/// the view promises — (pair, path, ordinal).
std::vector<std::pair<uint64_t, Row>> ReferenceProbe(
    const std::vector<Row>& rows, size_t pair_col, size_t path_col,
    const Segment::ViewProbe& probe) {
  struct Entry {
    uint64_t pair;
    IndexPath path;
    uint64_t ordinal;
  };
  std::vector<Entry> entries;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i][pair_col].is_null()) continue;
    entries.push_back(Entry{rows[i][pair_col].AsIdPair().Packed(),
                            rows[i][path_col].AsIndexPath(), i});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.pair != b.pair) return a.pair < b.pair;
    int c = ComparePathRef(a.path, b.path);
    if (c != 0) return c < 0;
    return a.ordinal < b.ordinal;
  });
  std::vector<std::pair<uint64_t, Row>> out;
  for (const Entry& e : entries) {
    if (e.pair != probe.pair) continue;
    if (probe.has_lo && ComparePathRef(e.path, probe.lo) < 0) continue;
    if (probe.has_hi && ComparePathRef(e.path, probe.hi) > 0) continue;
    if (probe.has_residual && !PathExtendsRef(e.path, probe.residual)) continue;
    out.emplace_back(e.ordinal, rows[e.ordinal]);
  }
  return out;
}

std::vector<std::pair<uint64_t, Row>> SegmentProbe(const Segment& seg,
                                                   size_t view,
                                                   const Segment::ViewProbe& p,
                                                   Segment::Scratch* scratch) {
  std::vector<std::pair<uint64_t, Row>> out;
  Segment::ProbeCounts counts;
  Status st = seg.ProbeView(
      view, p, scratch, &counts,
      [&](uint64_t ordinal, const Row& row) { out.emplace_back(ordinal, row); });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(SegmentTest, XformRoundTrip) {
  Random rng(1);
  std::vector<Row> rows = RandomXformRows(rng, 1500);
  auto seg = Segment::Build(Segment::Kind::kXform, kRun, rows);
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  EXPECT_EQ(seg->kind(), Segment::Kind::kXform);
  EXPECT_EQ(seg->run(), kRun);
  EXPECT_EQ(seg->num_rows(), rows.size());
  auto decoded = seg->DecodeAllRows();
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*decoded)[i], rows[i]) << "row " << i;
  }
}

TEST(SegmentTest, XferRoundTrip) {
  Random rng(2);
  std::vector<Row> rows = RandomXferRows(rng, 1200);
  auto seg = Segment::Build(Segment::Kind::kXfer, kRun, rows);
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  auto decoded = seg->DecodeAllRows();
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*decoded)[i], rows[i]) << "row " << i;
  }
}

TEST(SegmentTest, EmptySegment) {
  auto seg = Segment::Build(Segment::Kind::kXform, kRun, {});
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  EXPECT_EQ(seg->num_rows(), 0u);
  EXPECT_EQ(seg->view_entries(Segment::kViewOut), 0u);
  auto decoded = seg->DecodeAllRows();
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
  Segment::Scratch scratch;
  Segment::ViewProbe probe;
  probe.pair = IdPair{1, 2}.Packed();
  EXPECT_TRUE(SegmentProbe(*seg, Segment::kViewOut, probe, &scratch).empty());
}

TEST(SegmentTest, BuildRejectsMalformedRows) {
  // Wrong run id in the run column.
  Row bad = XferRow(IdPair{1, 1}, {0}, IdPair{2, 2}, {1}, 5);
  bad[0] = Datum(static_cast<int64_t>(kRun + 1));
  EXPECT_FALSE(Segment::Build(Segment::Kind::kXfer, kRun, {bad}).ok());
  // Wrong width.
  EXPECT_FALSE(Segment::Build(Segment::Kind::kXform, kRun,
                              {XferRow(IdPair{1, 1}, {0}, IdPair{2, 2}, {1}, 5)})
                   .ok());
  // Xform in-side must be null or present as a whole triple.
  Row half = XformRow(0, true, IdPair{1, 1}, {0}, 1, false, {}, {}, 0);
  half[4] = Datum();  // value null while pair set
  EXPECT_FALSE(Segment::Build(Segment::Kind::kXform, kRun, {half}).ok());
  // Xfer columns are non-nullable.
  Row null_dst = XferRow(IdPair{1, 1}, {0}, IdPair{2, 2}, {1}, 5);
  null_dst[3] = Datum();
  EXPECT_FALSE(Segment::Build(Segment::Kind::kXfer, kRun, {null_dst}).ok());
}

TEST(SegmentTest, ProbesMatchReferenceAcrossWorkloads) {
  // Point, prefix, range, and residual-filtered probes on both views of
  // both layouts, randomized, against the brute-force reference.
  for (uint64_t seed : {11u, 12u, 13u}) {
    Random rng(seed);
    std::vector<Row> xform = RandomXformRows(rng, 900);
    std::vector<Row> xfer = RandomXferRows(rng, 700);
    auto xform_seg = Segment::Build(Segment::Kind::kXform, kRun, xform);
    auto xfer_seg = Segment::Build(Segment::Kind::kXfer, kRun, xfer);
    ASSERT_TRUE(xform_seg.ok() && xfer_seg.ok());

    struct ViewSpec {
      const Segment* seg;
      const std::vector<Row>* rows;
      size_t view;
      size_t pair_col;
      size_t path_col;
    };
    const ViewSpec specs[] = {
        {&*xform_seg, &xform, Segment::kViewOut, 5, 6},
        {&*xform_seg, &xform, Segment::kViewIn, 2, 3},
        {&*xfer_seg, &xfer, Segment::kViewOut, 1, 2},
        {&*xfer_seg, &xfer, Segment::kViewIn, 3, 4},
    };
    for (const ViewSpec& spec : specs) {
      for (int trial = 0; trial < 60; ++trial) {
        Segment::ViewProbe probe;
        // Mostly pairs that exist; sometimes absent ones.
        if (rng.Bernoulli(0.85) && !spec.rows->empty()) {
          const Row& r = (*spec.rows)[rng.Uniform(spec.rows->size())];
          if (r[spec.pair_col].is_null()) continue;
          probe.pair = r[spec.pair_col].AsIdPair().Packed();
        } else {
          probe.pair = IdPair{static_cast<uint32_t>(rng.Uniform(10)),
                              static_cast<uint32_t>(rng.Uniform(10))}
                           .Packed();
        }
        switch (rng.Uniform(4)) {
          case 0:  // prefix probe: whole pair
            break;
          case 1: {  // point probe
            probe.has_lo = probe.has_hi = true;
            uint64_t depth = rng.Uniform(4);
            for (uint64_t d = 0; d < depth; ++d) {
              probe.lo.push_back(static_cast<int32_t>(rng.Uniform(8)));
            }
            probe.hi = probe.lo;
            break;
          }
          case 2: {  // range probe
            probe.has_lo = probe.has_hi = true;
            probe.lo.push_back(static_cast<int32_t>(rng.Uniform(4)));
            probe.hi = probe.lo;
            probe.hi.back() += 1 + static_cast<int32_t>(rng.Uniform(3));
            break;
          }
          default: {  // residual-filtered range (the planner's shape)
            probe.has_lo = probe.has_hi = probe.has_residual = true;
            probe.lo.push_back(static_cast<int32_t>(rng.Uniform(4)));
            probe.residual = probe.lo;
            probe.hi = probe.lo;
            probe.hi.back() += 1;
            break;
          }
        }
        Segment::Scratch scratch;  // fresh: probes are independent
        auto got = SegmentProbe(*spec.seg, spec.view, probe, &scratch);
        auto want =
            ReferenceProbe(*spec.rows, spec.pair_col, spec.path_col, probe);
        ASSERT_EQ(got.size(), want.size())
            << "seed " << seed << " view " << spec.view << " trial " << trial;
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].first, want[i].first);
          EXPECT_EQ(got[i].second, want[i].second);
        }
      }
    }
  }
}

TEST(SegmentTest, SortedProbeSequenceReusesPositions) {
  // A sorted batch sharing one Scratch must produce the same answers as
  // independent probes, with fewer directory searches than probes.
  Random rng(21);
  std::vector<Row> rows = RandomXferRows(rng, 2000);
  auto seg = Segment::Build(Segment::Kind::kXfer, kRun, rows);
  ASSERT_TRUE(seg.ok());

  // Sorted probe batch over existing (pair, path) targets.
  std::vector<Segment::ViewProbe> probes;
  for (int i = 0; i < 200; ++i) {
    const Row& r = rows[rng.Uniform(rows.size())];
    Segment::ViewProbe p;
    p.pair = r[1].AsIdPair().Packed();
    p.has_lo = p.has_hi = true;
    p.lo = r[2].AsIndexPath();
    p.hi = p.lo;
    probes.push_back(std::move(p));
  }
  std::sort(probes.begin(), probes.end(),
            [](const Segment::ViewProbe& a, const Segment::ViewProbe& b) {
              if (a.pair != b.pair) return a.pair < b.pair;
              return ComparePathRef(a.lo, b.lo) < 0;
            });

  Segment::Scratch shared;
  Segment::ProbeCounts batch_counts;
  std::vector<std::vector<std::pair<uint64_t, Row>>> batch_results;
  for (const auto& p : probes) {
    std::vector<std::pair<uint64_t, Row>> out;
    Status st = seg->ProbeView(Segment::kViewOut, p, &shared, &batch_counts,
                               [&](uint64_t ordinal, const Row& row) {
                                 out.emplace_back(ordinal, row);
                               });
    ASSERT_TRUE(st.ok()) << st.ToString();
    batch_results.push_back(std::move(out));
  }
  for (size_t i = 0; i < probes.size(); ++i) {
    Segment::Scratch fresh;
    auto want = SegmentProbe(*seg, Segment::kViewOut, probes[i], &fresh);
    ASSERT_EQ(batch_results[i].size(), want.size()) << "probe " << i;
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(batch_results[i][j].first, want[j].first);
      EXPECT_EQ(batch_results[i][j].second, want[j].second);
    }
  }
  // Forward reuse must have kicked in: strictly fewer searches than
  // probes (duplicates and near-neighbours continue from position).
  EXPECT_LT(batch_counts.searches, probes.size());
  EXPECT_GT(batch_counts.entries_examined, 0u);
}

TEST(SegmentTest, ScratchRowReferencesStayValid) {
  // Rows handed to emit callbacks point into the scratch cache and must
  // stay valid across later probes on the same scratch.
  Random rng(31);
  std::vector<Row> rows = RandomXferRows(rng, 1100);
  auto seg = Segment::Build(Segment::Kind::kXfer, kRun, rows);
  ASSERT_TRUE(seg.ok());
  Segment::Scratch scratch;
  std::vector<const Row*> pinned;
  std::vector<Row> copies;
  for (int i = 0; i < 50; ++i) {
    const Row& r = rows[rng.Uniform(rows.size())];
    Segment::ViewProbe p;
    p.pair = r[1].AsIdPair().Packed();
    p.has_lo = p.has_hi = true;
    p.lo = r[2].AsIndexPath();
    p.hi = p.lo;
    Segment::ProbeCounts counts;
    Status st = seg->ProbeView(Segment::kViewOut, p, &scratch, &counts,
                               [&](uint64_t, const Row& row) {
                                 pinned.push_back(&row);
                                 copies.push_back(row);
                               });
    ASSERT_TRUE(st.ok());
  }
  for (size_t i = 0; i < pinned.size(); ++i) {
    EXPECT_EQ(*pinned[i], copies[i]) << "row reference " << i << " invalidated";
  }
}

TEST(SegmentTest, RejectsTruncationAtEveryLength) {
  Random rng(41);
  std::vector<Row> rows = RandomXferRows(rng, 60);
  auto seg = Segment::Build(Segment::Kind::kXfer, kRun, rows);
  ASSERT_TRUE(seg.ok());
  const std::string& bytes = seg->bytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto truncated = Segment::FromBytes(
        std::make_shared<const std::string>(bytes.substr(0, len)));
    EXPECT_FALSE(truncated.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(SegmentTest, RejectsTrailingGarbage) {
  Random rng(42);
  std::vector<Row> rows = RandomXformRows(rng, 40);
  auto seg = Segment::Build(Segment::Kind::kXform, kRun, rows);
  ASSERT_TRUE(seg.ok());
  auto bad = Segment::FromBytes(
      std::make_shared<const std::string>(seg->bytes() + "x"));
  EXPECT_FALSE(bad.ok());
}

TEST(SegmentTest, RejectsForgedElementCounts) {
  // A short buffer claiming a huge dictionary must be rejected by the
  // length check, not by attempting the allocation.
  std::string forged;
  forged += "PSEG";
  forged.push_back(1);  // version
  forged.push_back(0);  // kind
  forged.push_back(3);  // run
  forged.push_back(0);  // nrows
  // npairs = 2^35 as a varint: 0x80 0x80 0x80 0x80 0x80 0x01
  for (int i = 0; i < 5; ++i) forged.push_back(static_cast<char>(0x80));
  forged.push_back(0x01);
  auto parsed =
      Segment::FromBytes(std::make_shared<const std::string>(forged));
  EXPECT_FALSE(parsed.ok());

  // Likewise a row-block count inconsistent with nrows.
  Random rng(43);
  std::vector<Row> rows = RandomXferRows(rng, 10);
  auto seg = Segment::Build(Segment::Kind::kXfer, kRun, rows);
  ASSERT_TRUE(seg.ok());
  std::string bytes = seg->bytes();
  // nrows is a single varint byte (10) right after magic+version+kind+run.
  ASSERT_EQ(bytes[7], 10);
  bytes[7] = 11;
  EXPECT_FALSE(
      Segment::FromBytes(std::make_shared<const std::string>(bytes)).ok());
}

TEST(SegmentTest, FuzzedPayloadsNeverCrash) {
  // Mutation corpus over valid segments of both kinds: random byte
  // flips, truncations, extensions. FromBytes must return a Status —
  // never crash, hang, or allocate from an untrusted count — and any
  // mutant that still parses must also survive a full decode and a few
  // probes (parse acceptance implies decode safety).
  Random rng(20260808);
  std::vector<std::string> seeds;
  {
    Random gen(51);
    seeds.push_back(
        Segment::Build(Segment::Kind::kXform, kRun, RandomXformRows(gen, 700))
            ->bytes());
    seeds.push_back(
        Segment::Build(Segment::Kind::kXfer, kRun, RandomXferRows(gen, 600))
            ->bytes());
    seeds.push_back(Segment::Build(Segment::Kind::kXform, kRun, {})->bytes());
  }
  for (const std::string& seed : seeds) {
    for (int i = 0; i < 2000; ++i) {
      std::string mutant = seed;
      switch (rng.Uniform(3)) {
        case 0: {  // flip 1-4 bytes
          uint64_t flips = 1 + rng.Uniform(4);
          for (uint64_t f = 0; f < flips; ++f) {
            mutant[rng.Uniform(mutant.size())] =
                static_cast<char>(rng.Uniform(256));
          }
          break;
        }
        case 1:  // truncate
          mutant.resize(rng.Uniform(mutant.size()));
          break;
        default:  // extend with junk
          mutant.append(1 + rng.Uniform(16), static_cast<char>(rng.Next()));
          break;
      }
      auto parsed =
          Segment::FromBytes(std::make_shared<const std::string>(mutant));
      if (!parsed.ok()) continue;
      auto rows = parsed->DecodeAllRows();
      if (rows.ok()) {
        EXPECT_EQ(rows->size(), parsed->num_rows());
      }
      Segment::Scratch scratch;
      Segment::ViewProbe probe;
      probe.pair = IdPair{1, 1}.Packed();
      Segment::ProbeCounts counts;
      (void)parsed->ProbeView(Segment::kViewOut, probe, &scratch, &counts,
                              [](uint64_t, const Row&) {});
    }
  }
}

TEST(SegmentTest, CanonicalReencode) {
  // Build(DecodeAllRows(seg)) must reproduce the exact bytes: there is
  // one encoding per logical content, which is what makes segment blobs
  // in saved images comparable byte-for-byte.
  for (uint64_t seed : {61u, 62u}) {
    Random rng(seed);
    std::vector<Row> xform = RandomXformRows(rng, 800);
    auto seg = Segment::Build(Segment::Kind::kXform, kRun, xform);
    ASSERT_TRUE(seg.ok());
    auto rows = seg->DecodeAllRows();
    ASSERT_TRUE(rows.ok());
    auto again = Segment::Build(Segment::Kind::kXform, kRun, *rows);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->bytes(), seg->bytes());

    std::vector<Row> xfer = RandomXferRows(rng, 650);
    auto xseg = Segment::Build(Segment::Kind::kXfer, kRun, xfer);
    ASSERT_TRUE(xseg.ok());
    auto xrows = xseg->DecodeAllRows();
    ASSERT_TRUE(xrows.ok());
    auto xagain = Segment::Build(Segment::Kind::kXfer, kRun, *xrows);
    ASSERT_TRUE(xagain.ok());
    EXPECT_EQ(xagain->bytes(), xseg->bytes());
  }
}

TEST(SegmentTest, FromBytesRoundTripsSharedBuffer) {
  Random rng(71);
  std::vector<Row> rows = RandomXferRows(rng, 300);
  auto seg = Segment::Build(Segment::Kind::kXfer, kRun, rows);
  ASSERT_TRUE(seg.ok());
  auto reparsed = Segment::FromBytes(seg->shared_bytes());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->num_rows(), rows.size());
  EXPECT_EQ(reparsed->bytes(), seg->bytes());
  // Footprint is dominated by the shared buffer, far below the
  // materialized rows.
  size_t raw = 0;
  for (const Row& r : rows) raw += RowApproxBytes(r);
  EXPECT_LT(seg->ApproxMemoryUsage(), raw);
}

}  // namespace
}  // namespace provlin::storage
