// Differential fuzz of the declarative select layer: for random tables,
// random index sets, and random queries, ExecuteSelect must return
// exactly what a brute-force scan-and-filter reference returns,
// regardless of which access path the planner picks.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "storage/query.h"

namespace provlin::storage {
namespace {

std::string RowFingerprint(const Row& row) {
  std::string out;
  for (const Datum& d : row) {
    out += d.ToString();
    out += '\x1f';
  }
  return out;
}

bool MatchesReference(const Row& row, const Schema& schema,
                      const SelectQuery& q) {
  for (const auto& e : q.equals) {
    size_t idx = *schema.ColumnIndex(e.column);
    if (!(row[idx] == e.value)) return false;
  }
  if (q.string_prefix.has_value()) {
    size_t idx = *schema.ColumnIndex(q.string_prefix->column);
    if (row[idx].kind() != DatumKind::kString) return false;
    const std::string& s = row[idx].AsString();
    const std::string& p = q.string_prefix->prefix;
    if (s.size() < p.size() || s.compare(0, p.size(), p) != 0) return false;
  }
  return true;
}

class SelectFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectFuzzTest, PlannerAgreesWithBruteForce) {
  Random rng(GetParam());

  Schema schema({{"a", DatumKind::kString},
                 {"b", DatumKind::kString},
                 {"c", DatumKind::kInt},
                 {"d", DatumKind::kString}});
  Table table("t", schema);

  // Random index set: 0-3 indexes over random column subsets.
  size_t num_indexes = rng.Uniform(4);
  for (size_t i = 0; i < num_indexes; ++i) {
    IndexSpec spec;
    spec.name = "idx" + std::to_string(i);
    spec.type = rng.Bernoulli(0.5) ? IndexType::kBTree : IndexType::kHash;
    std::vector<std::string> cols{"a", "b", "c", "d"};
    size_t n = 1 + rng.Uniform(3);
    for (size_t k = 0; k < n; ++k) {
      size_t pick = rng.Uniform(cols.size());
      spec.columns.push_back(cols[pick]);
      cols.erase(cols.begin() + static_cast<long>(pick));
    }
    ASSERT_TRUE(table.CreateIndex(spec).ok());
  }

  // Random rows over a small value domain (to force collisions).
  size_t num_rows = 50 + rng.Uniform(150);
  for (size_t i = 0; i < num_rows; ++i) {
    table
        .Insert({Datum("a" + std::to_string(rng.Uniform(5))),
                 Datum("b" + std::to_string(rng.Uniform(4))),
                 Datum(static_cast<int64_t>(rng.Uniform(6))),
                 Datum("prefix" + std::to_string(rng.Uniform(3)) + "_" +
                       std::to_string(rng.Uniform(4)))})
        .value();
  }
  // Random deletes to exercise tombstones + index maintenance.
  for (size_t i = 0; i < num_rows / 10; ++i) {
    (void)table.Delete(rng.Uniform(num_rows));
  }
  ASSERT_TRUE(table.CheckIndexConsistency().ok());

  // Random queries.
  for (int qn = 0; qn < 40; ++qn) {
    SelectQuery q;
    std::vector<std::string> cols{"a", "b", "c"};
    size_t eqs = rng.Uniform(4);
    for (size_t i = 0; i < eqs && !cols.empty(); ++i) {
      size_t pick = rng.Uniform(cols.size());
      std::string col = cols[pick];
      cols.erase(cols.begin() + static_cast<long>(pick));
      if (col == "c") {
        q.equals.push_back({col, Datum(static_cast<int64_t>(rng.Uniform(7)))});
      } else {
        q.equals.push_back(
            {col, Datum(col + std::to_string(rng.Uniform(6)))});
      }
    }
    if (rng.Bernoulli(0.5)) {
      q.string_prefix = SelectQuery::StringPrefix{
          "d", "prefix" + std::to_string(rng.Uniform(4))};
    }

    auto result = ExecuteSelect(table, q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // Brute-force reference over live rows.
    std::vector<std::string> expected;
    for (uint64_t rid = 0; rid < table.num_slots(); ++rid) {
      auto row = table.Get(rid);
      if (!row.ok()) continue;
      if (MatchesReference(*row, schema, q)) {
        expected.push_back(RowFingerprint(*row));
      }
    }
    std::vector<std::string> actual;
    actual.reserve(result->rows.size());
    for (const Row& row : result->rows) {
      actual.push_back(RowFingerprint(row));
    }
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(actual, expected)
        << "query " << qn << " via " << AccessPathName(result->access_path)
        << " (index '" << result->index_used << "', seed " << GetParam()
        << ")";
  }
}

// Batched execution must be indistinguishable from issuing every query
// separately: same rows, same order, same access-path report — for any
// mix of shapes (point, range, prefix, full-scan, hash) in one batch.
TEST_P(SelectFuzzTest, MultiSelectAgreesWithSingleSelect) {
  Random rng(GetParam() + 10'000);

  Schema schema({{"a", DatumKind::kString},
                 {"b", DatumKind::kString},
                 {"c", DatumKind::kInt},
                 {"d", DatumKind::kString}});
  Table table("t", schema);

  size_t num_indexes = rng.Uniform(4);
  for (size_t i = 0; i < num_indexes; ++i) {
    IndexSpec spec;
    spec.name = "idx" + std::to_string(i);
    spec.type = rng.Bernoulli(0.5) ? IndexType::kBTree : IndexType::kHash;
    std::vector<std::string> cols{"a", "b", "c", "d"};
    size_t n = 1 + rng.Uniform(3);
    for (size_t k = 0; k < n; ++k) {
      size_t pick = rng.Uniform(cols.size());
      spec.columns.push_back(cols[pick]);
      cols.erase(cols.begin() + static_cast<long>(pick));
    }
    ASSERT_TRUE(table.CreateIndex(spec).ok());
  }

  size_t num_rows = 50 + rng.Uniform(150);
  for (size_t i = 0; i < num_rows; ++i) {
    table
        .Insert({Datum("a" + std::to_string(rng.Uniform(5))),
                 Datum("b" + std::to_string(rng.Uniform(4))),
                 Datum(static_cast<int64_t>(rng.Uniform(6))),
                 Datum("prefix" + std::to_string(rng.Uniform(3)) + "_" +
                       std::to_string(rng.Uniform(4)))})
        .value();
  }
  for (size_t i = 0; i < num_rows / 10; ++i) {
    (void)table.Delete(rng.Uniform(num_rows));
  }

  for (int round = 0; round < 8; ++round) {
    std::vector<SelectQuery> batch(rng.Uniform(30));
    for (SelectQuery& q : batch) {
      std::vector<std::string> cols{"a", "b", "c"};
      size_t eqs = rng.Uniform(4);
      for (size_t i = 0; i < eqs && !cols.empty(); ++i) {
        size_t pick = rng.Uniform(cols.size());
        std::string col = cols[pick];
        cols.erase(cols.begin() + static_cast<long>(pick));
        if (col == "c") {
          q.equals.push_back(
              {col, Datum(static_cast<int64_t>(rng.Uniform(7)))});
        } else {
          q.equals.push_back(
              {col, Datum(col + std::to_string(rng.Uniform(6)))});
        }
      }
      if (rng.Bernoulli(0.4)) {
        q.string_prefix = SelectQuery::StringPrefix{
            "d", "prefix" + std::to_string(rng.Uniform(4))};
      }
    }
    bool zero_copy = rng.Bernoulli(0.5);
    SelectOptions opts;
    opts.zero_copy = zero_copy;
    auto batched = ExecuteMultiSelect(table, batch, opts);
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    ASSERT_EQ(batched->size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      auto single = ExecuteSelect(table, batch[i]);
      ASSERT_TRUE(single.ok());
      const SelectResult& br = (*batched)[i];
      ASSERT_EQ(br.num_rows(), single->rows.size())
          << "query " << i << " seed " << GetParam();
      std::vector<std::string> expected, actual;
      for (const Row& row : single->rows) {
        expected.push_back(RowFingerprint(row));
      }
      for (size_t r = 0; r < br.num_rows(); ++r) {
        RowView view = br.ViewAt(r);
        ASSERT_TRUE(view.valid());
        Row copy;
        for (size_t c = 0; c < view.size(); ++c) copy.push_back(view[c]);
        actual.push_back(RowFingerprint(copy));
      }
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      ASSERT_EQ(actual, expected)
          << "query " << i << " via " << AccessPathName(br.access_path)
          << " (index '" << br.index_used << "', zero_copy " << zero_copy
          << ", seed " << GetParam() << ")";
      EXPECT_EQ(br.access_path, single->access_path) << i;
      EXPECT_EQ(br.index_used, single->index_used) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectFuzzTest,
                         ::testing::Range<uint64_t>(500, 525));

}  // namespace
}  // namespace provlin::storage
