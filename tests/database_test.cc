// Catalog + persistence behaviour, including corruption handling.

#include "storage/database.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace provlin::storage {
namespace {

Schema SmallSchema() {
  return Schema({{"k", DatumKind::kString}, {"v", DatumKind::kInt}});
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Database, CreateGetDrop) {
  Database db;
  auto t = db.CreateTable("t1", SmallSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(db.GetTable("t1").ok());
  EXPECT_FALSE(db.GetTable("t2").ok());
  EXPECT_FALSE(db.CreateTable("t1", SmallSchema()).ok());
  EXPECT_TRUE(db.DropTable("t1").ok());
  EXPECT_FALSE(db.DropTable("t1").ok());
  EXPECT_FALSE(db.GetTable("t1").ok());
}

TEST(Database, TableNamesSorted) {
  Database db;
  ASSERT_TRUE(db.CreateTable("zeta", SmallSchema()).ok());
  ASSERT_TRUE(db.CreateTable("alpha", SmallSchema()).ok());
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(Database, TotalRowsAggregates) {
  Database db;
  Table* a = *db.CreateTable("a", SmallSchema());
  Table* b = *db.CreateTable("b", SmallSchema());
  ASSERT_TRUE(a->Insert({Datum("x"), Datum(int64_t{1})}).ok());
  ASSERT_TRUE(b->Insert({Datum("y"), Datum(int64_t{2})}).ok());
  ASSERT_TRUE(b->Insert({Datum("z"), Datum(int64_t{3})}).ok());
  EXPECT_EQ(db.TotalRows(), 3u);
}

TEST(Database, SaveLoadRoundTripsRowsAndIndexes) {
  std::string path = TempPath("db_roundtrip.bin");
  {
    Database db;
    Table* t = *db.CreateTable("t", SmallSchema());
    ASSERT_TRUE(t->CreateIndex({"by_k", {"k"}, IndexType::kBTree}).ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          t->Insert({Datum("k" + std::to_string(i % 10)), Datum(int64_t{i})})
              .ok());
    }
    // Tombstoned rows must not be persisted.
    ASSERT_TRUE(t->Delete(0).ok());
    ASSERT_TRUE(db.Save(path).ok());
  }
  Database db;
  ASSERT_TRUE(db.Load(path).ok());
  Table* t = *db.GetTable("t");
  EXPECT_EQ(t->num_rows(), 99u);
  auto rids = t->IndexLookup("by_k", {Datum("k3")});
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 10u);
  EXPECT_TRUE(t->CheckIndexConsistency().ok());
}

TEST(Database, SaveLoadPreservesNulls) {
  std::string path = TempPath("db_nulls.bin");
  {
    Database db;
    Table* t = *db.CreateTable("t", SmallSchema());
    ASSERT_TRUE(t->Insert({Datum::Null(), Datum(int64_t{1})}).ok());
    ASSERT_TRUE(db.Save(path).ok());
  }
  Database db;
  ASSERT_TRUE(db.Load(path).ok());
  auto row = (*db.GetTable("t"))->Get(0);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*row)[0].is_null());
  EXPECT_EQ((*row)[1].AsInt(), 1);
}

TEST(Database, LoadRejectsMissingFile) {
  Database db;
  EXPECT_FALSE(db.Load(TempPath("no_such_file.bin")).ok());
}

TEST(Database, LoadRejectsBadMagic) {
  std::string path = TempPath("db_badmagic.bin");
  std::ofstream out(path, std::ios::binary);
  out << "garbage data that is not a provlin database";
  out.close();
  Database db;
  auto st = db.Load(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(Database, LoadRejectsTruncatedFile) {
  std::string path = TempPath("db_trunc.bin");
  {
    Database db;
    Table* t = *db.CreateTable("t", SmallSchema());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(t->Insert({Datum("k"), Datum(int64_t{i})}).ok());
    }
    ASSERT_TRUE(db.Save(path).ok());
  }
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();

  Database db;
  auto st = db.Load(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(Database, FailedLoadLeavesCatalogUntouched) {
  Database db;
  ASSERT_TRUE(db.CreateTable("keep_me", SmallSchema()).ok());
  EXPECT_FALSE(db.Load(TempPath("no_such_file2.bin")).ok());
  EXPECT_TRUE(db.GetTable("keep_me").ok());
}

TEST(Database, StatsAggregateAndReset) {
  Database db;
  Table* t = *db.CreateTable("t", SmallSchema());
  ASSERT_TRUE(t->Insert({Datum("k"), Datum(int64_t{1})}).ok());
  (void)t->FullScan();
  TableStats stats = db.AggregateStats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.full_scans, 1u);
  db.ResetStats();
  EXPECT_EQ(db.AggregateStats().inserts, 0u);
}

}  // namespace
}  // namespace provlin::storage
