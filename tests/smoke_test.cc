// End-to-end smoke: execute the synthetic and GK workflows with
// provenance capture and check that both lineage engines return the
// same, correct answers.

#include <gtest/gtest.h>

#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "testbed/gk_workflow.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin {
namespace {

using lineage::LineageAnswer;
using testbed::Workbench;
using workflow::PortRef;

TEST(Smoke, SyntheticRunAndLineage) {
  auto wb = Workbench::Synthetic(/*chain_length=*/3);
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  auto run = (*wb)->RunSynthetic(/*d=*/4, "run0");
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // d=4 through two chains of 3 plus a 4x4 cross product.
  EXPECT_EQ(run->total_invocations, 1u + 2u * 3u * 4u + 16u);
  const Value& result = run->outputs.at("RESULT");
  ASSERT_TRUE(result.is_list());
  ASSERT_EQ(result.list_size(), 4u);
  EXPECT_EQ(result.elements()[0].list_size(), 4u);

  // Focused fine-grained query: which generated element does
  // RESULT[1][2] derive from?
  PortRef target{workflow::kWorkflowProcessor, "RESULT"};
  Index q({1, 2});
  lineage::InterestSet interest{testbed::kListGen};

  auto naive = (*wb)->Naive().Query(lineage::LineageRequest::SingleRun("run0", target, q, interest));
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  auto proj = (*wb)->IndexProj()->Query(lineage::LineageRequest::SingleRun("run0", target, q, interest));
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();

  ASSERT_EQ(naive->bindings.size(), proj->bindings.size());
  EXPECT_EQ(naive->bindings, proj->bindings);
  // LISTGEN_1's input is the size; its binding must appear.
  ASSERT_FALSE(proj->bindings.empty());
  for (const auto& b : proj->bindings) {
    EXPECT_EQ(b.port.processor, testbed::kListGen);
  }
}

TEST(Smoke, GkFineGrainedClaim) {
  auto wb = Workbench::GK();
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  auto run = (*wb)->Run({{"list_of_geneIDList", testbed::GkSampleInput()}},
                        "gk0");
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // The paper's claim: paths_per_gene[i] depends only on input sub-list
  // i. Query sub-list 2 (index [1]) focused on the lookup service.
  PortRef target{workflow::kWorkflowProcessor, "paths_per_gene"};
  lineage::InterestSet interest{"get_pathways_by_genes"};

  auto naive = (*wb)->Naive().Query(lineage::LineageRequest::SingleRun("gk0", target, Index({1}), interest));
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  auto proj = (*wb)->IndexProj()->Query(lineage::LineageRequest::SingleRun("gk0", target, Index({1}), interest));
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();
  EXPECT_EQ(naive->bindings, proj->bindings);

  ASSERT_EQ(proj->bindings.size(), 1u);
  // Only the second sub-list's genes are involved.
  EXPECT_EQ(proj->bindings[0].index, Index({1}));
  EXPECT_EQ(proj->bindings[0].value_repr, "[\"mmu:328788\"]");

  // commonPathways (right branch, flattened) depends on ALL genes.
  PortRef common{workflow::kWorkflowProcessor, "commonPathways"};
  auto common_lin =
      (*wb)->IndexProj()->Query(lineage::LineageRequest::SingleRun("gk0", common, Index({0}),
                                lineage::InterestSet{"get_common_pathways"}));
  ASSERT_TRUE(common_lin.ok()) << common_lin.status().ToString();
  ASSERT_EQ(common_lin->bindings.size(), 1u);
  EXPECT_EQ(common_lin->bindings[0].value_repr,
            "[\"mmu:20816\",\"mmu:26416\",\"mmu:328788\"]");
}

}  // namespace
}  // namespace provlin
