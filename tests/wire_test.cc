// Codec tests for the versioned lineage wire protocol (lineage/wire.h):
// round-trips for every message shape, rejection of malformed payloads
// (wrong version, wrong type, truncation at every length, trailing
// garbage, forged element counts), and a seeded mutation-fuzz corpus —
// the decoder must never crash or over-allocate on adversarial bytes.

#include "lineage/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "lineage/engine.h"
#include "lineage/query.h"

namespace provlin::lineage::wire {
namespace {

LineageRequest MakeRequest() {
  LineageRequest req;
  req.runs = {"r0", "r1", "run-with-long-name-2"};
  req.target = workflow::PortRef{"P", "Y1"};
  req.index = Index({1, 2, 0});
  req.interest = {"workflow", "P", "Q"};
  return req;
}

LineageAnswer MakeAnswer() {
  LineageAnswer answer;
  LineageBinding b1;
  b1.run_id = "r0";
  b1.port = workflow::PortRef{"workflow", "X"};
  b1.index = Index({0, 1});
  b1.value_repr = "\"quoted\nvalue\"";
  LineageBinding b2;
  b2.run_id = "r1";
  b2.port = workflow::PortRef{"P", "A"};
  b2.index = Index();
  b2.value_repr = "e0";
  answer.bindings = {b1, b2};
  answer.timing.t1_ms = 1.25;
  answer.timing.t2_ms = 3.5;
  answer.timing.trace_probes = 17;
  answer.timing.trace_descents = 5;
  answer.timing.graph_steps = 42;
  answer.timing.plan_cache_hit = true;
  return answer;
}

TEST(WireTest, RequestEnvelopeRoundTrip) {
  RequestEnvelope envelope;
  envelope.request_id = 0xDEADBEEFCAFEBABEull;
  envelope.engine = "indexproj";
  envelope.request = MakeRequest();

  std::string payload = EncodeRequestEnvelope(envelope);
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, envelope.request_id);
  EXPECT_EQ(decoded->engine, "indexproj");
  EXPECT_EQ(decoded->request.runs, envelope.request.runs);
  EXPECT_EQ(decoded->request.target, envelope.request.target);
  EXPECT_EQ(decoded->request.index, envelope.request.index);
  EXPECT_EQ(decoded->request.interest, envelope.request.interest);
}

TEST(WireTest, EmptyRequestRoundTrip) {
  RequestEnvelope envelope;  // no runs, whole-value index, unfocused
  std::string payload = EncodeRequestEnvelope(envelope);
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->request.runs.empty());
  EXPECT_TRUE(decoded->request.interest.empty());
  EXPECT_EQ(decoded->request.index, Index());
}

TEST(WireTest, AnswerResponseRoundTrip) {
  LineageAnswer answer = MakeAnswer();
  std::string payload = EncodeAnswerResponse(7, answer);
  auto decoded = DecodeResponseEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_TRUE(decoded->ok);
  EXPECT_TRUE(decoded->ToStatus().ok());
  ASSERT_EQ(decoded->answer.bindings.size(), answer.bindings.size());
  EXPECT_TRUE(decoded->answer.bindings[0] == answer.bindings[0]);
  EXPECT_TRUE(decoded->answer.bindings[1] == answer.bindings[1]);
  EXPECT_DOUBLE_EQ(decoded->answer.timing.t1_ms, 1.25);
  EXPECT_DOUBLE_EQ(decoded->answer.timing.t2_ms, 3.5);
  EXPECT_EQ(decoded->answer.timing.trace_probes, 17u);
  EXPECT_EQ(decoded->answer.timing.trace_descents, 5u);
  EXPECT_EQ(decoded->answer.timing.graph_steps, 42u);
  EXPECT_TRUE(decoded->answer.timing.plan_cache_hit);
}

TEST(WireTest, ErrorResponseRoundTripAndStatusMapping) {
  struct Case {
    ErrorCode code;
    StatusCode status;
  };
  const Case cases[] = {
      {ErrorCode::kOverloaded, StatusCode::kUnavailable},
      {ErrorCode::kBadRequest, StatusCode::kInvalidArgument},
      {ErrorCode::kNotFound, StatusCode::kNotFound},
      {ErrorCode::kInternal, StatusCode::kInternal},
      {ErrorCode::kUnsupportedVersion, StatusCode::kInvalidArgument},
  };
  for (const Case& c : cases) {
    std::string payload = EncodeErrorResponse(99, c.code, "the message");
    auto decoded = DecodeResponseEnvelope(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->request_id, 99u);
    EXPECT_FALSE(decoded->ok);
    EXPECT_EQ(decoded->code, c.code);
    EXPECT_EQ(decoded->message, "the message");
    Status st = decoded->ToStatus();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), c.status) << ErrorCodeName(c.code);
  }
}

TEST(WireTest, ErrorCodeNamesAreStable) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOverloaded), "OVERLOADED");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kBadRequest), "BAD_REQUEST");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kInternal), "INTERNAL");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kUnsupportedVersion),
            "UNSUPPORTED_VERSION");
}

TEST(WireTest, RejectsWrongVersion) {
  RequestEnvelope envelope;
  envelope.engine = "naive";
  std::string payload = EncodeRequestEnvelope(envelope);
  payload[0] = 2;  // future version
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
  EXPECT_NE(decoded.status().ToString().find("version"), std::string::npos);
}

TEST(WireTest, RejectsWrongMessageType) {
  // An answer payload is not a request envelope and vice versa.
  std::string answer = EncodeAnswerResponse(1, MakeAnswer());
  EXPECT_FALSE(DecodeRequestEnvelope(answer).ok());
  std::string request = EncodeRequestEnvelope(RequestEnvelope{});
  EXPECT_FALSE(DecodeResponseEnvelope(request).ok());
}

TEST(WireTest, RejectsTruncationAtEveryLength) {
  RequestEnvelope envelope;
  envelope.request_id = 123;
  envelope.engine = "indexproj";
  envelope.request = MakeRequest();
  std::string payload = EncodeRequestEnvelope(envelope);
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = DecodeRequestEnvelope(payload.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  std::string response = EncodeAnswerResponse(5, MakeAnswer());
  for (size_t len = 0; len < response.size(); ++len) {
    auto decoded = DecodeResponseEnvelope(response.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireTest, RejectsTrailingGarbage) {
  std::string payload = EncodeRequestEnvelope(RequestEnvelope{});
  payload += "extra";
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_FALSE(decoded.ok());
}

TEST(WireTest, RejectsForgedElementCounts) {
  // A 13-byte payload claiming 2^32-1 runs must be rejected from the
  // length check, not by attempting a four-billion-iteration loop.
  storage::BinaryWriter w;
  w.WriteU8(kWireVersion);
  w.WriteU8(static_cast<uint8_t>(MessageType::kRequest));
  w.WriteU64(1);
  w.WriteString("naive");
  w.WriteU32(0xFFFFFFFFu);  // runs count, no runs follow
  auto decoded = DecodeRequestEnvelope(w.buffer());
  EXPECT_FALSE(decoded.ok());
}

TEST(WireTest, FuzzedPayloadsNeverCrash) {
  // Mutation corpus: random byte edits, truncations, and extensions of
  // valid payloads. The decoders must return a Status — never crash,
  // never hang, never allocate from an untrusted count — and when the
  // version byte survives untouched but the decode succeeds, the
  // re-encode must be canonical (encode(decode(x)) == x only for the
  // untouched payload; mutants merely must not crash).
  Random rng(20260808);
  const std::string seeds[] = {
      EncodeRequestEnvelope(
          {42, "indexproj", MakeRequest()}),
      EncodeAnswerResponse(43, MakeAnswer()),
      EncodeErrorResponse(44, ErrorCode::kOverloaded, "queue full"),
  };
  for (const std::string& seed : seeds) {
    for (int i = 0; i < 2000; ++i) {
      std::string mutant = seed;
      switch (rng.Uniform(3)) {
        case 0: {  // flip 1-4 bytes
          uint64_t flips = 1 + rng.Uniform(4);
          for (uint64_t f = 0; f < flips; ++f) {
            mutant[rng.Uniform(mutant.size())] =
                static_cast<char>(rng.Uniform(256));
          }
          break;
        }
        case 1:  // truncate
          mutant.resize(rng.Uniform(mutant.size()));
          break;
        default:  // extend with junk
          mutant.append(1 + rng.Uniform(16), static_cast<char>(rng.Next()));
          break;
      }
      // Either decoder; both must be robust against both shapes.
      (void)DecodeRequestEnvelope(mutant);
      (void)DecodeResponseEnvelope(mutant);
    }
  }
}

TEST(WireTest, CanonicalReencode) {
  // decode → encode reproduces the exact bytes (no alternative
  // encodings), which is what makes served-vs-in-process byte
  // comparison in server_test meaningful.
  RequestEnvelope envelope;
  envelope.request_id = 9;
  envelope.engine = "naive";
  envelope.request = MakeRequest();
  std::string payload = EncodeRequestEnvelope(envelope);
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(EncodeRequestEnvelope(*decoded), payload);

  std::string response = EncodeAnswerResponse(10, MakeAnswer());
  auto decoded_response = DecodeResponseEnvelope(response);
  ASSERT_TRUE(decoded_response.ok());
  EXPECT_EQ(EncodeAnswerResponse(10, decoded_response->answer), response);
}

}  // namespace
}  // namespace provlin::lineage::wire
