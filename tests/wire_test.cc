// Codec tests for the versioned lineage wire protocol (lineage/wire.h):
// round-trips for every message shape, rejection of malformed payloads
// (wrong version, wrong type, truncation at every length, trailing
// garbage, forged element counts), and a seeded mutation-fuzz corpus —
// the decoder must never crash or over-allocate on adversarial bytes.

#include "lineage/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "lineage/engine.h"
#include "lineage/query.h"

namespace provlin::lineage::wire {
namespace {

LineageRequest MakeRequest() {
  LineageRequest req;
  req.runs = {"r0", "r1", "run-with-long-name-2"};
  req.target = workflow::PortRef{"P", "Y1"};
  req.index = Index({1, 2, 0});
  req.interest = {"workflow", "P", "Q"};
  return req;
}

LineageAnswer MakeAnswer() {
  LineageAnswer answer;
  LineageBinding b1;
  b1.run_id = "r0";
  b1.port = workflow::PortRef{"workflow", "X"};
  b1.index = Index({0, 1});
  b1.value_repr = "\"quoted\nvalue\"";
  LineageBinding b2;
  b2.run_id = "r1";
  b2.port = workflow::PortRef{"P", "A"};
  b2.index = Index();
  b2.value_repr = "e0";
  answer.bindings = {b1, b2};
  answer.timing.t1_ms = 1.25;
  answer.timing.t2_ms = 3.5;
  answer.timing.trace_probes = 17;
  answer.timing.trace_descents = 5;
  answer.timing.graph_steps = 42;
  answer.timing.plan_cache_hit = true;
  return answer;
}

TEST(WireTest, RequestEnvelopeRoundTrip) {
  RequestEnvelope envelope;
  envelope.request_id = 0xDEADBEEFCAFEBABEull;
  envelope.engine = "indexproj";
  envelope.request = MakeRequest();

  std::string payload = EncodeRequestEnvelope(envelope);
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, envelope.request_id);
  EXPECT_EQ(decoded->engine, "indexproj");
  EXPECT_EQ(decoded->request.runs, envelope.request.runs);
  EXPECT_EQ(decoded->request.target, envelope.request.target);
  EXPECT_EQ(decoded->request.index, envelope.request.index);
  EXPECT_EQ(decoded->request.interest, envelope.request.interest);
}

TEST(WireTest, EmptyRequestRoundTrip) {
  RequestEnvelope envelope;  // no runs, whole-value index, unfocused
  std::string payload = EncodeRequestEnvelope(envelope);
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->request.runs.empty());
  EXPECT_TRUE(decoded->request.interest.empty());
  EXPECT_EQ(decoded->request.index, Index());
}

TEST(WireTest, AnswerResponseRoundTrip) {
  LineageAnswer answer = MakeAnswer();
  std::string payload = EncodeAnswerResponse(7, answer);
  auto decoded = DecodeResponseEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_TRUE(decoded->ok);
  EXPECT_TRUE(decoded->ToStatus().ok());
  ASSERT_EQ(decoded->answer.bindings.size(), answer.bindings.size());
  EXPECT_TRUE(decoded->answer.bindings[0] == answer.bindings[0]);
  EXPECT_TRUE(decoded->answer.bindings[1] == answer.bindings[1]);
  EXPECT_DOUBLE_EQ(decoded->answer.timing.t1_ms, 1.25);
  EXPECT_DOUBLE_EQ(decoded->answer.timing.t2_ms, 3.5);
  EXPECT_EQ(decoded->answer.timing.trace_probes, 17u);
  EXPECT_EQ(decoded->answer.timing.trace_descents, 5u);
  EXPECT_EQ(decoded->answer.timing.graph_steps, 42u);
  EXPECT_TRUE(decoded->answer.timing.plan_cache_hit);
}

TEST(WireTest, ErrorResponseRoundTripAndStatusMapping) {
  struct Case {
    ErrorCode code;
    StatusCode status;
  };
  const Case cases[] = {
      {ErrorCode::kOverloaded, StatusCode::kUnavailable},
      {ErrorCode::kBadRequest, StatusCode::kInvalidArgument},
      {ErrorCode::kNotFound, StatusCode::kNotFound},
      {ErrorCode::kInternal, StatusCode::kInternal},
      {ErrorCode::kUnsupportedVersion, StatusCode::kInvalidArgument},
  };
  for (const Case& c : cases) {
    std::string payload = EncodeErrorResponse(99, c.code, "the message");
    auto decoded = DecodeResponseEnvelope(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->request_id, 99u);
    EXPECT_FALSE(decoded->ok);
    EXPECT_EQ(decoded->code, c.code);
    EXPECT_EQ(decoded->message, "the message");
    Status st = decoded->ToStatus();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), c.status) << ErrorCodeName(c.code);
  }
}

TEST(WireTest, ErrorCodeNamesAreStable) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOverloaded), "OVERLOADED");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kBadRequest), "BAD_REQUEST");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kInternal), "INTERNAL");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kUnsupportedVersion),
            "UNSUPPORTED_VERSION");
}

TEST(WireTest, RejectsWrongVersion) {
  RequestEnvelope envelope;
  envelope.engine = "naive";
  std::string payload = EncodeRequestEnvelope(envelope);
  payload[0] = 3;  // future version (both 1 and 2 are live)
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
  EXPECT_NE(decoded.status().ToString().find("version"), std::string::npos);
}

RequestTimeline MakeTimeline() {
  RequestTimeline t;
  t.queue_ms = 0.25;
  t.dispatch_ms = 0.5;
  t.execute_ms = 2.75;
  t.total_ms = 3.5;  // serialize_ms/write_ms stay 0: the wire contract
  t.trace_probes = 17;
  t.trace_descents = 5;
  t.rows_examined = 120;
  t.hot_probes = 11;
  t.sealed_probes = 6;
  t.shards = {{0, 9, 3, 80}, {3, 8, 2, 40}};
  return t;
}

TEST(WireTest, V2RequestRoundTripCarriesTimelineFlag) {
  RequestEnvelope envelope;
  envelope.request_id = 77;
  envelope.engine = "indexproj";
  envelope.request = MakeRequest();
  envelope.version = kWireVersion;
  envelope.want_timeline = true;
  std::string payload = EncodeRequestEnvelope(envelope);
  EXPECT_EQ(static_cast<uint8_t>(payload[0]), kWireVersion);
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, kWireVersion);
  EXPECT_TRUE(decoded->want_timeline);
  EXPECT_EQ(decoded->request.runs, envelope.request.runs);
  // A v1 frame of the same envelope is byte-identical to the legacy
  // codec: the version upgrade costs old peers nothing.
  envelope.version = kWireVersionLegacy;
  envelope.want_timeline = false;
  EXPECT_EQ(EncodeRequestEnvelope(envelope),
            EncodeRequestEnvelope(RequestEnvelope{77, "indexproj",
                                                  MakeRequest()}));
}

TEST(WireTest, V2RequestRejectsUnknownFlagBits) {
  RequestEnvelope envelope;
  envelope.engine = "naive";
  envelope.version = kWireVersion;
  envelope.want_timeline = true;
  std::string payload = EncodeRequestEnvelope(envelope);
  // The flags byte sits right after the 10-byte header in a v2 frame.
  payload[10] = static_cast<char>(kKnownRequestFlags | 0x80);
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(WireTest, TimelineRoundTripOnV2Answer) {
  LineageAnswer answer = MakeAnswer();
  RequestTimeline timeline = MakeTimeline();
  std::string payload = EncodeAnswerResponseV2(21, answer, &timeline);
  auto decoded = DecodeResponseEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 21u);
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->version, kWireVersion);
  ASSERT_TRUE(decoded->has_timeline);
  EXPECT_EQ(decoded->timeline, timeline);
  ASSERT_EQ(decoded->timeline.shards.size(), 2u);
  EXPECT_EQ(decoded->timeline.shards[1], (ShardCost{3, 8, 2, 40}));
}

TEST(WireTest, V2AnswerWithoutTimeline) {
  std::string payload = EncodeAnswerResponseV2(22, MakeAnswer(), nullptr);
  auto decoded = DecodeResponseEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->version, kWireVersion);
  EXPECT_FALSE(decoded->has_timeline);
}

TEST(WireTest, V2AnswerRejectsBadTimelineMarker) {
  std::string payload = EncodeAnswerResponseV2(23, MakeAnswer(), nullptr);
  payload.back() = 2;  // has_timeline marker must be 0 or 1
  EXPECT_FALSE(DecodeResponseEnvelope(payload).ok());
}

TEST(WireTest, V2ErrorResponseRoundTrip) {
  std::string payload = EncodeErrorResponse(
      24, ErrorCode::kOverloaded, "queue full", kWireVersion);
  auto decoded = DecodeResponseEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->version, kWireVersion);
  EXPECT_EQ(decoded->code, ErrorCode::kOverloaded);
  EXPECT_EQ(decoded->message, "queue full");
}

TEST(WireTest, StatsRequestRoundTrip) {
  StatsRequest request;
  request.request_id = 31;
  request.want = kStatsWantMetrics | kStatsWantTrace;
  std::string payload = EncodeStatsRequest(request);
  auto decoded = DecodeStatsRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 31u);
  EXPECT_EQ(decoded->want, request.want);
}

TEST(WireTest, StatsRequestRejectsUnknownWantBits) {
  StatsRequest request;
  request.request_id = 32;
  std::string payload = EncodeStatsRequest(request);
  payload.back() = static_cast<char>(kKnownStatsWants | 0x40);
  EXPECT_FALSE(DecodeStatsRequest(payload).ok());
}

TEST(WireTest, StatsResponseRoundTrip) {
  StatsResponse response;
  response.request_id = 33;
  response.has_metrics = true;
  response.prometheus_text = "provlin_server_requests 5\n";
  response.metrics_json = "{\"counters\": {}}";
  response.has_trace = true;
  response.trace_json = "{\"traceEvents\": []}\n";
  response.trace_events = 128;
  response.trace_dropped = 3;
  std::string payload = EncodeStatsResponse(response);
  auto decoded = DecodeStatsResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 33u);
  EXPECT_TRUE(decoded->has_metrics);
  EXPECT_EQ(decoded->prometheus_text, response.prometheus_text);
  EXPECT_EQ(decoded->metrics_json, response.metrics_json);
  EXPECT_TRUE(decoded->has_trace);
  EXPECT_EQ(decoded->trace_json, response.trace_json);
  EXPECT_EQ(decoded->trace_events, 128u);
  EXPECT_EQ(decoded->trace_dropped, 3u);
}

TEST(WireTest, StatsRejectsTruncationAtEveryLength) {
  StatsRequest request;
  request.request_id = 34;
  request.want = kStatsWantMetrics;
  std::string req_payload = EncodeStatsRequest(request);
  for (size_t len = 0; len < req_payload.size(); ++len) {
    EXPECT_FALSE(DecodeStatsRequest(req_payload.substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
  StatsResponse response;
  response.request_id = 35;
  response.has_metrics = true;
  response.prometheus_text = "provlin_x 1\n";
  response.metrics_json = "{}";
  std::string rsp_payload = EncodeStatsResponse(response);
  for (size_t len = 0; len < rsp_payload.size(); ++len) {
    EXPECT_FALSE(DecodeStatsResponse(rsp_payload.substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireTest, TimelineRejectsTruncationAtEveryLength) {
  RequestTimeline timeline = MakeTimeline();
  std::string payload = EncodeAnswerResponseV2(36, MakeAnswer(), &timeline);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeResponseEnvelope(payload.substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireTest, RejectsWrongMessageType) {
  // An answer payload is not a request envelope and vice versa.
  std::string answer = EncodeAnswerResponse(1, MakeAnswer());
  EXPECT_FALSE(DecodeRequestEnvelope(answer).ok());
  std::string request = EncodeRequestEnvelope(RequestEnvelope{});
  EXPECT_FALSE(DecodeResponseEnvelope(request).ok());
}

TEST(WireTest, RejectsTruncationAtEveryLength) {
  RequestEnvelope envelope;
  envelope.request_id = 123;
  envelope.engine = "indexproj";
  envelope.request = MakeRequest();
  std::string payload = EncodeRequestEnvelope(envelope);
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = DecodeRequestEnvelope(payload.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  std::string response = EncodeAnswerResponse(5, MakeAnswer());
  for (size_t len = 0; len < response.size(); ++len) {
    auto decoded = DecodeResponseEnvelope(response.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireTest, RejectsTrailingGarbage) {
  std::string payload = EncodeRequestEnvelope(RequestEnvelope{});
  payload += "extra";
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_FALSE(decoded.ok());
}

TEST(WireTest, RejectsForgedElementCounts) {
  // A 13-byte payload claiming 2^32-1 runs must be rejected from the
  // length check, not by attempting a four-billion-iteration loop.
  storage::BinaryWriter w;
  w.WriteU8(kWireVersionLegacy);
  w.WriteU8(static_cast<uint8_t>(MessageType::kRequest));
  w.WriteU64(1);
  w.WriteString("naive");
  w.WriteU32(0xFFFFFFFFu);  // runs count, no runs follow
  auto decoded = DecodeRequestEnvelope(w.buffer());
  EXPECT_FALSE(decoded.ok());
}

TEST(WireTest, FuzzedPayloadsNeverCrash) {
  // Mutation corpus: random byte edits, truncations, and extensions of
  // valid payloads. The decoders must return a Status — never crash,
  // never hang, never allocate from an untrusted count — and when the
  // version byte survives untouched but the decode succeeds, the
  // re-encode must be canonical (encode(decode(x)) == x only for the
  // untouched payload; mutants merely must not crash).
  Random rng(20260808);
  RequestEnvelope v2_envelope;
  v2_envelope.request_id = 45;
  v2_envelope.engine = "naive";
  v2_envelope.request = MakeRequest();
  v2_envelope.version = kWireVersion;
  v2_envelope.want_timeline = true;
  RequestTimeline timeline = MakeTimeline();
  StatsResponse stats_response;
  stats_response.request_id = 47;
  stats_response.has_metrics = true;
  stats_response.prometheus_text = "provlin_server_requests 5\n";
  stats_response.metrics_json = "{}";
  const std::string seeds[] = {
      EncodeRequestEnvelope(
          {42, "indexproj", MakeRequest()}),
      EncodeAnswerResponse(43, MakeAnswer()),
      EncodeErrorResponse(44, ErrorCode::kOverloaded, "queue full"),
      EncodeRequestEnvelope(v2_envelope),
      EncodeAnswerResponseV2(45, MakeAnswer(), &timeline),
      EncodeStatsRequest({46, kStatsWantMetrics | kStatsWantTrace}),
      EncodeStatsResponse(stats_response),
  };
  for (const std::string& seed : seeds) {
    for (int i = 0; i < 2000; ++i) {
      std::string mutant = seed;
      switch (rng.Uniform(3)) {
        case 0: {  // flip 1-4 bytes
          uint64_t flips = 1 + rng.Uniform(4);
          for (uint64_t f = 0; f < flips; ++f) {
            mutant[rng.Uniform(mutant.size())] =
                static_cast<char>(rng.Uniform(256));
          }
          break;
        }
        case 1:  // truncate
          mutant.resize(rng.Uniform(mutant.size()));
          break;
        default:  // extend with junk
          mutant.append(1 + rng.Uniform(16), static_cast<char>(rng.Next()));
          break;
      }
      // Every decoder; all must be robust against every shape.
      (void)DecodeRequestEnvelope(mutant);
      (void)DecodeResponseEnvelope(mutant);
      (void)DecodeStatsRequest(mutant);
      (void)DecodeStatsResponse(mutant);
    }
  }
}

TEST(WireTest, CanonicalReencode) {
  // decode → encode reproduces the exact bytes (no alternative
  // encodings), which is what makes served-vs-in-process byte
  // comparison in server_test meaningful.
  RequestEnvelope envelope;
  envelope.request_id = 9;
  envelope.engine = "naive";
  envelope.request = MakeRequest();
  std::string payload = EncodeRequestEnvelope(envelope);
  auto decoded = DecodeRequestEnvelope(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(EncodeRequestEnvelope(*decoded), payload);

  std::string response = EncodeAnswerResponse(10, MakeAnswer());
  auto decoded_response = DecodeResponseEnvelope(response);
  ASSERT_TRUE(decoded_response.ok());
  EXPECT_EQ(EncodeAnswerResponse(10, decoded_response->answer), response);

  // v2 frames re-encode canonically too, timeline included.
  envelope.version = kWireVersion;
  envelope.want_timeline = true;
  std::string v2_payload = EncodeRequestEnvelope(envelope);
  auto v2_decoded = DecodeRequestEnvelope(v2_payload);
  ASSERT_TRUE(v2_decoded.ok());
  EXPECT_EQ(EncodeRequestEnvelope(*v2_decoded), v2_payload);

  RequestTimeline timeline = MakeTimeline();
  std::string v2_response = EncodeAnswerResponseV2(11, MakeAnswer(),
                                                   &timeline);
  auto v2_decoded_response = DecodeResponseEnvelope(v2_response);
  ASSERT_TRUE(v2_decoded_response.ok());
  ASSERT_TRUE(v2_decoded_response->has_timeline);
  EXPECT_EQ(EncodeAnswerResponseV2(11, v2_decoded_response->answer,
                                   &v2_decoded_response->timeline),
            v2_response);
}

}  // namespace
}  // namespace provlin::lineage::wire
