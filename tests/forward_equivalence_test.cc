// Property: forward IndexProj == naive forward traversal, over random
// workflows, targets, indices and interest sets (the dual of
// equivalence_test.cc).

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "lineage/forward_lineage.h"
#include "tests/random_workflow.h"
#include "testbed/workbench.h"

namespace provlin::lineage {
namespace {

using testbed::Workbench;
using testbed_testing::GeneratedWorkflow;
using testbed_testing::IsDotShapeMismatch;
using testbed_testing::MakeRandomWorkflow;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

class ForwardEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForwardEquivalenceTest, ForwardEnginesAgreeOnRandomWorkflows) {
  uint64_t seed = GetParam();
  GeneratedWorkflow gen = MakeRandomWorkflow(seed);
  ASSERT_NE(gen.flow, nullptr);

  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  auto wb = std::move(*Workbench::Create(gen.flow, registry));
  auto run = wb->Run(gen.inputs, "r0");
  if (!run.ok() && IsDotShapeMismatch(run.status())) {
    GTEST_SKIP() << "ragged dot pair";
  }
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  auto fwd_result =
      ForwardIndexProjLineage::Create(gen.flow, wb->store());
  ASSERT_TRUE(fwd_result.ok());
  ForwardIndexProjLineage fwd = std::move(*fwd_result);
  NaiveForwardLineage naive(wb->store());

  Random rng(seed * 17 + 3);

  // Targets: every workflow input and a sample of processor outputs.
  struct Target {
    PortRef port;
    Value value;
  };
  std::vector<Target> targets;
  for (const auto& [name, value] : gen.inputs) {
    targets.push_back({PortRef{kWorkflowProcessor, name}, value});
  }
  for (const workflow::Processor& proc : gen.flow->processors()) {
    for (const workflow::Port& port : proc.outputs) {
      auto it = run->port_values.find(proc.name + ":" + port.name);
      if (it != run->port_values.end() && rng.Bernoulli(0.5)) {
        targets.push_back({PortRef{proc.name, port.name}, it->second});
      }
    }
  }

  std::vector<InterestSet> interests;
  interests.push_back({});
  interests.push_back({kWorkflowProcessor});
  {
    const auto& procs = gen.flow->processors();
    interests.push_back({procs[rng.Uniform(procs.size())].name});
  }

  int checked = 0;
  for (const Target& target : targets) {
    std::vector<Index> indices{Index()};
    std::vector<Index> leaves = target.value.LeafIndices();
    if (!leaves.empty()) {
      indices.push_back(leaves[rng.Uniform(leaves.size())]);
    }
    if (target.value.is_list() && target.value.list_size() > 0) {
      indices.push_back(Index(
          {static_cast<int32_t>(rng.Uniform(target.value.list_size()))}));
    }
    for (const Index& p : indices) {
      for (const InterestSet& interest : interests) {
        auto ni = naive.Query("r0", target.port, p, interest);
        ASSERT_TRUE(ni.ok()) << ni.status().ToString();
        auto ip = fwd.Query("r0", target.port, p, interest);
        ASSERT_TRUE(ip.ok()) << ip.status().ToString();
        ASSERT_EQ(ni->bindings, ip->bindings)
            << "forward divergence at " << target.port.ToString()
            << p.ToString() << " |P|=" << interest.size() << " seed "
            << seed;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwardEquivalenceTest,
                         ::testing::Range<uint64_t>(300, 350));

}  // namespace
}  // namespace provlin::lineage
