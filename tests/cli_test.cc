// The provlin command-line tool, driven in-process.

#include "cli/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/tracing.h"

namespace provlin::cli {
namespace {

class CliTest : public ::testing::Test {
 protected:
  CliTest() {
    // Per-test paths: ctest runs each test in its own process, and
    // concurrent tests sharing one db file race each other.
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    db_path_ = std::string(::testing::TempDir()) + "/cli_" + name + ".db";
    wal_path_ = std::string(::testing::TempDir()) + "/cli_" + name + ".wal";
    std::remove(db_path_.c_str());
    std::remove(wal_path_.c_str());
  }

  int Run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return RunCli(args, out_, err_);
  }

  std::string db_path_;
  std::string wal_path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("usage"), std::string::npos);
  EXPECT_EQ(Run({"frobnicate"}), 2);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
  EXPECT_EQ(Run({}), 2);
}

TEST_F(CliTest, MissingFlagsAreDiagnosed) {
  EXPECT_EQ(Run({"run", "--workflow", "builtin:gk"}), 1);
  EXPECT_NE(err_.str().find("--db"), std::string::npos);
  EXPECT_EQ(Run({"runs"}), 1);
  EXPECT_EQ(Run({"run", "--db"}), 2);  // flag without value
}

TEST_F(CliTest, RunPersistsAndRunsListsIt) {
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:2", "--db",
                 db_path_, "--run", "sweep-1", "--input", "ListSize=3"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("sweep-1 completed"), std::string::npos);
  EXPECT_NE(out_.str().find("RESULT ="), std::string::npos);

  ASSERT_EQ(Run({"runs", "--db", db_path_}), 0) << err_.str();
  EXPECT_EQ(out_.str(), "sweep-1\n");
}

TEST_F(CliTest, LineageBothEnginesAgree) {
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:3", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=4"}),
            0)
      << err_.str();

  ASSERT_EQ(Run({"lineage", "--db", db_path_, "--workflow",
                 "builtin:synthetic:3", "--run", "r0", "--target",
                 "workflow:RESULT", "--index", "2,3", "--focus",
                 "LISTGEN_1"}),
            0)
      << err_.str();
  std::string indexproj_out = out_.str();
  EXPECT_NE(indexproj_out.find("<LISTGEN_1:size[], 4>"), std::string::npos);

  ASSERT_EQ(Run({"lineage", "--db", db_path_, "--workflow",
                 "builtin:synthetic:3", "--run", "r0", "--target",
                 "workflow:RESULT", "--index", "2,3", "--focus", "LISTGEN_1",
                 "--engine", "naive"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("<LISTGEN_1:size[], 4>"), std::string::npos);

  EXPECT_EQ(Run({"lineage", "--db", db_path_, "--workflow",
                 "builtin:synthetic:3", "--run", "r0", "--target",
                 "workflow:RESULT", "--engine", "warp-drive"}),
            1);
}

TEST_F(CliTest, ForwardLineage) {
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:2", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=3"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"lineage", "--db", db_path_, "--workflow",
                 "builtin:synthetic:2", "--run", "r0", "--target",
                 "LISTGEN_1:list", "--index", "2", "--focus", "workflow",
                 "--forward", "true"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("impact of LISTGEN_1:list[2]"),
            std::string::npos);
  EXPECT_NE(out_.str().find("workflow:RESULT"), std::string::npos);
}

TEST_F(CliTest, SqlQuery) {
  // Raw SQL addresses physical tables; pin --shards 1 so 'runs' holds
  // every run regardless of any PROVLIN_TEST_SHARDS environment setting.
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:2", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=2",
                 "--shards", "1"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"sql", "--db", db_path_,
                 "SELECT COUNT(*) FROM runs WHERE run_id = 'r0'"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("count\n1\n"), std::string::npos);
  EXPECT_EQ(Run({"sql", "--db", db_path_, "NOT SQL"}), 1);
  EXPECT_EQ(Run({"sql", "--db", db_path_}), 1);  // missing statement
}

TEST_F(CliTest, DotAndCounts) {
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:1", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=2"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"dot", "--db", db_path_, "--run", "r0"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("digraph"), std::string::npos);

  ASSERT_EQ(Run({"counts", "--db", db_path_, "--run", "r0"}), 0)
      << err_.str();
  // l=1, d=2: 4*2*1 + 2*4 + 6 = 22 dependency records.
  EXPECT_NE(out_.str().find("dependency records: 22"), std::string::npos);
}

TEST_F(CliTest, RunWithWalIsRecoverable) {
  // Pin --shards 1: this test asserts the legacy single-file WAL layout
  // (a sharded store writes the run's rows to a per-shard .shard-k file).
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:1", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=2", "--wal",
                 wal_path_, "--shards", "1"}),
            0)
      << err_.str();
  std::ifstream wal(wal_path_, std::ios::binary);
  ASSERT_TRUE(wal.good());
  wal.seekg(0, std::ios::end);
  EXPECT_GT(wal.tellg(), 0);
}

TEST_F(CliTest, WorkflowFromFile) {
  std::string wf_path = std::string(::testing::TempDir()) + "/cli_wf.txt";
  {
    std::ofstream f(wf_path);
    f << "workflow filetest\n"
      << "in items list(string)\n"
      << "out shouted list(string)\n"
      << "proc shout activity=to_upper\n"
      << "  pin x string\n"
      << "  pout y string\n"
      << "arc workflow:items -> shout:x\n"
      << "arc shout:y -> workflow:shouted\n";
  }
  ASSERT_EQ(Run({"workflow", "--workflow", wf_path}), 0) << err_.str();
  EXPECT_NE(out_.str().find("workflow filetest"), std::string::npos);
  EXPECT_NE(out_.str().find("shout: l=1"), std::string::npos);

  ASSERT_EQ(Run({"run", "--workflow", wf_path, "--db", db_path_, "--run",
                 "f0", "--input", "items=[a,b]"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("shouted = [\"A\",\"B\"]"), std::string::npos);

  EXPECT_EQ(Run({"workflow", "--workflow", "/no/such/file.wf"}), 1);
  EXPECT_EQ(Run({"workflow", "--workflow", "builtin:synthetic:0"}), 1);
}

TEST_F(CliTest, BuiltinGkScenario) {
  ASSERT_EQ(
      Run({"run", "--workflow", "builtin:gk", "--db", db_path_, "--run",
           "gk0", "--input",
           "list_of_geneIDList=[[\"20816\",\"26416\"],[\"328788\"]]"}),
      0)
      << err_.str();
  ASSERT_EQ(Run({"lineage", "--db", db_path_, "--workflow", "builtin:gk",
                 "--run", "gk0", "--target", "workflow:paths_per_gene",
                 "--index", "2", "--focus", "get_pathways_by_genes"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("genes_id_list[2]"), std::string::npos);
  EXPECT_NE(out_.str().find("mmu:328788"), std::string::npos);
}

TEST_F(CliTest, MultiRunLineage) {
  for (int d = 2; d <= 4; ++d) {
    ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:2", "--db",
                   db_path_, "--run", "d" + std::to_string(d), "--input",
                   "ListSize=" + std::to_string(d)}),
              0)
        << err_.str();
  }
  ASSERT_EQ(Run({"lineage", "--db", db_path_, "--workflow",
                 "builtin:synthetic:2", "--run", "d2", "--run", "d3",
                 "--run", "d4", "--target", "workflow:RESULT", "--index",
                 "1,1", "--focus", "LISTGEN_1"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("(3 bindings"), std::string::npos);
}

TEST_F(CliTest, ThreadedBatchLineageMatchesSequential) {
  for (int d = 2; d <= 4; ++d) {
    ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:2", "--db",
                   db_path_, "--run", "d" + std::to_string(d), "--input",
                   "ListSize=" + std::to_string(d)}),
              0)
        << err_.str();
  }
  std::vector<std::string> query = {
      "lineage", "--db", db_path_, "--workflow", "builtin:synthetic:2",
      "--run", "d2", "--run", "d3", "--run", "d4",
      "--target", "workflow:RESULT", "--index", "1,1",
      "--focus", "LISTGEN_1"};
  ASSERT_EQ(Run(query), 0) << err_.str();
  std::string sequential = out_.str();

  query.push_back("--threads");
  query.push_back("4");
  ASSERT_EQ(Run(query), 0) << err_.str();
  std::string batched = out_.str();
  // Same bindings, plus a service-metrics line.
  EXPECT_NE(batched.find("(3 bindings"), std::string::npos) << batched;
  EXPECT_NE(batched.find("service: requests=3"), std::string::npos) << batched;
  for (const char* run : {"d2:", "d3:", "d4:"}) {
    EXPECT_NE(batched.find(run), std::string::npos) << batched;
    EXPECT_NE(sequential.find(run), std::string::npos);
  }
}

TEST_F(CliTest, ExportCommand) {
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:1", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=2"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"export", "--db", db_path_, "--run", "r0"}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("\"opm\": \"1.1\""), std::string::npos);
  EXPECT_NE(out_.str().find("wasGeneratedBy"), std::string::npos);
  EXPECT_EQ(Run({"export", "--db", db_path_, "--run", "ghost"}), 1);
}

TEST_F(CliTest, DiffCommand) {
  ASSERT_EQ(Run({"diff", "--workflow", "builtin:synthetic:1", "--workflow",
                 "builtin:synthetic:2"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("+proc CHAINA_2"), std::string::npos);
  EXPECT_EQ(Run({"diff", "--workflow", "builtin:synthetic:1"}), 1);
}

TEST_F(CliTest, PruneCommand) {
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:1", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=2"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:1", "--db",
                 db_path_, "--run", "r1", "--input", "ListSize=3"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"prune", "--db", db_path_, "--run", "r0"}), 0)
      << err_.str();
  ASSERT_EQ(Run({"runs", "--db", db_path_}), 0);
  EXPECT_EQ(out_.str(), "r1\n");
  EXPECT_EQ(Run({"prune", "--db", db_path_, "--run", "ghost"}), 1);
}

TEST_F(CliTest, ContinueOnErrorRun) {
  std::string wf_path = std::string(::testing::TempDir()) + "/cli_fail.txt";
  {
    std::ofstream f(wf_path);
    f << "workflow failing\n"
      << "in items list(string)\n"
      << "out checked list(string)\n"
      << "proc filter activity=fail_if\n"
      << "  pin x string\n"
      << "  pout y string\n"
      << "  config match=bad\n"
      << "arc workflow:items -> filter:x\n"
      << "arc filter:y -> workflow:checked\n";
  }
  // Without the flag, the run aborts.
  EXPECT_EQ(Run({"run", "--workflow", wf_path, "--db", db_path_, "--run",
                 "r0", "--input", "items=[ok,bad]"}),
            1);
  // With it, the run completes and reports the failure count.
  ASSERT_EQ(Run({"run", "--workflow", wf_path, "--db", db_path_, "--run",
                 "r1", "--input", "items=[ok,bad]", "--continue-on-error",
                 "true"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("1 failed"), std::string::npos);
  EXPECT_NE(out_.str().find("error("), std::string::npos);
}

TEST_F(CliTest, StatsCommandExposesRegistry) {
  ASSERT_EQ(Run({"stats"}), 0) << err_.str();
  // Well-known instruments are pre-registered so a scrape sees every
  // series from the start, even at zero.
  EXPECT_NE(out_.str().find("# TYPE provlin_storage_index_probes counter"),
            std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("provlin_lineage_plan_cache_hits 0"),
            std::string::npos);
  EXPECT_NE(out_.str().find("provlin_service_exec_ms_bucket"),
            std::string::npos);

  ASSERT_EQ(Run({"stats", "--format", "json"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("\"counters\""), std::string::npos)
      << out_.str();
  EXPECT_EQ(Run({"stats", "--format", "xml"}), 1);
}

TEST_F(CliTest, StatsShowsTracerRingAndShardTierGauges) {
  // The tracer-ring health gauges are folded into every scrape
  // (PublishTracingStats), so dropped-span visibility is in the default
  // text output even with tracing off — all series present, at zero.
  ASSERT_EQ(Run({"stats"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("# TYPE provlin_tracing_ring_dropped gauge"),
            std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("provlin_tracing_ring_dropped 0"),
            std::string::npos);
  EXPECT_NE(out_.str().find("provlin_tracing_ring_events 0"),
            std::string::npos);

  // Opening a store registers the per-shard two-tier occupancy gauges
  // (provenance/shard<k>/{hot_rows,segment_bytes}); after a real run
  // the hot tier holds every ingested row.
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:2", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=3"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"stats", "--db", db_path_}), 0) << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("provlin_provenance_shard0_hot_rows"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("provlin_provenance_shard0_segment_bytes"),
            std::string::npos);
}

TEST_F(CliTest, LineageStatsFlagShowsQueryTraffic) {
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:2", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=3"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"lineage", "--db", db_path_, "--workflow",
                 "builtin:synthetic:2", "--run", "r0", "--target",
                 "workflow:RESULT", "--index", "1,1", "--stats", "true"}),
            0)
      << err_.str();
  // The exposition follows the normal lineage output and reflects the
  // query that just ran: probes were counted both by the lineage tier
  // and the storage tier.
  EXPECT_NE(out_.str().find("lineage of workflow:RESULT"),
            std::string::npos);
  EXPECT_NE(out_.str().find("provlin_lineage_queries 1"), std::string::npos)
      << out_.str();
  // The registry's probe total must equal the per-query timing the
  // lineage output reports ("(N bindings, M trace probes, ...").
  std::string text = out_.str();
  size_t bindings_pos = text.find(" bindings, ");
  ASSERT_NE(bindings_pos, std::string::npos) << text;
  size_t probes_begin = bindings_pos + std::string(" bindings, ").size();
  uint64_t timing_probes =
      std::strtoull(text.c_str() + probes_begin, nullptr, 10);
  EXPECT_GT(timing_probes, 0u);
  EXPECT_NE(text.find("provlin_lineage_trace_probes " +
                      std::to_string(timing_probes) + "\n"),
            std::string::npos)
      << text;
}

TEST_F(CliTest, LineageTraceOutWritesChromeTraceJson) {
  std::string trace_path =
      std::string(::testing::TempDir()) + "/cli_trace_out.json";
  std::remove(trace_path.c_str());
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:2", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=3"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"lineage", "--db", db_path_, "--workflow",
                 "builtin:synthetic:2", "--run", "r0", "--target",
                 "workflow:RESULT", "--index", "1,1", "--trace-out",
                 trace_path}),
            0)
      << err_.str();
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << trace_path;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string trace = buf.str();
  EXPECT_NE(trace.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(trace.find("indexproj/query"), std::string::npos) << trace;
  EXPECT_NE(trace.find("trace/find_batch"), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  // Tracing is scoped to the command: the guard disabled it on exit.
  EXPECT_FALSE(common::tracing::Tracer::Global().enabled());
  std::remove(trace_path.c_str());
}

TEST_F(CliTest, ExplainCommandPrintsPerStepCosts) {
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:2", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=3"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"explain", "--db", db_path_, "--workflow",
                 "builtin:synthetic:2", "--run", "r0", "--target",
                 "workflow:RESULT", "--index", "1,1"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("IndexProj plan:"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("step  0"), std::string::npos) << out_.str();
  EXPECT_NE(out_.str().find("probes="), std::string::npos);
  EXPECT_NE(out_.str().find("descents="), std::string::npos);
  EXPECT_NE(out_.str().find("bindings,"), std::string::npos);
  // Explain still requires the full lineage argument set.
  EXPECT_EQ(Run({"explain", "--db", db_path_}), 1);
  EXPECT_NE(err_.str().find("--workflow"), std::string::npos);
}

TEST_F(CliTest, ExplainShowsGeneratedTraceQueries) {
  ASSERT_EQ(Run({"run", "--workflow", "builtin:synthetic:2", "--db",
                 db_path_, "--run", "r0", "--input", "ListSize=2"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"lineage", "--db", db_path_, "--workflow",
                 "builtin:synthetic:2", "--run", "r0", "--target",
                 "workflow:RESULT", "--index", "1,1", "--focus", "LISTGEN_1",
                 "--explain", "true"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("plan (1 trace queries"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("Q(LISTGEN_1, size, [])"), std::string::npos)
      << out_.str();
}

}  // namespace
}  // namespace provlin::cli
