// Write-ahead log: framing, CRC protection, torn-write recovery, and
// end-to-end crash-safe provenance capture.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <fstream>

#include "lineage/naive_lineage.h"
#include "provenance/trace_store.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::storage {
namespace {

std::string TempPath(const char* name) {
  std::string path = std::string(::testing::TempDir()) + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);  // standard check value
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

TEST(Wal, AppendAndReplay) {
  std::string path = TempPath("wal_basic.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append("first").ok());
    ASSERT_TRUE(wal->Append("").ok());  // empty payloads are legal
    ASSERT_TRUE(wal->Append("third record").ok());
    EXPECT_EQ(wal->records_appended(), 3u);
  }
  auto records = WriteAheadLog::Replay(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(*records,
            (std::vector<std::string>{"first", "", "third record"}));
}

TEST(Wal, AppendIsDurableAcrossReopen) {
  std::string path = TempPath("wal_reopen.log");
  {
    auto wal = *WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.Append("one").ok());
  }
  {
    auto wal = *WriteAheadLog::Open(path);  // append mode
    ASSERT_TRUE(wal.Append("two").ok());
  }
  auto records = *WriteAheadLog::Replay(path);
  EXPECT_EQ(records, (std::vector<std::string>{"one", "two"}));
}

TEST(Wal, TornTailRecordIsDropped) {
  std::string path = TempPath("wal_torn.log");
  {
    auto wal = *WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.Append("intact").ok());
    ASSERT_TRUE(wal.Append("to be torn").ok());
  }
  // Simulate a crash mid-append: cut the last 4 bytes.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() - 4));
  out.close();

  auto records = *WriteAheadLog::Replay(path);
  EXPECT_EQ(records, (std::vector<std::string>{"intact"}));
}

TEST(Wal, CorruptPayloadIsRejectedByCrc) {
  std::string path = TempPath("wal_corrupt.log");
  {
    auto wal = *WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.Append("good one").ok());
    ASSERT_TRUE(wal.Append("bad one!").ok());
  }
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  // Flip a byte inside the second payload.
  f.seekp(-3, std::ios::end);
  f.put('X');
  f.close();

  auto records = *WriteAheadLog::Replay(path);
  EXPECT_EQ(records, (std::vector<std::string>{"good one"}));
}

TEST(Wal, ReplayMissingFileFails) {
  EXPECT_FALSE(WriteAheadLog::Replay(TempPath("wal_missing.log")).ok());
}

TEST(WalDurability, CrashedCaptureSessionIsRecoverable) {
  std::string path = TempPath("wal_capture.log");

  // Capture a synthetic run with the WAL attached, then "crash": throw
  // the in-memory database away and rebuild everything from the log.
  {
    auto wb = std::move(*testbed::Workbench::Synthetic(3));
    auto wal = *WriteAheadLog::Open(path);
    wb->store()->AttachWal(&wal);
    ASSERT_TRUE(wb->RunSynthetic(4, "r0").ok());
    EXPECT_GT(wal.records_appended(), 0u);
  }  // workbench (and its database) destroyed here

  Database recovered;
  auto applied = provenance::TraceStore::ReplayWal(path, &recovered);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GT(*applied, 0u);

  // The recovered trace answers the same lineage queries.
  auto store = *provenance::TraceStore::Open(&recovered);
  lineage::NaiveLineage naive(&store);
  auto answer = naive.Query(
      "r0", {workflow::kWorkflowProcessor, "RESULT"}, Index({1, 2}),
      {testbed::kListGen});
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->bindings.size(), 1u);
  EXPECT_EQ(answer->bindings[0].value_repr, "4");

  // And the recovered row counts match a clean capture of the same run.
  auto wb2 = std::move(*testbed::Workbench::Synthetic(3));
  ASSERT_TRUE(wb2->RunSynthetic(4, "r0").ok());
  auto clean = *wb2->store()->CountRecords("r0");
  auto replayed = *store.CountRecords("r0");
  EXPECT_EQ(replayed.xform_rows, clean.xform_rows);
  EXPECT_EQ(replayed.xfer_rows, clean.xfer_rows);
  EXPECT_EQ(replayed.value_rows, clean.value_rows);
}

TEST(WalDurability, TornCaptureKeepsCommittedPrefix) {
  std::string path = TempPath("wal_capture_torn.log");
  {
    auto wb = std::move(*testbed::Workbench::Synthetic(2));
    auto wal = *WriteAheadLog::Open(path);
    wb->store()->AttachWal(&wal);
    ASSERT_TRUE(wb->RunSynthetic(3, "r0").ok());
  }
  // Tear the file mid-way.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();

  Database recovered;
  auto applied = provenance::TraceStore::ReplayWal(path, &recovered);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GT(*applied, 0u);  // a committed prefix survives
  // The recovered tables are internally consistent.
  for (const std::string& name : recovered.TableNames()) {
    EXPECT_TRUE((*recovered.GetTable(name))->CheckIndexConsistency().ok());
  }
}

}  // namespace
}  // namespace provlin::storage
