// Write-ahead log: framing, CRC protection, torn-write recovery, and
// end-to-end crash-safe provenance capture.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <set>
#include <thread>

#include "lineage/naive_lineage.h"
#include "provenance/schema.h"
#include "provenance/trace_store.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::storage {
namespace {

std::string TempPath(const char* name) {
  std::string path = std::string(::testing::TempDir()) + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);  // standard check value
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

TEST(Wal, AppendAndReplay) {
  std::string path = TempPath("wal_basic.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append("first").ok());
    ASSERT_TRUE(wal->Append("").ok());  // empty payloads are legal
    ASSERT_TRUE(wal->Append("third record").ok());
    EXPECT_EQ(wal->records_appended(), 3u);
  }
  auto records = WriteAheadLog::Replay(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(*records,
            (std::vector<std::string>{"first", "", "third record"}));
}

TEST(Wal, AppendIsDurableAcrossReopen) {
  std::string path = TempPath("wal_reopen.log");
  {
    auto wal = *WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.Append("one").ok());
  }
  {
    auto wal = *WriteAheadLog::Open(path);  // append mode
    ASSERT_TRUE(wal.Append("two").ok());
  }
  auto records = *WriteAheadLog::Replay(path);
  EXPECT_EQ(records, (std::vector<std::string>{"one", "two"}));
}

TEST(Wal, TornTailRecordIsDropped) {
  std::string path = TempPath("wal_torn.log");
  {
    auto wal = *WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.Append("intact").ok());
    ASSERT_TRUE(wal.Append("to be torn").ok());
  }
  // Simulate a crash mid-append: cut the last 4 bytes.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() - 4));
  out.close();

  auto records = *WriteAheadLog::Replay(path);
  EXPECT_EQ(records, (std::vector<std::string>{"intact"}));
}

TEST(Wal, CorruptPayloadIsRejectedByCrc) {
  std::string path = TempPath("wal_corrupt.log");
  {
    auto wal = *WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.Append("good one").ok());
    ASSERT_TRUE(wal.Append("bad one!").ok());
  }
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  // Flip a byte inside the second payload.
  f.seekp(-3, std::ios::end);
  f.put('X');
  f.close();

  auto records = *WriteAheadLog::Replay(path);
  EXPECT_EQ(records, (std::vector<std::string>{"good one"}));
}

TEST(Wal, ReplayMissingFileFails) {
  EXPECT_FALSE(WriteAheadLog::Replay(TempPath("wal_missing.log")).ok());
}

TEST(WalDurability, CrashedCaptureSessionIsRecoverable) {
  std::string path = TempPath("wal_capture.log");

  // Capture a synthetic run with the WAL attached, then "crash": throw
  // the in-memory database away and rebuild everything from the log.
  {
    auto wb = std::move(*testbed::Workbench::Synthetic(3));
    auto wal = *WriteAheadLog::Open(path);
    wb->store()->AttachWal(&wal);
    ASSERT_TRUE(wb->RunSynthetic(4, "r0").ok());
    EXPECT_GT(wal.records_appended(), 0u);
  }  // workbench (and its database) destroyed here

  Database recovered;
  auto applied = provenance::TraceStore::ReplayWal(path, &recovered);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GT(*applied, 0u);

  // The recovered trace answers the same lineage queries.
  auto store = *provenance::TraceStore::Open(&recovered);
  lineage::NaiveLineage naive(&store);
  auto answer = naive.Query(lineage::LineageRequest::SingleRun("r0", {workflow::kWorkflowProcessor, "RESULT"}, Index({1, 2}),
      {testbed::kListGen}));
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->bindings.size(), 1u);
  EXPECT_EQ(answer->bindings[0].value_repr, "4");

  // And the recovered row counts match a clean capture of the same run.
  auto wb2 = std::move(*testbed::Workbench::Synthetic(3));
  ASSERT_TRUE(wb2->RunSynthetic(4, "r0").ok());
  auto clean = *wb2->store()->CountRecords("r0");
  auto replayed = *store.CountRecords("r0");
  EXPECT_EQ(replayed.xform_rows, clean.xform_rows);
  EXPECT_EQ(replayed.xfer_rows, clean.xfer_rows);
  EXPECT_EQ(replayed.value_rows, clean.value_rows);
}

TEST(WalDurability, TornCaptureKeepsCommittedPrefix) {
  std::string path = TempPath("wal_capture_torn.log");
  {
    auto wb = std::move(*testbed::Workbench::Synthetic(2));
    auto wal = *WriteAheadLog::Open(path);
    wb->store()->AttachWal(&wal);
    ASSERT_TRUE(wb->RunSynthetic(3, "r0").ok());
  }
  // Tear the file mid-way.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();

  Database recovered;
  auto applied = provenance::TraceStore::ReplayWal(path, &recovered);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GT(*applied, 0u);  // a committed prefix survives
  // The recovered tables are internally consistent.
  for (const std::string& name : recovered.TableNames()) {
    EXPECT_TRUE((*recovered.GetTable(name))->CheckIndexConsistency().ok());
  }
}

// ---------------------------------------------------------------------------
// Sharded WAL layout (DESIGN.md §11): per-shard files + manifest,
// replay-merge, DeleteRun replay-skip confined to the owning shard's
// log, and recovery after a real SIGKILL mid-ingest.
// ---------------------------------------------------------------------------

/// Base + every per-shard file + manifest for a fresh test.
std::string TempWalBase(const char* name, size_t max_shards = 8) {
  std::string base = TempPath(name);
  for (size_t k = 1; k < max_shards; ++k) {
    std::remove(ShardWalPath(base, k).c_str());
  }
  std::remove(WalManifestPath(base).c_str());
  return base;
}

size_t FileSize(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  return f.good() ? static_cast<size_t>(f.tellg()) : 0;
}

TEST(ShardedWal, PerShardFilesReplayIntoOneDatabase) {
  std::string base = TempWalBase("wal_sharded.log");
  constexpr size_t kShards = 4;
  std::vector<std::string> runs;
  for (int r = 0; r < 8; ++r) runs.push_back("sw" + std::to_string(r));

  {
    provenance::TraceStoreOptions options;
    options.shards = kShards;
    auto wb = std::move(*testbed::Workbench::Synthetic(3, options));
    ASSERT_TRUE(wb->store()->AttachWalFiles(base).ok());
    for (const std::string& run : runs) {
      ASSERT_TRUE(wb->RunSynthetic(3, run).ok()) << run;
    }
    // Every shard that owns a run logged to its own file; the manifest
    // records the count.
    std::set<size_t> owners;
    for (const std::string& run : runs) {
      owners.insert(wb->store()->ShardOfRun(run));
    }
    ASSERT_GE(owners.size(), 2u) << "test ids all hash alike; pick others";
    for (size_t k : owners) {
      std::string path = k == 0 ? base : ShardWalPath(base, k);
      EXPECT_GT(FileSize(path), 0u) << "shard " << k;
    }
    auto manifest = ReadWalManifest(base);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(*manifest, kShards);
  }  // crash: the in-memory database dies with the workbench

  Database recovered;
  auto applied = provenance::TraceStore::ReplayWal(base, &recovered);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GT(*applied, 0u);
  auto store = *provenance::TraceStore::Open(&recovered);
  EXPECT_EQ(store.shard_count(), kShards);
  EXPECT_EQ(store.ListRuns()->size(), runs.size());

  // The recovered trace answers lineage identically to a clean capture.
  auto clean_wb = std::move(*testbed::Workbench::Synthetic(3));
  ASSERT_TRUE(clean_wb->RunSynthetic(3, runs[0]).ok());
  auto want = clean_wb->Naive().Query(lineage::LineageRequest::SingleRun(runs[0], {workflow::kWorkflowProcessor, "RESULT"}, Index({1}),
      {testbed::kListGen}));
  ASSERT_TRUE(want.ok());
  lineage::NaiveLineage naive(&store);
  for (const std::string& run : runs) {
    auto got = naive.Query(lineage::LineageRequest::SingleRun(run, {workflow::kWorkflowProcessor, "RESULT"},
                           Index({1}), {testbed::kListGen}));
    ASSERT_TRUE(got.ok()) << run;
    ASSERT_EQ(got->bindings.size(), want->bindings.size()) << run;
    for (size_t i = 0; i < want->bindings.size(); ++i) {
      EXPECT_EQ(got->bindings[i].value_repr, want->bindings[i].value_repr);
    }
  }

  // Replaying into an explicitly different shard count reshards on the
  // fly — the logical trace is unchanged.
  Database resharded;
  ASSERT_TRUE(
      provenance::TraceStore::ReplayWal(base, &resharded, 2).ok());
  auto store2 = *provenance::TraceStore::Open(&resharded);
  EXPECT_EQ(store2.shard_count(), 2u);
  EXPECT_EQ(store2.ListRuns()->size(), runs.size());
  auto counts4 = *store.CountAllRecords();
  auto counts2 = *store2.CountAllRecords();
  EXPECT_EQ(counts2.xform_rows, counts4.xform_rows);
  EXPECT_EQ(counts2.xfer_rows, counts4.xfer_rows);
  EXPECT_EQ(counts2.value_rows, counts4.value_rows);
}

TEST(ShardedWal, DeleteRunLogsOnlyToOwningShardAndReplaySkips) {
  std::string base = TempWalBase("wal_sharded_delete.log");
  provenance::TraceStoreOptions options;
  options.shards = 4;

  std::vector<std::string> runs = {"del0", "del1", "del2", "del3", "del4"};
  size_t victim_shard = 0;
  std::vector<size_t> sizes_before(4, 0);
  {
    auto wb = std::move(*testbed::Workbench::Synthetic(2, options));
    ASSERT_TRUE(wb->store()->AttachWalFiles(base).ok());
    for (const std::string& run : runs) {
      ASSERT_TRUE(wb->RunSynthetic(2, run).ok());
    }
    victim_shard = wb->store()->ShardOfRun("del2");
    for (size_t k = 0; k < 4; ++k) {
      sizes_before[k] = FileSize(k == 0 ? base : ShardWalPath(base, k));
    }
    ASSERT_TRUE(wb->store()->DeleteRun("del2").ok());
    // The deletion record landed in the owning shard's log only.
    for (size_t k = 0; k < 4; ++k) {
      size_t now = FileSize(k == 0 ? base : ShardWalPath(base, k));
      if (k == victim_shard) {
        EXPECT_GT(now, sizes_before[k]) << "owner shard " << k;
      } else {
        EXPECT_EQ(now, sizes_before[k]) << "bystander shard " << k;
      }
    }
  }

  Database recovered;
  ASSERT_TRUE(provenance::TraceStore::ReplayWal(base, &recovered).ok());
  auto store = *provenance::TraceStore::Open(&recovered);
  auto listed = *store.ListRuns();
  EXPECT_EQ(listed.size(), runs.size() - 1);
  for (const std::string& run : listed) EXPECT_NE(run, "del2");
  // The deleted run's rows are gone, the survivors' rows are intact.
  EXPECT_FALSE(store.RunWorkflow("del2").ok());
  for (const char* run : {"del0", "del1", "del3", "del4"}) {
    EXPECT_GT(store.CountRecords(run)->TotalDependencyRecords(), 0u) << run;
  }
}

TEST(ShardedWalCrash, SigkillMidIngestKeepsCommittedPrefix) {
  std::string base = TempWalBase("wal_sharded_kill.log");
  constexpr size_t kShards = 4;

  pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: a 4-shard store with async writer threads and per-shard
    // WALs, ingesting xform rows across many runs until killed. Exit
    // codes mark setup failures; the parent SIGKILLs us mid-loop.
    Database db;
    provenance::TraceStoreOptions options;
    options.shards = kShards;
    options.async_ingest = true;
    auto store = provenance::TraceStore::Open(&db, options);
    if (!store.ok()) _exit(2);
    if (!store->AttachWalFiles(base).ok()) _exit(3);
    for (int64_t i = 0;; ++i) {
      provenance::XformRecord rec;
      rec.run = store->Intern("kill" + std::to_string(i % 16));
      rec.event_id = i;
      rec.processor = store->Intern("P" + std::to_string(i % 3));
      rec.has_out = true;
      rec.out_port = store->Intern("y");
      rec.out_index = Index({static_cast<int32_t>(i % 5)});
      rec.out_value = i;
      if (!store->InsertXform(rec).ok()) _exit(4);
    }
  }

  // Parent: wait for every shard the child's run ids hash to (all 4 of
  // kill0..kill15, checked below) to have durable records, then kill.
  std::set<size_t> owners;
  for (int i = 0; i < 16; ++i) {
    owners.insert(provenance::RunShardHash("kill" + std::to_string(i)) %
                  kShards);
  }
  auto covered = [&] {
    for (size_t k : owners) {
      if (FileSize(k == 0 ? base : ShardWalPath(base, k)) == 0) return false;
    }
    return true;
  };
  // Cross-process: the only observable signal is the child's WAL files
  // growing on disk, so polling is the synchronization.
  for (int spins = 0; !covered() && spins < 2000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));  // lint: allow(sleep)
  }
  EXPECT_TRUE(covered()) << "child never populated every shard WAL";
  kill(pid, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited on its own: setup "
                                    << "failure code "
                                    << (WIFEXITED(wstatus)
                                            ? WEXITSTATUS(wstatus)
                                            : -1);

  // Recovery: every shard file replays its committed prefix (torn tail
  // records are dropped per file), the merged database is internally
  // consistent, and the recorded rows are queryable.
  Database recovered;
  auto applied = provenance::TraceStore::ReplayWal(base, &recovered);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GT(*applied, 0u);
  for (const std::string& name : recovered.TableNames()) {
    EXPECT_TRUE((*recovered.GetTable(name))->CheckIndexConsistency().ok())
        << name;
  }
  auto store = *provenance::TraceStore::Open(&recovered);
  EXPECT_EQ(store.shard_count(), kShards);
  auto counts = *store.CountAllRecords();
  EXPECT_GT(counts.xform_rows, 0u);
}

}  // namespace
}  // namespace provlin::storage
