// Text (de)serialization of workflow definitions.

#include "workflow/workflow_io.h"

#include <gtest/gtest.h>

#include "testbed/gk_workflow.h"
#include "testbed/synthetic.h"
#include "workflow/validate.h"

namespace provlin::workflow {
namespace {

TEST(WorkflowIo, RoundTripsGkWorkflow) {
  auto flow = *testbed::MakeGkWorkflow();
  std::string text = SerializeDataflow(*flow);
  auto parsed = ParseDataflow(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(Validate(**parsed).ok());
  EXPECT_EQ((*parsed)->name(), flow->name());
  EXPECT_EQ((*parsed)->num_processors(), flow->num_processors());
  EXPECT_EQ((*parsed)->arcs().size(), flow->arcs().size());
  // Second serialization is identical (canonical form).
  EXPECT_EQ(SerializeDataflow(**parsed), text);
}

TEST(WorkflowIo, RoundTripsSyntheticWorkflow) {
  auto flow = *testbed::MakeSyntheticWorkflow(5);
  std::string text = SerializeDataflow(*flow);
  auto parsed = ParseDataflow(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(SerializeDataflow(**parsed), text);
}

TEST(WorkflowIo, ParsesHandWrittenDefinition) {
  const char* text = R"(# a comment
workflow demo
in items list(string)
out shouted list(string)

proc shout activity=to_upper
  pin x string
  pout y string
proc tag activity=prefix
  pin x string
  pout y string
  config prefix=>>
arc workflow:items -> shout:x
arc shout:y -> tag:x
arc tag:y -> workflow:shouted
)";
  auto flow = ParseDataflow(text);
  ASSERT_TRUE(flow.ok()) << flow.status().ToString();
  EXPECT_TRUE(Validate(**flow).ok());
  EXPECT_EQ((*flow)->FindProcessor("tag")->config.at("prefix"), ">>");
}

TEST(WorkflowIo, ParsesDotStrategy) {
  const char* text = R"(workflow d
in a list(string)
in b list(string)
out o list(string)
proc zip activity=concat2 strategy=dot
  pin x1 string
  pin x2 string
  pout y string
arc workflow:a -> zip:x1
arc workflow:b -> zip:x2
arc zip:y -> workflow:o
)";
  auto flow = ParseDataflow(text);
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ((*flow)->FindProcessor("zip")->strategy, IterationStrategy::kDot);
}

TEST(WorkflowIo, ParsesDefaults) {
  const char* text = R"(workflow d
in a list(string)
out o list(string)
proc p activity=concat2
  pin x1 string
  pin x2 string
  pout y string
  default x2 "suffix value"
arc workflow:a -> p:x1
arc p:y -> workflow:o
)";
  auto flow = ParseDataflow(text);
  ASSERT_TRUE(flow.ok()) << flow.status().ToString();
  EXPECT_EQ((*flow)->FindProcessor("p")->defaults.at("x2"),
            Value::Str("suffix value"));
}

TEST(WorkflowIo, RejectsMissingWorkflowHeader) {
  EXPECT_FALSE(ParseDataflow("in a list(string)\n").ok());
  EXPECT_FALSE(ParseDataflow("").ok());
}

TEST(WorkflowIo, RejectsUnknownKeyword) {
  EXPECT_FALSE(ParseDataflow("workflow w\nbogus line here\n").ok());
}

TEST(WorkflowIo, RejectsBadType) {
  EXPECT_FALSE(ParseDataflow("workflow w\nin a list(strin)\n").ok());
}

TEST(WorkflowIo, RejectsPortOutsideProc) {
  EXPECT_FALSE(ParseDataflow("workflow w\npin x string\n").ok());
}

TEST(WorkflowIo, RejectsMalformedArc) {
  EXPECT_FALSE(ParseDataflow("workflow w\narc a:b c:d\n").ok());
  EXPECT_FALSE(ParseDataflow("workflow w\narc a -> b\n").ok());
}

TEST(WorkflowIo, RejectsDuplicateIncomingArc) {
  const char* text = R"(workflow w
proc p activity=identity
  pin x string
  pout y string
arc p:y -> p:x
arc p:y -> p:x
)";
  EXPECT_FALSE(ParseDataflow(text).ok());
}

}  // namespace
}  // namespace provlin::workflow
