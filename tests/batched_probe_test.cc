// Sanitizer-focused coverage of the batched probe layer: many threads
// hammering one shared ProbeMemo (the TSan target — the memo is the only
// cross-thread mutable state the batch service adds), and the RowView
// lifetime rules of zero-copy selects (the ASan/UBSan target — views
// must stay valid exactly until the next table write).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "lineage/naive_lineage.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/service.h"
#include "provenance/trace_store.h"
#include "storage/query.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::provenance {
namespace {

using testbed::Workbench;

// ---------------------------------------------------------------------------
// ProbeMemo scoping.
// ---------------------------------------------------------------------------

TEST(ProbeMemoScope, InstallsAndRestoresNested) {
  EXPECT_EQ(ProbeMemoScope::Active(), nullptr);
  ProbeMemo outer, inner;
  {
    ProbeMemoScope a(&outer);
    EXPECT_EQ(ProbeMemoScope::Active(), &outer);
    {
      ProbeMemoScope b(&inner);
      EXPECT_EQ(ProbeMemoScope::Active(), &inner);
    }
    EXPECT_EQ(ProbeMemoScope::Active(), &outer);
  }
  EXPECT_EQ(ProbeMemoScope::Active(), nullptr);
}

TEST(ProbeMemoScope, IsThreadLocal) {
  ProbeMemo memo;
  ProbeMemoScope scope(&memo);
  ASSERT_EQ(ProbeMemoScope::Active(), &memo);
  ProbeMemo* seen_on_other_thread = &memo;
  std::thread t([&] { seen_on_other_thread = ProbeMemoScope::Active(); });
  t.join();
  // The scope installed here must not leak into other threads.
  EXPECT_EQ(seen_on_other_thread, nullptr);
}

// ---------------------------------------------------------------------------
// Shared memo under concurrency: N threads issue overlapping probe sets
// against one memo. Every thread must see answers identical to the
// unmemoized reference, and the hit/lookup counters must add up.
// ---------------------------------------------------------------------------

TEST(ProbeMemoConcurrency, ManyThreadsShareOneMemoSafely) {
  auto wb = std::move(*Workbench::Synthetic(12));
  ASSERT_TRUE(wb->RunSynthetic(6, "r0").ok());
  const TraceStore& store = *wb->store();

  auto run = store.LookupSymbol("r0");
  ASSERT_TRUE(run.has_value());

  // Probe set shared by all threads: every producing port of the chain.
  std::vector<PortProbe> probes;
  for (const char* proc :
       {"CHAINA_1", "CHAINA_2", "CHAINA_3", "CHAINB_1", "LISTGEN_1"}) {
    auto p = store.LookupSymbol(proc);
    auto y = store.LookupSymbol("y");
    ASSERT_TRUE(p.has_value()) << proc;
    ASSERT_TRUE(y.has_value());
    for (const Index& q : {Index(), Index({1}), Index({2, 0})}) {
      probes.push_back(PortProbe{*run, *p, *y, q});
    }
  }

  // Unmemoized reference, computed up front on this thread.
  auto reference = store.FindProducingBatch(probes);
  ASSERT_TRUE(reference.ok());

  auto xform_key = [](const XformRecord& r) {
    return std::make_tuple(r.run, r.event_id, r.processor, r.has_in, r.in_port,
                           r.in_index, r.in_value, r.has_out, r.out_port,
                           r.out_index, r.out_value);
  };

  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  ProbeMemo memo;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ProbeMemoScope scope(&memo);
      for (int round = 0; round < kRounds; ++round) {
        // Rotate the probe order per thread/round so threads race on
        // different memo keys at the same time.
        std::vector<PortProbe> mine = probes;
        std::rotate(mine.begin(),
                    mine.begin() + static_cast<long>(
                                       static_cast<size_t>(t + round) %
                                       mine.size()),
                    mine.end());
        auto got = store.FindProducingBatch(mine);
        if (!got.ok() || got->size() != mine.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < mine.size(); ++i) {
          // Locate the reference slot for this (rotated) probe.
          size_t ref_slot =
              (i + static_cast<size_t>(t + round) % probes.size()) %
              probes.size();
          const auto& expect = (*reference)[ref_slot];
          const auto& actual = (*got)[i];
          if (actual.size() != expect.size()) {
            mismatches.fetch_add(1);
            continue;
          }
          for (size_t r = 0; r < expect.size(); ++r) {
            if (xform_key(actual[r]) != xform_key(expect[r])) {
              mismatches.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Every probe of every round consulted the memo. Concurrent first
  // resolutions of one key may each miss (both looked up before either
  // inserted), but a thread's own first round fills its view of the
  // memo, so misses are bounded by kThreads * |probes|.
  uint64_t total = static_cast<uint64_t>(kThreads) * kRounds * probes.size();
  EXPECT_EQ(memo.lookups(), total);
  EXPECT_GE(memo.hits(),
            total - static_cast<uint64_t>(kThreads) * probes.size());
  EXPECT_LT(memo.hits(), total);
}

// ---------------------------------------------------------------------------
// Service-level memo: duplicate requests in one batch are answered once
// physically, identically logically.
// ---------------------------------------------------------------------------

TEST(ServiceProbeMemo, DuplicateRequestsHitTheMemo) {
  auto wb = std::move(*Workbench::Synthetic(15));
  ASSERT_TRUE(wb->RunSynthetic(5, "r0").ok());
  const lineage::LineageEngine* naive = wb->Engine("naive");
  ASSERT_NE(naive, nullptr);

  lineage::LineageRequest req = lineage::LineageRequest::SingleRun(
      "r0", {workflow::kWorkflowProcessor, "RESULT"}, Index({1}),
      {testbed::kListGen});
  auto expected = naive->Query(req);
  ASSERT_TRUE(expected.ok());

  lineage::ServiceOptions options;
  options.num_threads = 4;
  options.group_same_plan = false;  // duplicates land on distinct workers
  options.dedupe_probes = true;
  lineage::LineageService service(options);

  std::vector<lineage::ServiceRequest> batch(
      32, lineage::ServiceRequest{naive, req});
  auto responses = service.ExecuteBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (const auto& resp : responses) {
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.answer.bindings, expected->bindings);
  }
  lineage::ServiceMetrics m = service.metrics();
  EXPECT_GT(m.probe_memo_lookups, 0u);
  EXPECT_GT(m.probe_memo_hits, 0u);
  // 32 identical requests on 4 workers: concurrent first resolutions can
  // miss, so the floor is (32 - num_threads) of every 32 probes hitting.
  EXPECT_GE(m.probe_memo_hits * 32, m.probe_memo_lookups * 28);

  // With dedupe off the same batch issues every probe physically and the
  // memo counters stay zero — but answers do not change.
  options.dedupe_probes = false;
  lineage::LineageService undeduped(options);
  auto responses2 = undeduped.ExecuteBatch(batch);
  for (const auto& resp : responses2) {
    ASSERT_TRUE(resp.status.ok());
    EXPECT_EQ(resp.answer.bindings, expected->bindings);
  }
  lineage::ServiceMetrics m2 = undeduped.metrics();
  EXPECT_EQ(m2.probe_memo_lookups, 0u);
  EXPECT_EQ(m2.probe_memo_hits, 0u);
  EXPECT_GT(m2.trace_descents, m.trace_descents);
}

// ---------------------------------------------------------------------------
// RowView lifetimes: borrowed rows are the table's own storage, valid
// until the next write. ASan/UBSan verify every dereference below.
// ---------------------------------------------------------------------------

TEST(RowViewLifetime, ViewsStayValidAcrossReadsAndAcrossBatches) {
  storage::Schema schema({{"k", storage::DatumKind::kString},
                          {"v", storage::DatumKind::kInt}});
  storage::Table table("t", schema);
  ASSERT_TRUE(
      table.CreateIndex({"by_k", {"k"}, storage::IndexType::kBTree}).ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(table
                    .Insert({storage::Datum("k" + std::to_string(i % 8)),
                             storage::Datum(int64_t{i})})
                    .ok());
  }

  storage::SelectOptions opts;
  opts.zero_copy = true;
  std::vector<storage::SelectQuery> queries(8);
  for (int i = 0; i < 8; ++i) {
    queries[static_cast<size_t>(i)].equals = {
        {"k", storage::Datum("k" + std::to_string(i))}};
  }
  auto results = storage::ExecuteMultiSelect(table, queries, opts);
  ASSERT_TRUE(results.ok());

  // Reads (even other selects) do not invalidate borrowed views.
  int64_t sum = 0;
  for (const storage::SelectResult& res : *results) {
    ASSERT_TRUE(res.zero_copy);
    for (size_t r = 0; r < res.num_rows(); ++r) {
      storage::RowView view = res.ViewAt(r);
      ASSERT_TRUE(view.valid());
      sum += view[1].AsInt();
      auto again = storage::ExecuteSelect(table, queries[0], opts);
      ASSERT_TRUE(again.ok());
    }
  }
  EXPECT_EQ(sum, 63 * 64 / 2);

  // After a write, re-issued queries hand out fresh (valid) views; the
  // rule is "consume views before mutating", which this test obeys by
  // never touching pre-write views again.
  ASSERT_TRUE(
      table.Insert({storage::Datum("k0"), storage::Datum(int64_t{1000})}).ok());
  auto after = storage::ExecuteSelect(table, queries[0], opts);
  ASSERT_TRUE(after.ok());
  int64_t k0_sum = 0;
  for (size_t r = 0; r < after->num_rows(); ++r) {
    k0_sum += after->ViewAt(r).row()[1].AsInt();
  }
  EXPECT_EQ(k0_sum, 0 + 8 + 16 + 24 + 32 + 40 + 48 + 56 + 1000);
}

}  // namespace
}  // namespace provlin::provenance
