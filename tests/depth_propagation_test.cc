// Alg. 1 PropagateDepths: static depths, mismatches, iteration levels.

#include "workflow/depth_propagation.h"

#include <gtest/gtest.h>

#include "workflow/builder.h"

namespace provlin::workflow {
namespace {

TEST(PropagateDepths, SimpleChainPropagatesInputDepth) {
  DataflowBuilder b("chain");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("p")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x");
  b.Arc("p:y", "workflow:out");
  auto flow = *b.Build();

  auto depths = PropagateDepths(*flow);
  ASSERT_TRUE(depths.ok());
  const ProcessorDepths& pd = depths->ForProcessor("p");
  EXPECT_EQ(pd.input_depths, (std::vector<int>{1}));
  EXPECT_EQ(pd.input_deltas, (std::vector<int>{1}));
  EXPECT_EQ(pd.iteration_levels, 1);
  EXPECT_EQ(pd.output_depths, (std::vector<int>{1}));  // dd 0 + l 1
  EXPECT_EQ(*depths->PortDepth({kWorkflowProcessor, "out"}, false), 1);
}

TEST(PropagateDepths, Figure3Example) {
  // The paper's Fig. 3: Q (1->1 per element), R (scalar -> list), P with
  // inputs X1 (δ=1 from Q's list), X2 (δ=0 constant), X3 (δ=1 from R).
  DataflowBuilder b("fig3");
  b.Input("v", PortType::String(1));
  b.Input("w", PortType::String(0));
  b.Input("c", PortType::String(0));
  b.Output("y", PortType::String(2));
  b.Proc("Q")
      .Activity("to_upper")
      .In("X", PortType::String(0))
      .Out("Y", PortType::String(0));
  b.Proc("R")
      .Activity("split_words")
      .In("X", PortType::String(0))
      .Out("Y", PortType::String(1));
  b.Proc("P")
      .Activity("identity3")
      .In("X1", PortType::String(0))
      .In("X2", PortType::String(0))
      .In("X3", PortType::String(0))
      .Out("Y", PortType::String(0));
  b.Arc("workflow:v", "Q:X");
  b.Arc("workflow:w", "R:X");
  b.Arc("Q:Y", "P:X1");
  b.Arc("workflow:c", "P:X2");
  b.Arc("R:Y", "P:X3");
  b.Arc("P:Y", "workflow:y");
  auto flow = *b.Build();

  auto depths = PropagateDepths(*flow);
  ASSERT_TRUE(depths.ok());
  const ProcessorDepths& q = depths->ForProcessor("Q");
  EXPECT_EQ(q.iteration_levels, 1);
  EXPECT_EQ(q.output_depths, (std::vector<int>{1}));
  const ProcessorDepths& r = depths->ForProcessor("R");
  EXPECT_EQ(r.iteration_levels, 0);
  EXPECT_EQ(r.output_depths, (std::vector<int>{1}));
  const ProcessorDepths& p = depths->ForProcessor("P");
  EXPECT_EQ(p.input_deltas, (std::vector<int>{1, 0, 1}));
  EXPECT_EQ(p.iteration_levels, 2);
  // P:Y has dd 0 + l 2 = depth 2 — the paper's y[n,m].
  EXPECT_EQ(p.output_depths, (std::vector<int>{2}));
}

TEST(PropagateDepths, NegativeMismatchContributesNoIteration) {
  // A scalar fed into a list-typed port: δ = -1, wrapped, no iteration.
  DataflowBuilder b("neg");
  b.Input("in", PortType::String(0));
  b.Output("out", PortType::String(1));
  b.Proc("p")
      .Activity("sort_list")
      .In("items", PortType::String(1))
      .Out("items", PortType::String(1));
  b.Arc("workflow:in", "p:items");
  b.Arc("p:items", "workflow:out");
  auto flow = *b.Build();

  auto depths = PropagateDepths(*flow);
  ASSERT_TRUE(depths.ok());
  const ProcessorDepths& pd = depths->ForProcessor("p");
  EXPECT_EQ(pd.input_deltas, (std::vector<int>{-1}));
  EXPECT_EQ(pd.iteration_levels, 0);
  EXPECT_EQ(pd.output_depths, (std::vector<int>{1}));
}

TEST(PropagateDepths, UnconnectedInputTakesDeclaredDepth) {
  DataflowBuilder b("defaulted");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("p")
      .Activity("concat2")
      .In("x1", PortType::String(0))
      .In("x2", PortType::String(0))
      .Default("x2", Value::Str("suffix"))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x1");
  b.Arc("p:y", "workflow:out");
  auto flow = *b.Build();

  auto depths = PropagateDepths(*flow);
  ASSERT_TRUE(depths.ok());
  EXPECT_EQ(depths->ForProcessor("p").input_deltas,
            (std::vector<int>{1, 0}));
  EXPECT_EQ(*depths->InputDelta("p", 0), 1);
  EXPECT_EQ(*depths->InputDelta("p", 1), 0);
  EXPECT_FALSE(depths->InputDelta("p", 5).ok());
  EXPECT_FALSE(depths->InputDelta("ghost", 0).ok());
}

TEST(PropagateDepths, CrossSumsDotMaxes) {
  auto build = [](IterationStrategy strategy) {
    DataflowBuilder b("strategy");
    b.Input("a", PortType::String(1));
    b.Input("bb", PortType::String(1));
    b.Output("out", strategy == IterationStrategy::kCross
                        ? PortType::String(2)
                        : PortType::String(1));
    b.Proc("join")
        .Activity("concat2")
        .Strategy(strategy)
        .In("x1", PortType::String(0))
        .In("x2", PortType::String(0))
        .Out("y", PortType::String(0));
    b.Arc("workflow:a", "join:x1");
    b.Arc("workflow:bb", "join:x2");
    b.Arc("join:y", "workflow:out");
    return *b.Build();
  };

  auto cross = PropagateDepths(*build(IterationStrategy::kCross));
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(cross->ForProcessor("join").iteration_levels, 2);

  auto dot = PropagateDepths(*build(IterationStrategy::kDot));
  ASSERT_TRUE(dot.ok());
  EXPECT_EQ(dot->ForProcessor("join").iteration_levels, 1);
}

TEST(PropagateDepths, DeepMismatchAccumulatesDownstream) {
  // in: depth 2 -> scalar port (δ=2) -> out dd 1 -> depth 3 at next hop.
  DataflowBuilder b("deep");
  b.Input("in", PortType::String(2));
  b.Output("out", PortType::String(3));
  b.Proc("expand")
      .Activity("split_words")
      .In("x", PortType::String(0))
      .Out("words", PortType::String(1));
  b.Proc("upper")
      .Activity("to_upper")
      .In("w", PortType::String(0))
      .Out("u", PortType::String(0));
  b.Arc("workflow:in", "expand:x");
  b.Arc("expand:words", "upper:w");
  b.Arc("upper:u", "workflow:out");
  auto flow = *b.Build();

  auto depths = PropagateDepths(*flow);
  ASSERT_TRUE(depths.ok());
  EXPECT_EQ(depths->ForProcessor("expand").iteration_levels, 2);
  EXPECT_EQ(depths->ForProcessor("expand").output_depths,
            (std::vector<int>{3}));
  EXPECT_EQ(depths->ForProcessor("upper").input_deltas,
            (std::vector<int>{3}));
  EXPECT_EQ(*depths->PortDepth({kWorkflowProcessor, "out"}, false), 3);
}

TEST(PropagateDepths, PortDepthLookupErrors) {
  DataflowBuilder b("chain");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("p")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "p:x");
  b.Arc("p:y", "workflow:out");
  auto flow = *b.Build();
  auto depths = *PropagateDepths(*flow);
  EXPECT_FALSE(depths.PortDepth({kWorkflowProcessor, "zzz"}, true).ok());
  EXPECT_FALSE(depths.PortDepth({"p", "zzz"}, true).ok());
  EXPECT_EQ(*depths.PortDepth({"p", "x"}, true), 1);
  EXPECT_EQ(*depths.PortDepth({"p", "y"}, false), 1);
}

}  // namespace
}  // namespace provlin::workflow
