#include "values/atom.h"

#include <gtest/gtest.h>

namespace provlin {
namespace {

TEST(Atom, KindsAndAccessors) {
  EXPECT_EQ(Atom().kind(), AtomKind::kNull);
  EXPECT_TRUE(Atom().is_null());
  EXPECT_EQ(Atom("x").AsString(), "x");
  EXPECT_EQ(Atom(int64_t{7}).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Atom(2.5).AsDouble(), 2.5);
  EXPECT_TRUE(Atom(true).AsBool());
}

TEST(Atom, KindNames) {
  EXPECT_EQ(AtomKindName(AtomKind::kString), "string");
  EXPECT_EQ(AtomKindName(AtomKind::kInt), "int");
  EXPECT_EQ(AtomKindName(AtomKind::kDouble), "double");
  EXPECT_EQ(AtomKindName(AtomKind::kBool), "bool");
  EXPECT_EQ(AtomKindName(AtomKind::kNull), "null");
}

TEST(Atom, ToStringRendering) {
  EXPECT_EQ(Atom("foo").ToString(), "foo");
  EXPECT_EQ(Atom(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Atom(true).ToString(), "true");
  EXPECT_EQ(Atom(false).ToString(), "false");
  EXPECT_EQ(Atom().ToString(), "null");
}

TEST(Atom, DoubleToStringShortestRoundTrip) {
  EXPECT_EQ(Atom(0.5).ToString(), "0.5");
  EXPECT_EQ(Atom(1.0).ToString(), "1");
  // A value needing many digits still round-trips.
  double v = 0.1 + 0.2;
  std::string s = Atom(v).ToString();
  EXPECT_EQ(std::strtod(s.c_str(), nullptr), v);
}

TEST(Atom, ToLiteralQuotesStrings) {
  EXPECT_EQ(Atom("foo").ToLiteral(), "\"foo\"");
  EXPECT_EQ(Atom("say \"hi\"").ToLiteral(), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(Atom("back\\slash").ToLiteral(), "\"back\\\\slash\"");
  EXPECT_EQ(Atom(int64_t{5}).ToLiteral(), "5");
}

TEST(Atom, Equality) {
  EXPECT_EQ(Atom("a"), Atom("a"));
  EXPECT_NE(Atom("a"), Atom("b"));
  EXPECT_NE(Atom("1"), Atom(int64_t{1}));
  EXPECT_EQ(Atom(), Atom());
}

TEST(Atom, OrderingIsTotalAcrossKinds) {
  // null < string per variant index ordering (null=0, string=1, int=2...).
  EXPECT_LT(Atom(), Atom("a"));
  EXPECT_LT(Atom("a"), Atom("b"));
  EXPECT_LT(Atom(int64_t{1}), Atom(int64_t{2}));
  // Cross-kind ordering is stable (variant index based).
  Atom s("z");
  Atom i(int64_t{0});
  EXPECT_TRUE((s < i) != (i < s));
}

TEST(Atom, HashDistinguishesValues) {
  EXPECT_NE(Atom("a").Hash(), Atom("b").Hash());
  EXPECT_EQ(Atom("a").Hash(), Atom("a").Hash());
  EXPECT_EQ(Atom(int64_t{5}).Hash(), Atom(int64_t{5}).Hash());
}

}  // namespace
}  // namespace provlin
