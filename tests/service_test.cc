// The concurrent batch lineage service: batch answers must be exactly
// the sequential answers, the shared plan cache must build each distinct
// plan once even under contention, and cache maintenance must be safe
// while queries are in flight.

#include "lineage/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "lineage/engine.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "testbed/gk_workflow.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::lineage {
namespace {

using testbed::Workbench;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth_ = std::move(*Workbench::Synthetic(6));
    for (int d = 3; d <= 6; ++d) {
      std::string run = "run-d" + std::to_string(d);
      ASSERT_TRUE(synth_->RunSynthetic(d, run).ok());
      synth_runs_.push_back(run);
    }
    gk_ = std::move(*Workbench::GK());
    ASSERT_TRUE(
        gk_->Run({{"list_of_geneIDList", testbed::GkSampleInput()}}, "gk-run")
            .ok());
  }

  /// 64 requests mixing both engines, both workbenches, several targets
  /// and indices, with heavy key repetition (the plan-cache contention
  /// shape): 8 distinct (engine, plan) groups x 8 repetitions.
  std::vector<ServiceRequest> MixedBatch() {
    PortRef result{kWorkflowProcessor, "RESULT"};
    PortRef per_gene{kWorkflowProcessor, "paths_per_gene"};
    PortRef common{kWorkflowProcessor, "commonPathways"};
    std::vector<ServiceRequest> batch;
    for (int rep = 0; rep < 8; ++rep) {
      // Synthetic, both engines, focused and unfocused.
      batch.push_back({synth_->Engine("indexproj"),
                       LineageRequest::SingleRun(synth_runs_[0], result,
                                                 Index({1, 2}),
                                                 {testbed::kListGen})});
      batch.push_back({synth_->Engine("naive"),
                       LineageRequest::SingleRun(synth_runs_[1], result,
                                                 Index({1, 2}),
                                                 {testbed::kListGen})});
      batch.push_back({synth_->Engine("indexproj"),
                       LineageRequest::SingleRun(synth_runs_[2], result,
                                                 Index({0, 1}), {})});
      // Multi-run request: the whole sweep in one scope.
      LineageRequest sweep;
      sweep.runs = synth_runs_;
      sweep.target = result;
      sweep.index = Index({1, 2});
      sweep.interest = {testbed::kListGen};
      batch.push_back({synth_->Engine("indexproj"), sweep});
      // GK, both engines, two targets.
      batch.push_back({gk_->Engine("indexproj"),
                       LineageRequest::SingleRun(
                           "gk-run", per_gene, Index({0}),
                           {"get_pathways_by_genes"})});
      batch.push_back({gk_->Engine("naive"),
                       LineageRequest::SingleRun(
                           "gk-run", per_gene, Index({0}),
                           {"get_pathways_by_genes"})});
      batch.push_back({gk_->Engine("indexproj"),
                       LineageRequest::SingleRun("gk-run", common, Index({0}),
                                                 {kWorkflowProcessor})});
      batch.push_back({gk_->Engine("naive"),
                       LineageRequest::SingleRun("gk-run", common, Index({0}),
                                                 {})});
    }
    return batch;
  }

  std::unique_ptr<Workbench> synth_;
  std::unique_ptr<Workbench> gk_;
  std::vector<std::string> synth_runs_;
};

TEST_F(ServiceTest, MixedBatchMatchesSequentialExecution) {
  std::vector<ServiceRequest> batch = MixedBatch();
  ASSERT_EQ(batch.size(), 64u);

  // Sequential ground truth through the same interface.
  std::vector<LineageAnswer> expected;
  for (const ServiceRequest& req : batch) {
    auto answer = req.engine->Query(req.request);
    ASSERT_TRUE(answer.ok()) << req.request.ToString();
    expected.push_back(std::move(*answer));
  }

  for (bool group : {true, false}) {
    LineageService service({/*num_threads=*/4, /*group_same_plan=*/group});
    std::vector<ServiceResponse> responses = service.ExecuteBatch(batch);
    ASSERT_EQ(responses.size(), batch.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].status.ok())
          << "group=" << group << " i=" << i << ": "
          << responses[i].status.ToString();
      EXPECT_EQ(responses[i].answer.bindings, expected[i].bindings)
          << "group=" << group << " divergence at request " << i << " ("
          << batch[i].request.ToString() << ")";
      EXPECT_LT(responses[i].worker, service.num_threads());
      EXPECT_GE(responses[i].queue_wait_ms, 0.0);
    }

    ServiceMetrics m = service.metrics();
    EXPECT_EQ(m.batches, 1u);
    EXPECT_EQ(m.requests, batch.size());
    EXPECT_EQ(m.failed_requests, 0u);
    EXPECT_GT(m.last_batch_wall_ms, 0.0);
    // Per-thread probe counts must account for every trace probe the
    // batch issued.
    uint64_t per_thread_sum = 0;
    for (uint64_t p : m.per_thread_probes) per_thread_sum += p;
    EXPECT_EQ(per_thread_sum, m.trace_probes);
    EXPECT_GT(m.trace_probes, 0u);
  }
}

TEST_F(ServiceTest, ExactlyOneBuildPerDistinctKeyUnderContention) {
  IndexProjLineage* engine = synth_->IndexProj();
  engine->ClearPlanCache();
  ASSERT_EQ(engine->plan_cache_size(), 0u);
  uint64_t builds_before = engine->plans_built();
  uint64_t hits_before = engine->plan_cache_hits();

  // 64 requests over exactly 4 distinct plan keys, dispatched one task
  // per request (no grouping) on 8 workers — maximal cache contention.
  PortRef result{kWorkflowProcessor, "RESULT"};
  std::vector<LineageRequest> distinct = {
      LineageRequest::SingleRun(synth_runs_[0], result, Index({1, 2}),
                                {testbed::kListGen}),
      LineageRequest::SingleRun(synth_runs_[0], result, Index({0, 1}),
                                {testbed::kListGen}),
      LineageRequest::SingleRun(synth_runs_[0], result, Index({1, 2}), {}),
      LineageRequest::SingleRun(synth_runs_[0], result, Index(), {}),
  };
  std::vector<ServiceRequest> batch;
  for (int rep = 0; rep < 16; ++rep) {
    for (size_t k = 0; k < distinct.size(); ++k) {
      // Vary the run so grouping could not collapse them anyway.
      LineageRequest req = distinct[k];
      req.runs = {synth_runs_[static_cast<size_t>(rep) % synth_runs_.size()]};
      batch.push_back({engine, req});
    }
  }
  ASSERT_EQ(batch.size(), 64u);

  LineageService service({/*num_threads=*/8, /*group_same_plan=*/false});
  std::vector<ServiceResponse> responses = service.ExecuteBatch(batch);
  for (const ServiceResponse& resp : responses) {
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  }

  // The acceptance criterion: one build per distinct key, every other
  // request a cache hit, nothing lost and nothing built twice.
  EXPECT_EQ(engine->plans_built() - builds_before, distinct.size());
  EXPECT_EQ(engine->plan_cache_hits() - hits_before,
            batch.size() - distinct.size());
  EXPECT_EQ(engine->plan_cache_size(), distinct.size());
}

TEST_F(ServiceTest, PlanCacheMaintenanceSafeUnderConcurrentQueries) {
  IndexProjLineage* engine = synth_->IndexProj();
  PortRef result{kWorkflowProcessor, "RESULT"};
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> querents;
  querents.reserve(4);
  for (int t = 0; t < 4; ++t) {
    querents.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        Index q = (i + t) % 2 == 0 ? Index({1, 2}) : Index({0, 1});
        auto answer = engine->Query(LineageRequest::SingleRun(
            synth_runs_[0], result, q, {testbed::kListGen}));
        if (!answer.ok() || answer->bindings.empty()) failures.fetch_add(1);
      }
    });
  }
  // Concurrent maintenance: clear and inspect the cache while queries
  // race through it.
  std::thread maintainer([&] {
    while (!stop.load()) {
      engine->ClearPlanCache();
      (void)engine->plan_cache_size();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : querents) t.join();
  stop.store(true);
  maintainer.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServiceTest, BadRequestFailsAloneWithoutPoisoningBatch) {
  PortRef result{kWorkflowProcessor, "RESULT"};
  std::vector<ServiceRequest> batch;
  batch.push_back({synth_->Engine("indexproj"),
                   LineageRequest::SingleRun(synth_runs_[0], result,
                                             Index({1, 2}),
                                             {testbed::kListGen})});
  batch.push_back({nullptr,  // no engine: must fail in isolation
                   LineageRequest::SingleRun(synth_runs_[0], result, Index(),
                                             {})});
  batch.push_back({synth_->Engine("naive"),
                   LineageRequest::SingleRun(synth_runs_[1], result,
                                             Index({1, 2}),
                                             {testbed::kListGen})});

  LineageService service({/*num_threads=*/2, /*group_same_plan=*/true});
  std::vector<ServiceResponse> responses = service.ExecuteBatch(batch);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_FALSE(responses[1].status.ok());
  EXPECT_TRUE(responses[2].status.ok());
  EXPECT_FALSE(responses[0].answer.bindings.empty());
  EXPECT_FALSE(responses[2].answer.bindings.empty());

  ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.requests, 3u);
  EXPECT_EQ(m.failed_requests, 1u);
}

TEST_F(ServiceTest, MetricsAccumulateAcrossBatchesAndReset) {
  LineageService service({/*num_threads=*/2, /*group_same_plan=*/true});
  PortRef result{kWorkflowProcessor, "RESULT"};
  std::vector<ServiceRequest> batch = {
      {synth_->Engine("indexproj"),
       LineageRequest::SingleRun(synth_runs_[0], result, Index({1, 2}),
                                 {testbed::kListGen})}};
  service.ExecuteBatch(batch);
  service.ExecuteBatch(batch);
  ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.batches, 2u);
  EXPECT_EQ(m.requests, 2u);
  // The second batch reuses the first one's cached plan.
  EXPECT_GE(m.plan_cache_hits, 1u);
  EXPECT_GT(m.plan_cache_hit_rate(), 0.0);
  EXPECT_FALSE(m.ToString().empty());

  service.ResetMetrics();
  m = service.metrics();
  EXPECT_EQ(m.batches, 0u);
  EXPECT_EQ(m.requests, 0u);
  EXPECT_EQ(m.per_thread_probes.size(), service.num_threads());
}

TEST_F(ServiceTest, RegistrySnapshotMatchesInstanceMetrics) {
  // The service mirrors every per-instance counter delta into the
  // process-wide registry; with exactly one service in the process the
  // two views must agree. (Each TEST runs in its own process under
  // gtest_discover_tests, so the registry reset below cannot race other
  // tests.)
  common::metrics::MetricsRegistry::Global().Reset();
  LineageService service({/*num_threads=*/3, /*group_same_plan=*/true});
  std::vector<ServiceRequest> batch = MixedBatch();
  service.ExecuteBatch(batch);
  service.ExecuteBatch(batch);

  ServiceMetrics inst = service.metrics();
  ServiceMetrics reg = ServiceMetrics::FromRegistrySnapshot(
      common::metrics::MetricsRegistry::Global().Snapshot());

  EXPECT_EQ(reg.batches, inst.batches);
  EXPECT_EQ(reg.requests, inst.requests);
  EXPECT_EQ(reg.failed_requests, inst.failed_requests);
  EXPECT_EQ(reg.plan_cache_hits, inst.plan_cache_hits);
  EXPECT_EQ(reg.trace_probes, inst.trace_probes);
  EXPECT_EQ(reg.trace_descents, inst.trace_descents);
  EXPECT_EQ(reg.probe_memo_hits, inst.probe_memo_hits);
  EXPECT_EQ(reg.probe_memo_lookups, inst.probe_memo_lookups);
  // The ms totals are histogram sums of the same observations; addition
  // order differs, so allow for rounding. The batch-wall gauge stores
  // whole microseconds.
  EXPECT_NEAR(reg.total_queue_wait_ms, inst.total_queue_wait_ms, 1e-6);
  EXPECT_NEAR(reg.total_exec_ms, inst.total_exec_ms, 1e-6);
  EXPECT_NEAR(reg.last_batch_wall_ms, inst.last_batch_wall_ms, 2e-3);
  // Worker attribution is per-service state the registry does not keep.
  EXPECT_TRUE(reg.per_thread_probes.empty());
  EXPECT_GT(inst.requests, 0u);
  EXPECT_GT(inst.trace_probes, 0u);
}

TEST_F(ServiceTest, EngineInterfaceReportsNames) {
  EXPECT_EQ(synth_->Engine("naive")->name(), "naive");
  EXPECT_EQ(synth_->Engine("indexproj")->name(), "indexproj");
  EXPECT_EQ(synth_->Engine("nonsense"), nullptr);
}

}  // namespace
}  // namespace provlin::lineage
