// The SQL SELECT layer over the embedded engine.

#include "storage/sql.h"

#include <gtest/gtest.h>

namespace provlin::storage {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() {
    Table* t = *db_.CreateTable(
        "xform", Schema({{"run_id", DatumKind::kString},
                         {"processor", DatumKind::kString},
                         {"out_index", DatumKind::kString},
                         {"out_value", DatumKind::kInt}}));
    EXPECT_TRUE(t->CreateIndex({"by_proc",
                                {"run_id", "processor", "out_index"},
                                IndexType::kBTree})
                    .ok());
    for (int i = 0; i < 12; ++i) {
      EXPECT_TRUE(t->Insert({Datum("r0"), Datum("P" + std::to_string(i % 3)),
                             Datum("0000" + std::to_string(i % 4)),
                             Datum(int64_t{i})})
                      .ok());
    }
  }

  Result<SqlResult> Run(const std::string& sql) {
    return ExecuteSql(db_, sql);
  }

  Database db_;
};

TEST_F(SqlTest, SelectStarWithEquality) {
  auto r = Run("SELECT * FROM xform WHERE run_id = 'r0' AND processor = 'P1'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns,
            (std::vector<std::string>{"run_id", "processor", "out_index",
                                      "out_value"}));
  EXPECT_EQ(r->rows.size(), 4u);  // i = 1, 4, 7, 10
  EXPECT_EQ(r->access_path, AccessPath::kIndexRange);
  EXPECT_EQ(r->index_used, "by_proc");
}

TEST_F(SqlTest, ProjectionSelectsAndOrdersColumns) {
  auto r = Run("SELECT out_value, processor FROM xform WHERE run_id = 'r0' "
               "AND processor = 'P2' AND out_index = '00002'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns,
            (std::vector<std::string>{"out_value", "processor"}));
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 2);
  EXPECT_EQ(r->rows[0][1].AsString(), "P2");
  EXPECT_EQ(r->access_path, AccessPath::kIndexEq);
}

TEST_F(SqlTest, ShardTableNamesLex) {
  // Sharded stores name physical tables "xform#k" (provenance/schema.h);
  // '#' must lex as part of the identifier.
  Table* t = *db_.CreateTable(
      "xform#1", Schema({{"run_id", DatumKind::kString}}));
  ASSERT_TRUE(t->Insert({Datum("r9")}).ok());
  auto r = Run("SELECT COUNT(*) FROM xform#1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST_F(SqlTest, LikePrefixBecomesRangeScan) {
  auto r = Run("SELECT * FROM xform WHERE run_id = 'r0' AND "
               "processor = 'P0' AND out_index LIKE '0000%'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 4u);
  EXPECT_EQ(r->access_path, AccessPath::kIndexRange);
}

TEST_F(SqlTest, CountStar) {
  auto r = Run("SELECT COUNT(*) FROM xform WHERE run_id = 'r0'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns, (std::vector<std::string>{"count"}));
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 12);
}

TEST_F(SqlTest, LimitTruncates) {
  auto r = Run("SELECT * FROM xform WHERE run_id = 'r0' LIMIT 5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 5u);
  auto zero = Run("SELECT * FROM xform LIMIT 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->rows.empty());
}

TEST_F(SqlTest, IntegerAndQuoteEscapes) {
  Table* t = *db_.CreateTable(
      "notes", Schema({{"k", DatumKind::kInt}, {"v", DatumKind::kString}}));
  ASSERT_TRUE(t->Insert({Datum(int64_t{7}), Datum("it's fine")}).ok());
  auto r = Run("SELECT v FROM notes WHERE k = 7 AND v = 'it''s fine'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "it's fine");
}

TEST_F(SqlTest, KeywordsAreCaseInsensitive) {
  auto r = Run("select count(*) from xform where run_id = 'r0' and "
               "processor = 'P0'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 4);
}

TEST_F(SqlTest, NoWhereScansEverything) {
  auto r = Run("SELECT * FROM xform");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 12u);
  EXPECT_EQ(r->access_path, AccessPath::kFullScan);
}

TEST_F(SqlTest, Errors) {
  EXPECT_FALSE(Run("").ok());
  EXPECT_FALSE(Run("SELEC * FROM xform").ok());
  EXPECT_FALSE(Run("SELECT * FROM no_such_table").ok());
  EXPECT_FALSE(Run("SELECT nope FROM xform").ok());
  EXPECT_FALSE(Run("SELECT * FROM xform WHERE nope = 'x'").ok());
  EXPECT_FALSE(Run("SELECT * FROM xform WHERE run_id").ok());
  EXPECT_FALSE(Run("SELECT * FROM xform WHERE run_id = ").ok());
  EXPECT_FALSE(Run("SELECT * FROM xform WHERE run_id = 'r0' garbage").ok());
  EXPECT_FALSE(Run("SELECT * FROM xform WHERE run_id = 'unterminated").ok());
  EXPECT_FALSE(Run("SELECT * FROM xform LIMIT -3").ok());
  // LIKE restrictions: prefix-only, single occurrence.
  EXPECT_FALSE(Run("SELECT * FROM xform WHERE out_index LIKE '%suffix'").ok());
  EXPECT_FALSE(Run("SELECT * FROM xform WHERE out_index LIKE 'a_b%'").ok());
  EXPECT_FALSE(
      Run("SELECT * FROM xform WHERE out_index LIKE 'a%' AND "
          "processor LIKE 'b%'")
          .ok());
}

TEST_F(SqlTest, DoubleLiterals) {
  Table* t = *db_.CreateTable(
      "metrics", Schema({{"name", DatumKind::kString},
                         {"value", DatumKind::kDouble}}));
  ASSERT_TRUE(t->Insert({Datum("pi"), Datum(3.5)}).ok());
  auto r = Run("SELECT name FROM metrics WHERE value = 3.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "pi");
}

}  // namespace
}  // namespace provlin::storage
