// Differential fuzz of the trace store's overlap probes: FindProducing,
// FindConsuming and FindXfersInto must return exactly the rows whose
// index *overlaps* the query index (one is a prefix of the other),
// matching a brute-force scan — for random traces and random query
// indices of every length.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "provenance/trace_store.h"

namespace provlin::provenance {
namespace {

bool Overlaps(const Index& a, const Index& b) {
  return a.IsPrefixOf(b) || b.IsPrefixOf(a);
}

Index RandomIndex(Random* rng, size_t max_len, int32_t max_component) {
  std::vector<int32_t> parts;
  size_t len = rng->Uniform(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    parts.push_back(static_cast<int32_t>(rng->Uniform(
        static_cast<uint64_t>(max_component))));
  }
  return Index(std::move(parts));
}

class TraceProbeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceProbeFuzzTest, OverlapProbesMatchBruteForce) {
  Random rng(GetParam());
  storage::Database db;
  auto store = *TraceStore::Open(&db);

  // Random xform rows across 2 runs, 3 processors, 2 ports each, with
  // indices up to depth 3 over a tiny component domain (maximizing
  // prefix relationships).
  struct RowFact {
    std::string run, proc, in_port, out_port;
    Index in_index, out_index;
  };
  std::vector<RowFact> facts;
  for (int i = 0; i < 150; ++i) {
    RowFact f;
    f.run = "run" + std::to_string(rng.Uniform(2));
    f.proc = "P" + std::to_string(rng.Uniform(3));
    f.in_port = "in" + std::to_string(rng.Uniform(2));
    f.out_port = "out" + std::to_string(rng.Uniform(2));
    f.in_index = RandomIndex(&rng, 3, 3);
    f.out_index = RandomIndex(&rng, 3, 3);
    XformRecord rec;
    rec.run = store.Intern(f.run);
    rec.event_id = i;
    rec.processor = store.Intern(f.proc);
    rec.has_in = true;
    rec.in_port = store.Intern(f.in_port);
    rec.in_index = f.in_index;
    rec.in_value = 0;
    rec.has_out = true;
    rec.out_port = store.Intern(f.out_port);
    rec.out_index = f.out_index;
    rec.out_value = 0;
    ASSERT_TRUE(store.InsertXform(rec).ok());
    facts.push_back(std::move(f));
  }

  for (int qn = 0; qn < 120; ++qn) {
    std::string run = "run" + std::to_string(rng.Uniform(2));
    std::string proc = "P" + std::to_string(rng.Uniform(3));
    Index q = RandomIndex(&rng, 4, 4);

    {
      std::string port = "out" + std::to_string(rng.Uniform(2));
      auto rows = store.FindProducing(run, proc, port, q);
      ASSERT_TRUE(rows.ok());
      size_t expected = 0;
      for (const RowFact& f : facts) {
        if (f.run == run && f.proc == proc && f.out_port == port &&
            Overlaps(f.out_index, q)) {
          ++expected;
        }
      }
      ASSERT_EQ(rows->size(), expected)
          << "FindProducing " << proc << ":" << port << q.ToString()
          << " seed " << GetParam();
      for (const XformRecord& r : *rows) {
        EXPECT_TRUE(Overlaps(r.out_index, q)) << r.out_index.ToString();
      }
    }
    {
      std::string port = "in" + std::to_string(rng.Uniform(2));
      auto rows = store.FindConsuming(run, proc, port, q);
      ASSERT_TRUE(rows.ok());
      size_t expected = 0;
      for (const RowFact& f : facts) {
        if (f.run == run && f.proc == proc && f.in_port == port &&
            Overlaps(f.in_index, q)) {
          ++expected;
        }
      }
      ASSERT_EQ(rows->size(), expected)
          << "FindConsuming " << proc << ":" << port << q.ToString();
    }
  }
}

TEST_P(TraceProbeFuzzTest, XferOverlapProbesMatchBruteForce) {
  Random rng(GetParam() * 977 + 5);
  storage::Database db;
  auto store = *TraceStore::Open(&db);

  struct XferFact {
    std::string dst_proc, dst_port;
    Index dst_index;
  };
  std::vector<XferFact> facts;
  for (int i = 0; i < 100; ++i) {
    XferFact f;
    f.dst_proc = "C" + std::to_string(rng.Uniform(3));
    f.dst_port = "x";
    f.dst_index = RandomIndex(&rng, 3, 3);
    XferRecord rec;
    rec.run = store.Intern("r0");
    rec.src_proc = store.Intern("S");
    rec.src_port = store.Intern("y");
    rec.src_index = f.dst_index;
    rec.dst_proc = store.Intern(f.dst_proc);
    rec.dst_port = store.Intern(f.dst_port);
    rec.dst_index = f.dst_index;
    // Distinct per row: the probe layer dedups *identical* rows, which
    // never occur in real traces (value ids differ).
    rec.value_id = i;
    ASSERT_TRUE(store.InsertXfer(rec).ok());
    facts.push_back(std::move(f));
  }
  for (int qn = 0; qn < 60; ++qn) {
    std::string proc = "C" + std::to_string(rng.Uniform(3));
    Index q = RandomIndex(&rng, 4, 4);
    auto rows = store.FindXfersInto("r0", proc, "x", q);
    ASSERT_TRUE(rows.ok());
    size_t expected = 0;
    for (const XferFact& f : facts) {
      if (f.dst_proc == proc && Overlaps(f.dst_index, q)) ++expected;
    }
    ASSERT_EQ(rows->size(), expected) << proc << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceProbeFuzzTest,
                         ::testing::Range<uint64_t>(700, 712));

}  // namespace
}  // namespace provlin::provenance
