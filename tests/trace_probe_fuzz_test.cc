// Differential fuzz of the trace store's overlap probes: FindProducing,
// FindConsuming and FindXfersInto must return exactly the rows whose
// index *overlaps* the query index (one is a prefix of the other),
// matching a brute-force scan — for random traces and random query
// indices of every length.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <tuple>

#include "common/random.h"
#include "provenance/trace_store.h"

namespace provlin::provenance {
namespace {

bool Overlaps(const Index& a, const Index& b) {
  return a.IsPrefixOf(b) || b.IsPrefixOf(a);
}

Index RandomIndex(Random* rng, size_t max_len, int32_t max_component) {
  std::vector<int32_t> parts;
  size_t len = rng->Uniform(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    parts.push_back(static_cast<int32_t>(rng->Uniform(
        static_cast<uint64_t>(max_component))));
  }
  return Index(std::move(parts));
}

class TraceProbeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceProbeFuzzTest, OverlapProbesMatchBruteForce) {
  Random rng(GetParam());
  storage::Database db;
  auto store = *TraceStore::Open(&db);

  // Random xform rows across 2 runs, 3 processors, 2 ports each, with
  // indices up to depth 3 over a tiny component domain (maximizing
  // prefix relationships).
  struct RowFact {
    std::string run, proc, in_port, out_port;
    Index in_index, out_index;
  };
  std::vector<RowFact> facts;
  for (int i = 0; i < 150; ++i) {
    RowFact f;
    f.run = "run" + std::to_string(rng.Uniform(2));
    f.proc = "P" + std::to_string(rng.Uniform(3));
    f.in_port = "in" + std::to_string(rng.Uniform(2));
    f.out_port = "out" + std::to_string(rng.Uniform(2));
    f.in_index = RandomIndex(&rng, 3, 3);
    f.out_index = RandomIndex(&rng, 3, 3);
    XformRecord rec;
    rec.run = store.Intern(f.run);
    rec.event_id = i;
    rec.processor = store.Intern(f.proc);
    rec.has_in = true;
    rec.in_port = store.Intern(f.in_port);
    rec.in_index = f.in_index;
    rec.in_value = 0;
    rec.has_out = true;
    rec.out_port = store.Intern(f.out_port);
    rec.out_index = f.out_index;
    rec.out_value = 0;
    ASSERT_TRUE(store.InsertXform(rec).ok());
    facts.push_back(std::move(f));
  }

  for (int qn = 0; qn < 120; ++qn) {
    std::string run = "run" + std::to_string(rng.Uniform(2));
    std::string proc = "P" + std::to_string(rng.Uniform(3));
    Index q = RandomIndex(&rng, 4, 4);

    {
      std::string port = "out" + std::to_string(rng.Uniform(2));
      auto rows = store.FindProducing(run, proc, port, q);
      ASSERT_TRUE(rows.ok());
      size_t expected = 0;
      for (const RowFact& f : facts) {
        if (f.run == run && f.proc == proc && f.out_port == port &&
            Overlaps(f.out_index, q)) {
          ++expected;
        }
      }
      ASSERT_EQ(rows->size(), expected)
          << "FindProducing " << proc << ":" << port << q.ToString()
          << " seed " << GetParam();
      for (const XformRecord& r : *rows) {
        EXPECT_TRUE(Overlaps(r.out_index, q)) << r.out_index.ToString();
      }
    }
    {
      std::string port = "in" + std::to_string(rng.Uniform(2));
      auto rows = store.FindConsuming(run, proc, port, q);
      ASSERT_TRUE(rows.ok());
      size_t expected = 0;
      for (const RowFact& f : facts) {
        if (f.run == run && f.proc == proc && f.in_port == port &&
            Overlaps(f.in_index, q)) {
          ++expected;
        }
      }
      ASSERT_EQ(rows->size(), expected)
          << "FindConsuming " << proc << ":" << port << q.ToString();
    }
  }
}

TEST_P(TraceProbeFuzzTest, XferOverlapProbesMatchBruteForce) {
  Random rng(GetParam() * 977 + 5);
  storage::Database db;
  auto store = *TraceStore::Open(&db);

  struct XferFact {
    std::string dst_proc, dst_port;
    Index dst_index;
  };
  std::vector<XferFact> facts;
  for (int i = 0; i < 100; ++i) {
    XferFact f;
    f.dst_proc = "C" + std::to_string(rng.Uniform(3));
    f.dst_port = "x";
    f.dst_index = RandomIndex(&rng, 3, 3);
    XferRecord rec;
    rec.run = store.Intern("r0");
    rec.src_proc = store.Intern("S");
    rec.src_port = store.Intern("y");
    rec.src_index = f.dst_index;
    rec.dst_proc = store.Intern(f.dst_proc);
    rec.dst_port = store.Intern(f.dst_port);
    rec.dst_index = f.dst_index;
    // Distinct per row: the probe layer dedups *identical* rows, which
    // never occur in real traces (value ids differ).
    rec.value_id = i;
    ASSERT_TRUE(store.InsertXfer(rec).ok());
    facts.push_back(std::move(f));
  }
  for (int qn = 0; qn < 60; ++qn) {
    std::string proc = "C" + std::to_string(rng.Uniform(3));
    Index q = RandomIndex(&rng, 4, 4);
    auto rows = store.FindXfersInto("r0", proc, "x", q);
    ASSERT_TRUE(rows.ok());
    size_t expected = 0;
    for (const XferFact& f : facts) {
      if (f.dst_proc == proc && Overlaps(f.dst_index, q)) ++expected;
    }
    ASSERT_EQ(rows->size(), expected) << proc << q.ToString();
  }
}

// The batch finders answer a vector of port probes in one storage batch;
// slot i must carry exactly what the corresponding single-probe call
// returns, in the same order — with and without an active probe memo,
// and with duplicate probes in the batch.
TEST_P(TraceProbeFuzzTest, BatchFindersMatchSingleProbes) {
  Random rng(GetParam() * 131 + 17);
  storage::Database db;
  auto store = *TraceStore::Open(&db);

  for (int i = 0; i < 150; ++i) {
    XformRecord rec;
    rec.run = store.Intern("run" + std::to_string(rng.Uniform(2)));
    rec.event_id = i;
    rec.processor = store.Intern("P" + std::to_string(rng.Uniform(3)));
    rec.has_in = true;
    rec.in_port = store.Intern("in" + std::to_string(rng.Uniform(2)));
    rec.in_index = RandomIndex(&rng, 3, 3);
    rec.in_value = static_cast<int64_t>(i);
    rec.has_out = true;
    rec.out_port = store.Intern("out" + std::to_string(rng.Uniform(2)));
    rec.out_index = RandomIndex(&rng, 3, 3);
    rec.out_value = static_cast<int64_t>(i);
    ASSERT_TRUE(store.InsertXform(rec).ok());
  }
  for (int i = 0; i < 100; ++i) {
    XferRecord rec;
    rec.run = store.Intern("run" + std::to_string(rng.Uniform(2)));
    rec.src_proc = store.Intern("P" + std::to_string(rng.Uniform(3)));
    rec.src_port = store.Intern("out" + std::to_string(rng.Uniform(2)));
    rec.src_index = RandomIndex(&rng, 3, 3);
    rec.dst_proc = store.Intern("P" + std::to_string(rng.Uniform(3)));
    rec.dst_port = store.Intern("in" + std::to_string(rng.Uniform(2)));
    rec.dst_index = RandomIndex(&rng, 3, 3);
    rec.value_id = i;
    ASSERT_TRUE(store.InsertXfer(rec).ok());
  }

  auto xform_key = [](const XformRecord& r) {
    return std::make_tuple(r.run, r.event_id, r.processor, r.has_in, r.in_port,
                           r.in_index, r.in_value, r.has_out, r.out_port,
                           r.out_index, r.out_value);
  };
  auto xfer_key = [](const XferRecord& r) {
    return std::make_tuple(r.run, r.src_proc, r.src_port, r.src_index,
                           r.dst_proc, r.dst_port, r.dst_index, r.value_id);
  };

  ProbeMemo memo;
  for (int round = 0; round < 20; ++round) {
    common::SymbolId run =
        store.Intern("run" + std::to_string(rng.Uniform(2)));
    std::vector<PortProbe> probes(1 + rng.Uniform(12));
    bool out_side = rng.Bernoulli(0.5);
    for (PortProbe& p : probes) {
      if (!probes.empty() && rng.Bernoulli(0.2) && &p != &probes.front()) {
        p = probes[rng.Uniform(static_cast<uint64_t>(&p - probes.data()))];
        continue;  // deliberate duplicate of an earlier probe
      }
      p.run = run;
      p.processor = store.Intern("P" + std::to_string(rng.Uniform(3)));
      p.port = store.Intern((out_side ? "out" : "in") +
                            std::to_string(rng.Uniform(2)));
      p.index = RandomIndex(&rng, 4, 4);
    }
    // Half the rounds exercise the batch under a shared probe memo.
    std::optional<ProbeMemoScope> scope;
    if (round % 2 == 1) scope.emplace(&memo);

    if (out_side) {
      auto batch = store.FindProducingBatch(probes);
      auto xbatch = store.FindXfersFromBatch(probes);
      ASSERT_TRUE(batch.ok());
      ASSERT_TRUE(xbatch.ok());
      ASSERT_EQ(batch->size(), probes.size());
      ASSERT_EQ(xbatch->size(), probes.size());
      for (size_t i = 0; i < probes.size(); ++i) {
        auto single =
            store.FindProducing(run, probes[i].processor, probes[i].port,
                                probes[i].index);
        ASSERT_TRUE(single.ok());
        ASSERT_EQ((*batch)[i].size(), single->size()) << "probe " << i;
        for (size_t r = 0; r < single->size(); ++r) {
          EXPECT_EQ(xform_key((*batch)[i][r]), xform_key((*single)[r]));
        }
        auto xsingle = store.FindXfersFrom(run, probes[i].processor,
                                           probes[i].port, probes[i].index);
        ASSERT_TRUE(xsingle.ok());
        ASSERT_EQ((*xbatch)[i].size(), xsingle->size()) << "probe " << i;
        for (size_t r = 0; r < xsingle->size(); ++r) {
          EXPECT_EQ(xfer_key((*xbatch)[i][r]), xfer_key((*xsingle)[r]));
        }
      }
    } else {
      auto batch = store.FindConsumingBatch(probes);
      auto xbatch = store.FindXfersIntoBatch(probes);
      ASSERT_TRUE(batch.ok());
      ASSERT_TRUE(xbatch.ok());
      ASSERT_EQ(batch->size(), probes.size());
      ASSERT_EQ(xbatch->size(), probes.size());
      for (size_t i = 0; i < probes.size(); ++i) {
        auto single =
            store.FindConsuming(run, probes[i].processor, probes[i].port,
                                probes[i].index);
        ASSERT_TRUE(single.ok());
        ASSERT_EQ((*batch)[i].size(), single->size()) << "probe " << i;
        for (size_t r = 0; r < single->size(); ++r) {
          EXPECT_EQ(xform_key((*batch)[i][r]), xform_key((*single)[r]));
        }
        auto xsingle = store.FindXfersInto(run, probes[i].processor,
                                           probes[i].port, probes[i].index);
        ASSERT_TRUE(xsingle.ok());
        ASSERT_EQ((*xbatch)[i].size(), xsingle->size()) << "probe " << i;
        for (size_t r = 0; r < xsingle->size(); ++r) {
          EXPECT_EQ(xfer_key((*xbatch)[i][r]), xfer_key((*xsingle)[r]));
        }
      }
    }
  }
  // The memoized rounds replayed plenty of repeated probes; the memo must
  // have been consulted (hits are batch-composition dependent, so only
  // the lookup count is asserted).
  EXPECT_GT(memo.lookups(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceProbeFuzzTest,
                         ::testing::Range<uint64_t>(700, 712));

}  // namespace
}  // namespace provlin::provenance
