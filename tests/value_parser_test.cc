#include "values/value_parser.h"

#include <gtest/gtest.h>

namespace provlin {
namespace {

TEST(ValueParser, Atoms) {
  EXPECT_EQ(*ParseValue("42"), Value::Int(42));
  EXPECT_EQ(*ParseValue("-7"), Value::Int(-7));
  EXPECT_EQ(*ParseValue("2.5"), Value::Dbl(2.5));
  EXPECT_EQ(*ParseValue("true"), Value::Boolean(true));
  EXPECT_EQ(*ParseValue("false"), Value::Boolean(false));
  EXPECT_EQ(*ParseValue("null"), Value::Null());
}

TEST(ValueParser, QuotedStrings) {
  EXPECT_EQ(*ParseValue("\"hello world\""), Value::Str("hello world"));
  EXPECT_EQ(*ParseValue("\"say \\\"hi\\\"\""), Value::Str("say \"hi\""));
  EXPECT_EQ(*ParseValue("\"\""), Value::Str(""));
}

TEST(ValueParser, BareWordsAreStrings) {
  EXPECT_EQ(*ParseValue("hello"), Value::Str("hello"));
  EXPECT_EQ(*ParseValue("path:04010"), Value::Str("path:04010"));
}

TEST(ValueParser, FlatList) {
  auto v = ParseValue("[a, b, c]");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::StringList({"a", "b", "c"}));
}

TEST(ValueParser, NestedList) {
  auto v = ParseValue("[[\"foo\",\"bar\"],[\"red\",\"fox\"]]");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->depth(), 2);
  EXPECT_EQ(v->At(Index({1, 0}))->atom().AsString(), "red");
}

TEST(ValueParser, EmptyList) {
  auto v = ParseValue("[]");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_list());
  EXPECT_EQ(v->list_size(), 0u);
}

TEST(ValueParser, WhitespaceTolerant) {
  auto v = ParseValue("  [ 1 ,  2 , 3 ]  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->list_size(), 3u);
  EXPECT_EQ(v->elements()[2], Value::Int(3));
}

TEST(ValueParser, MixedNumbersAndStrings) {
  auto v = ParseValue("[1, two, 3.5]");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->elements()[0], Value::Int(1));
  EXPECT_EQ(v->elements()[1], Value::Str("two"));
  EXPECT_EQ(v->elements()[2], Value::Dbl(3.5));
}

TEST(ValueParser, RoundTripsToString) {
  for (const char* text :
       {"[[\"foo\",\"bar\"],[\"red\",\"fox\"]]", "[1,2,3]", "[]",
        "[[],[\"a\"]]", "\"x\"", "42", "true"}) {
    auto v = ParseValue(text);
    ASSERT_TRUE(v.ok()) << text;
    auto again = ParseValue(v->ToString());
    ASSERT_TRUE(again.ok()) << v->ToString();
    EXPECT_EQ(*again, *v) << text;
  }
}

TEST(ValueParser, RejectsUnterminatedList) {
  EXPECT_FALSE(ParseValue("[1, 2").ok());
  EXPECT_FALSE(ParseValue("[").ok());
}

TEST(ValueParser, RejectsUnterminatedString) {
  EXPECT_FALSE(ParseValue("\"abc").ok());
  EXPECT_FALSE(ParseValue("\"abc\\").ok());
}

TEST(ValueParser, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseValue("[1] x").ok());
  EXPECT_FALSE(ParseValue("1,2").ok());   // bare atom stops at the comma
  EXPECT_FALSE(ParseValue("\"a\" b").ok());
}

TEST(ValueParser, BareWordsMayContainSpaces) {
  // Unquoted tokens run to the next delimiter, so phrases parse as one
  // string — convenient for hand-written inputs like pathway names.
  EXPECT_EQ(*ParseValue("MAPK signaling"), Value::Str("MAPK signaling"));
  EXPECT_EQ(*ParseValue("[MAPK signaling, VEGF signaling]"),
            Value::StringList({"MAPK signaling", "VEGF signaling"}));
}

TEST(ValueParser, RejectsEmptyInput) {
  EXPECT_FALSE(ParseValue("").ok());
  EXPECT_FALSE(ParseValue("   ").ok());
}

TEST(ValueParser, RejectsDanglingComma) {
  EXPECT_FALSE(ParseValue("[1,]").ok());
  EXPECT_FALSE(ParseValue("[,1]").ok());
}

}  // namespace
}  // namespace provlin
