// The declarative select layer: planning (index selection), access-path
// reporting, and residual filtering.

#include "storage/query.h"

#include <gtest/gtest.h>

namespace provlin::storage {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest()
      : table_("xform", Schema({{"run", DatumKind::kString},
                                {"proc", DatumKind::kString},
                                {"idx", DatumKind::kString},
                                {"val", DatumKind::kInt}})) {
    EXPECT_TRUE(table_
                    .CreateIndex({"by_proc_idx",
                                  {"run", "proc", "idx"},
                                  IndexType::kBTree})
                    .ok());
    EXPECT_TRUE(
        table_.CreateIndex({"by_val", {"run", "val"}, IndexType::kHash}).ok());
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(table_
                      .Insert({Datum("r0"), Datum("P" + std::to_string(i % 4)),
                               Datum("0000" + std::to_string(i % 10)),
                               Datum(int64_t{i})})
                      .ok());
    }
  }

  Table table_;
};

TEST_F(QueryTest, FullEqualityUsesIndexEq) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"proc", Datum("P1")},
              {"idx", Datum("00001")}};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kIndexEq);
  EXPECT_EQ(r->index_used, "by_proc_idx");
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][3].AsInt(), 1);
}

TEST_F(QueryTest, LeadingEqualityUsesIndexRange) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"proc", Datum("P2")}};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kIndexRange);
  EXPECT_EQ(r->rows.size(), 5u);  // i = 2, 6, 10, 14, 18
}

TEST_F(QueryTest, StringPrefixTurnsIntoRangeScan) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"proc", Datum("P1")}};
  q.string_prefix = SelectQuery::StringPrefix{"idx", "0000"};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kIndexRange);
  EXPECT_EQ(r->rows.size(), 5u);  // all P1 rows share the 0000 prefix
}

TEST_F(QueryTest, HashIndexNeedsExactColumnSet) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"val", Datum(int64_t{7})}};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kIndexEq);
  EXPECT_EQ(r->index_used, "by_val");
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][3].AsInt(), 7);
}

TEST_F(QueryTest, NoUsableIndexFallsBackToFullScan) {
  SelectQuery q;
  q.equals = {{"val", Datum(int64_t{3})}};  // by_val needs run too
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kFullScan);
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][3].AsInt(), 3);
}

TEST_F(QueryTest, ResidualPredicatesFilterIndexResults) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")},
              {"proc", Datum("P1")},
              {"val", Datum(int64_t{13})}};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  // Planner picks an index on (run, proc[, idx]); val filters residually.
  EXPECT_NE(r->access_path, AccessPath::kFullScan);
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][3].AsInt(), 13);
}

TEST_F(QueryTest, EmptyQueryScansEverything) {
  SelectQuery q;
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kFullScan);
  EXPECT_EQ(r->rows.size(), 20u);
}

TEST_F(QueryTest, UnknownColumnRejected) {
  SelectQuery q;
  q.equals = {{"nope", Datum("x")}};
  EXPECT_FALSE(ExecuteSelect(table_, q).ok());
  SelectQuery q2;
  q2.string_prefix = SelectQuery::StringPrefix{"nope", "x"};
  EXPECT_FALSE(ExecuteSelect(table_, q2).ok());
}

TEST_F(QueryTest, NoMatchesIsEmptyNotError) {
  SelectQuery q;
  q.equals = {{"run", Datum("r9")}, {"proc", Datum("P1")},
              {"idx", Datum("00001")}};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(QueryTest, AccessPathNames) {
  EXPECT_EQ(AccessPathName(AccessPath::kIndexEq), "index-eq");
  EXPECT_EQ(AccessPathName(AccessPath::kIndexRange), "index-range");
  EXPECT_EQ(AccessPathName(AccessPath::kFullScan), "full-scan");
}

// ---------------------------------------------------------------------------
// String-prefix successor: the upper bound of a prefix range scan.
// ---------------------------------------------------------------------------

TEST(StringPrefixSuccessor, BumpsLastByte) {
  EXPECT_EQ(StringPrefixSuccessor("0000"), "0001");
  EXPECT_EQ(StringPrefixSuccessor("abc"), "abd");
}

TEST(StringPrefixSuccessor, DropsTrailingMaxBytes) {
  EXPECT_EQ(StringPrefixSuccessor(std::string("a\xff", 2)), "b");
  EXPECT_EQ(StringPrefixSuccessor(std::string("ab\xff\xff", 4)), "ac");
}

TEST(StringPrefixSuccessor, NoFiniteSuccessor) {
  EXPECT_FALSE(StringPrefixSuccessor("").has_value());
  EXPECT_FALSE(StringPrefixSuccessor(std::string("\xff", 1)).has_value());
  EXPECT_FALSE(StringPrefixSuccessor(std::string("\xff\xff\xff", 3)).has_value());
}

// Regression: the old upper bound was prefix + "\xff\xff\xff\xff", which
// silently *excludes* keys extending the prefix with five or more 0xFF
// bytes. The successor bound covers every extension.
TEST_F(QueryTest, PrefixScanCoversAdversarialHighByteKeys) {
  std::string evil = "0000" + std::string(6, '\xff');
  ASSERT_TRUE(
      table_.Insert({Datum("r0"), Datum("P1"), Datum(evil), Datum(int64_t{99})})
          .ok());
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"proc", Datum("P1")}};
  q.string_prefix = SelectQuery::StringPrefix{"idx", "0000"};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kIndexRange);
  EXPECT_EQ(r->rows.size(), 6u);  // the 5 seed P1 rows plus the evil key
  bool found = false;
  for (const Row& row : r->rows) found |= row[3].AsInt() == 99;
  EXPECT_TRUE(found);
}

// An all-0xFF prefix has no finite successor; the planner must degrade
// to a bounded-by-equality scan with a residual filter, never drop rows.
TEST_F(QueryTest, UnboundablePrefixFallsBackToResidualFilter) {
  std::string all_ff(4, '\xff');
  ASSERT_TRUE(table_
                  .Insert({Datum("r0"), Datum("P1"), Datum(all_ff + "tail"),
                           Datum(int64_t{123})})
                  .ok());
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"proc", Datum("P1")}};
  q.string_prefix = SelectQuery::StringPrefix{"idx", all_ff};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][3].AsInt(), 123);
}

// ---------------------------------------------------------------------------
// Zero-copy mode and batched execution.
// ---------------------------------------------------------------------------

TEST_F(QueryTest, ZeroCopyReturnsBorrowedRows) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"proc", Datum("P1")},
              {"idx", Datum("00001")}};
  SelectOptions opts;
  opts.zero_copy = true;
  auto r = ExecuteSelect(table_, q, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->zero_copy);
  EXPECT_TRUE(r->rows.empty());
  ASSERT_EQ(r->num_rows(), 1u);
  ASSERT_EQ(r->rids.size(), 1u);
  ASSERT_EQ(r->row_ptrs.size(), 1u);
  RowView view = r->ViewAt(0);
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view[3].AsInt(), 1);
  EXPECT_EQ(view.size(), 4u);
  // The borrowed pointer is the table's own row.
  const Row* peek = table_.PeekRow(r->rids[0]);
  EXPECT_EQ(r->row_ptrs[0], peek);
}

TEST_F(QueryTest, MultiSelectAnswersEachQueryIdentically) {
  std::vector<SelectQuery> queries;
  for (int p = 0; p < 4; ++p) {
    SelectQuery q;
    q.equals = {{"run", Datum("r0")}, {"proc", Datum("P" + std::to_string(p))}};
    queries.push_back(q);
  }
  // Mix in a different shape (full scan) and a prefix shape.
  queries.push_back({});
  {
    SelectQuery q;
    q.equals = {{"run", Datum("r0")}, {"proc", Datum("P1")}};
    q.string_prefix = SelectQuery::StringPrefix{"idx", "0000"};
    queries.push_back(q);
  }
  auto batched = ExecuteMultiSelect(table_, queries);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto single = ExecuteSelect(table_, queries[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batched)[i].rows, single->rows) << i;
    EXPECT_EQ((*batched)[i].access_path, single->access_path) << i;
    EXPECT_EQ((*batched)[i].index_used, single->index_used) << i;
  }
}

TEST_F(QueryTest, MultiSelectAmortizesDescents) {
  table_.ResetStats();
  std::vector<SelectQuery> queries;
  for (int i = 0; i < 10; ++i) {
    SelectQuery q;
    q.equals = {{"run", Datum("r0")},
                {"proc", Datum("P" + std::to_string(i % 4))},
                {"idx", Datum("0000" + std::to_string(i))}};
    queries.push_back(q);
  }
  auto r = ExecuteMultiSelect(table_, queries);
  ASSERT_TRUE(r.ok());
  TableStats stats = table_.stats();
  // Logical probe accounting is untouched by batching...
  EXPECT_EQ(stats.index_probes, 10u);
  EXPECT_EQ(stats.batched_probes, 10u);
  // ...but the whole sorted batch descends far fewer than 10 times.
  EXPECT_LT(stats.descents, 10u);
  EXPECT_GE(stats.descents, 1u);
}

}  // namespace
}  // namespace provlin::storage
