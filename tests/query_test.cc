// The declarative select layer: planning (index selection), access-path
// reporting, and residual filtering.

#include "storage/query.h"

#include <gtest/gtest.h>

namespace provlin::storage {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest()
      : table_("xform", Schema({{"run", DatumKind::kString},
                                {"proc", DatumKind::kString},
                                {"idx", DatumKind::kString},
                                {"val", DatumKind::kInt}})) {
    EXPECT_TRUE(table_
                    .CreateIndex({"by_proc_idx",
                                  {"run", "proc", "idx"},
                                  IndexType::kBTree})
                    .ok());
    EXPECT_TRUE(
        table_.CreateIndex({"by_val", {"run", "val"}, IndexType::kHash}).ok());
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(table_
                      .Insert({Datum("r0"), Datum("P" + std::to_string(i % 4)),
                               Datum("0000" + std::to_string(i % 10)),
                               Datum(int64_t{i})})
                      .ok());
    }
  }

  Table table_;
};

TEST_F(QueryTest, FullEqualityUsesIndexEq) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"proc", Datum("P1")},
              {"idx", Datum("00001")}};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kIndexEq);
  EXPECT_EQ(r->index_used, "by_proc_idx");
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][3].AsInt(), 1);
}

TEST_F(QueryTest, LeadingEqualityUsesIndexRange) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"proc", Datum("P2")}};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kIndexRange);
  EXPECT_EQ(r->rows.size(), 5u);  // i = 2, 6, 10, 14, 18
}

TEST_F(QueryTest, StringPrefixTurnsIntoRangeScan) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"proc", Datum("P1")}};
  q.string_prefix = SelectQuery::StringPrefix{"idx", "0000"};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kIndexRange);
  EXPECT_EQ(r->rows.size(), 5u);  // all P1 rows share the 0000 prefix
}

TEST_F(QueryTest, HashIndexNeedsExactColumnSet) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")}, {"val", Datum(int64_t{7})}};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kIndexEq);
  EXPECT_EQ(r->index_used, "by_val");
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][3].AsInt(), 7);
}

TEST_F(QueryTest, NoUsableIndexFallsBackToFullScan) {
  SelectQuery q;
  q.equals = {{"val", Datum(int64_t{3})}};  // by_val needs run too
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kFullScan);
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][3].AsInt(), 3);
}

TEST_F(QueryTest, ResidualPredicatesFilterIndexResults) {
  SelectQuery q;
  q.equals = {{"run", Datum("r0")},
              {"proc", Datum("P1")},
              {"val", Datum(int64_t{13})}};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  // Planner picks an index on (run, proc[, idx]); val filters residually.
  EXPECT_NE(r->access_path, AccessPath::kFullScan);
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][3].AsInt(), 13);
}

TEST_F(QueryTest, EmptyQueryScansEverything) {
  SelectQuery q;
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->access_path, AccessPath::kFullScan);
  EXPECT_EQ(r->rows.size(), 20u);
}

TEST_F(QueryTest, UnknownColumnRejected) {
  SelectQuery q;
  q.equals = {{"nope", Datum("x")}};
  EXPECT_FALSE(ExecuteSelect(table_, q).ok());
  SelectQuery q2;
  q2.string_prefix = SelectQuery::StringPrefix{"nope", "x"};
  EXPECT_FALSE(ExecuteSelect(table_, q2).ok());
}

TEST_F(QueryTest, NoMatchesIsEmptyNotError) {
  SelectQuery q;
  q.equals = {{"run", Datum("r9")}, {"proc", Datum("P1")},
              {"idx", Datum("00001")}};
  auto r = ExecuteSelect(table_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(QueryTest, AccessPathNames) {
  EXPECT_EQ(AccessPathName(AccessPath::kIndexEq), "index-eq");
  EXPECT_EQ(AccessPathName(AccessPath::kIndexRange), "index-range");
  EXPECT_EQ(AccessPathName(AccessPath::kFullScan), "full-scan");
}

}  // namespace
}  // namespace provlin::storage
