// Hierarchical workflows end to end: a nested dataflow is flattened,
// executed with provenance capture, and lineage queries cross the
// nesting boundary through the namespaced inner processors — the
// paper's "a processor can also be a dataflow itself".

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "lineage/user_view.h"
#include "testbed/workbench.h"
#include "workflow/builder.h"

namespace provlin {
namespace {

using lineage::InterestSet;
using testbed::Workbench;
using workflow::DataflowBuilder;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

/// Inner: normalize (lowercase) then tag each element.
std::shared_ptr<const workflow::Dataflow> InnerPipeline() {
  DataflowBuilder b("inner");
  b.Input("raw", PortType::String(1));
  b.Output("cooked", PortType::String(1));
  b.Proc("normalize")
      .Activity("to_lower")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Proc("tag")
      .Activity("prefix")
      .Config("prefix", "inner:")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:raw", "normalize:x");
  b.Arc("normalize:y", "tag:x");
  b.Arc("tag:y", "workflow:cooked");
  return *b.Build();
}

class NestedExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DataflowBuilder b("outer");
    b.Input("in", PortType::String(1));
    b.Output("out", PortType::String(1));
    b.Proc("pre")
        .Activity("to_upper")
        .In("x", PortType::String(0))
        .Out("y", PortType::String(0));
    b.Proc("sub").Nested(InnerPipeline());
    b.Proc("post")
        .Activity("prefix")
        .Config("prefix", ">")
        .In("x", PortType::String(0))
        .Out("y", PortType::String(0));
    b.Arc("workflow:in", "pre:x");
    b.Arc("pre:y", "sub:raw");
    b.Arc("sub:cooked", "post:x");
    b.Arc("post:y", "workflow:out");
    auto flow = b.Build();  // flattens
    ASSERT_TRUE(flow.ok()) << flow.status().ToString();

    auto registry = std::make_shared<engine::ActivityRegistry>();
    engine::RegisterBuiltinActivities(registry.get());
    wb_ = std::move(*Workbench::Create(*flow, registry));
    auto run = wb_->Run({{"in", Value::StringList({"Ada", "Grace"})}}, "r0");
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    outputs_ = run->outputs;
  }

  std::unique_ptr<Workbench> wb_;
  std::map<std::string, Value> outputs_;
};

TEST_F(NestedExecutionTest, ExecutionThreadsThroughInlinedProcessors) {
  EXPECT_EQ(outputs_.at("out"),
            Value::StringList({">inner:ada", ">inner:grace"}));
}

TEST_F(NestedExecutionTest, LineageFocusedOnInnerProcessor) {
  // Focus on the namespaced inner step directly.
  InterestSet interest{"sub.normalize"};
  auto ni = wb_->Naive().Query(lineage::LineageRequest::SingleRun("r0", {kWorkflowProcessor, "out"},
                               Index({1}), interest));
  auto ip = wb_->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", {kWorkflowProcessor, "out"},
                                    Index({1}), interest));
  ASSERT_TRUE(ni.ok());
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
  ASSERT_EQ(ip->bindings.size(), 1u);
  EXPECT_EQ(ip->bindings[0].port.ToString(), "sub.normalize:x");
  EXPECT_EQ(ip->bindings[0].index, Index({1}));
  EXPECT_EQ(ip->bindings[0].value_repr, "\"GRACE\"");
}

TEST_F(NestedExecutionTest, QueryTargetInsideTheNest) {
  auto ip = wb_->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", {"sub.tag", "y"}, Index({0}),
                                    {kWorkflowProcessor}));
  ASSERT_TRUE(ip.ok());
  ASSERT_EQ(ip->bindings.size(), 1u);
  EXPECT_EQ(ip->bindings[0].port.ToString(), "workflow:in");
  EXPECT_EQ(ip->bindings[0].value_repr, "\"Ada\"");
}

TEST_F(NestedExecutionTest, BlackBoxViewViaUserViewOverTheNest) {
  // Treating the inlined nest as one composite restores the paper's
  // "nested workflow as black box" reading.
  auto view = lineage::UserView::Create(
      wb_->flow(), {{"sub", {"sub.normalize", "sub.tag"}}});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto answer = view->Query(wb_->IndexProj(), "r0",
                            {kWorkflowProcessor, "out"}, Index({0}),
                            {"sub"});
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->bindings.size(), 1u);
  EXPECT_EQ(answer->bindings[0].port.ToString(), "sub:sub.normalize.x");
}

}  // namespace
}  // namespace provlin
