// The central correctness property of the reproduction: on every
// workflow, input, query target, index, and interest set, the IndexProj
// algorithm (Alg. 2, spec-graph traversal + index projection) returns
// EXACTLY the bindings of the naive Def. 1 traversal of the extensional
// provenance trace — while issuing far fewer trace probes on focused
// queries.

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "lineage/engine.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "tests/random_workflow.h"
#include "testbed/gk_workflow.h"
#include "testbed/pd_workflow.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::lineage {
namespace {

using testbed::Workbench;
using testbed_testing::GeneratedWorkflow;
using testbed_testing::IsDotShapeMismatch;
using testbed_testing::MakeRandomWorkflow;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceTest, IndexProjMatchesNaiveOnRandomWorkflows) {
  uint64_t seed = GetParam();
  GeneratedWorkflow gen = MakeRandomWorkflow(seed);
  ASSERT_NE(gen.flow, nullptr);

  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  auto wb_result = Workbench::Create(gen.flow, registry);
  ASSERT_TRUE(wb_result.ok());
  auto wb = std::move(*wb_result);

  auto run = wb->Run(gen.inputs, "r0");
  if (!run.ok() && IsDotShapeMismatch(run.status())) {
    GTEST_SKIP() << "seed " << seed << ": ragged dot pair, skipped";
  }
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  Random rng(seed * 31 + 7);

  // Enumerate query targets: every workflow output and every processor
  // output port that holds a value.
  struct Target {
    PortRef port;
    Value value;
  };
  std::vector<Target> targets;
  for (const auto& [port, value] : run->outputs) {
    targets.push_back({PortRef{kWorkflowProcessor, port}, value});
  }
  for (const workflow::Processor& proc : gen.flow->processors()) {
    for (const workflow::Port& port : proc.outputs) {
      auto it = run->port_values.find(proc.name + ":" + port.name);
      if (it != run->port_values.end()) {
        targets.push_back({PortRef{proc.name, port.name}, it->second});
      }
    }
  }

  // Interest sets: unfocused, workflow-inputs only, one random
  // processor, and a random half of the processors.
  std::vector<InterestSet> interests;
  interests.push_back({});
  interests.push_back({kWorkflowProcessor});
  {
    const auto& procs = gen.flow->processors();
    InterestSet one{procs[rng.Uniform(procs.size())].name};
    interests.push_back(one);
    InterestSet half;
    for (const auto& p : procs) {
      if (rng.Bernoulli(0.5)) half.insert(p.name);
    }
    if (half.empty()) half.insert(procs.front().name);
    half.insert(kWorkflowProcessor);
    interests.push_back(half);
  }

  // Both algorithms through the uniform engine interface — the property
  // is about the abstract contract, not the concrete types.
  const LineageEngine* naive = wb->Engine("naive");
  const LineageEngine* index_proj = wb->Engine("indexproj");
  ASSERT_NE(naive, nullptr);
  ASSERT_NE(index_proj, nullptr);
  int checked = 0;
  for (const Target& target : targets) {
    // Query indices: whole value, plus up to two random leaf indices and
    // one random level-1 index.
    std::vector<Index> indices{Index()};
    std::vector<Index> leaves = target.value.LeafIndices();
    if (!leaves.empty()) {
      indices.push_back(leaves[rng.Uniform(leaves.size())]);
      indices.push_back(leaves[rng.Uniform(leaves.size())]);
    }
    if (target.value.is_list() && target.value.list_size() > 0) {
      indices.push_back(
          Index({static_cast<int32_t>(rng.Uniform(target.value.list_size()))}));
    }

    for (const Index& q : indices) {
      for (const InterestSet& interest : interests) {
        LineageRequest req =
            LineageRequest::SingleRun("r0", target.port, q, interest);
        auto ni = naive->Query(req);
        ASSERT_TRUE(ni.ok())
            << "NI failed on " << target.port.ToString() << q.ToString()
            << ": " << ni.status().ToString();
        auto ip = index_proj->Query(req);
        ASSERT_TRUE(ip.ok())
            << "IndexProj failed on " << target.port.ToString()
            << q.ToString() << ": " << ip.status().ToString();
        ASSERT_EQ(ni->bindings, ip->bindings)
            << "divergence at " << target.port.ToString() << q.ToString()
            << " with |P|=" << interest.size() << " (seed " << seed << ")";
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Range<uint64_t>(1, 81));

// ---------------------------------------------------------------------------
// Batched probe execution is purely physical: engines constructed in
// kSingleProbe and kBatched mode must return byte-identical bindings and
// issue the same logical probes; batching may only reduce descents.
// ---------------------------------------------------------------------------

void ExpectModesAgree(testbed::Workbench* wb, const std::string& run_id,
                      const std::vector<std::pair<PortRef, Index>>& queries,
                      const std::vector<InterestSet>& interests) {
  NaiveLineage ni_single(wb->store(), ProbeExecution::kSingleProbe);
  NaiveLineage ni_batched(wb->store(), ProbeExecution::kBatched);
  auto ip_single = IndexProjLineage::Create(wb->flow(), wb->store(),
                                            ProbeExecution::kSingleProbe);
  auto ip_batched = IndexProjLineage::Create(wb->flow(), wb->store(),
                                             ProbeExecution::kBatched);
  ASSERT_TRUE(ip_single.ok());
  ASSERT_TRUE(ip_batched.ok());

  for (const auto& [port, q] : queries) {
    for (const InterestSet& interest : interests) {
      LineageRequest req =
          LineageRequest::SingleRun(run_id, port, q, interest);
      auto tag = [&] {
        return port.ToString() + q.ToString() + " |P|=" +
               std::to_string(interest.size());
      };

      auto ns = ni_single.Query(req);
      auto nb = ni_batched.Query(req);
      ASSERT_TRUE(ns.ok()) << tag() << ": " << ns.status().ToString();
      ASSERT_TRUE(nb.ok()) << tag() << ": " << nb.status().ToString();
      EXPECT_EQ(ns->bindings, nb->bindings) << "NI modes diverge at " << tag();
      EXPECT_EQ(ns->timing.trace_probes, nb->timing.trace_probes)
          << "NI logical probes changed at " << tag();
      EXPECT_LE(nb->timing.trace_descents, ns->timing.trace_descents)
          << "NI batching added descents at " << tag();

      auto is = ip_single->Query(req);
      auto ib = ip_batched->Query(req);
      ASSERT_TRUE(is.ok()) << tag() << ": " << is.status().ToString();
      ASSERT_TRUE(ib.ok()) << tag() << ": " << ib.status().ToString();
      EXPECT_EQ(is->bindings, ib->bindings)
          << "IndexProj modes diverge at " << tag();
      EXPECT_EQ(is->timing.trace_probes, ib->timing.trace_probes)
          << "IndexProj logical probes changed at " << tag();
      EXPECT_LE(ib->timing.trace_descents, is->timing.trace_descents)
          << "IndexProj batching added descents at " << tag();

      // Cross-check: all four answers agree.
      EXPECT_EQ(nb->bindings, ib->bindings)
          << "NI vs IndexProj diverge at " << tag();
    }
  }
}

/// Workflow-output query set for a finished run: whole value plus every
/// leaf index of each output.
std::vector<std::pair<PortRef, Index>> OutputQueries(
    const engine::RunResult& run) {
  std::vector<std::pair<PortRef, Index>> queries;
  for (const auto& [port, value] : run.outputs) {
    PortRef ref{kWorkflowProcessor, port};
    queries.push_back({ref, Index()});
    for (const Index& leaf : value.LeafIndices()) {
      queries.push_back({ref, leaf});
    }
  }
  return queries;
}

TEST(BatchedModeEquivalence, Synthetic) {
  auto wb = std::move(*Workbench::Synthetic(20));
  ASSERT_TRUE(wb->RunSynthetic(8, "r0").ok());
  std::vector<std::pair<PortRef, Index>> queries = {
      {{kWorkflowProcessor, "RESULT"}, Index()},
      {{kWorkflowProcessor, "RESULT"}, Index({1, 2})},
      {{kWorkflowProcessor, "RESULT"}, Index({3})},
  };
  ExpectModesAgree(&*wb, "r0", queries,
                   {{}, {kWorkflowProcessor}, {testbed::kListGen}});
}

TEST(BatchedModeEquivalence, GK) {
  auto wb = std::move(*Workbench::GK());
  auto run = wb->Run({{"list_of_geneIDList", testbed::GkSampleInput()}}, "r0");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  InterestSet one{wb->flow()->processors().front().name};
  ExpectModesAgree(&*wb, "r0", OutputQueries(*run),
                   {{}, {kWorkflowProcessor}, one});
}

TEST(BatchedModeEquivalence, PD) {
  auto wb = std::move(*Workbench::PD(/*text_steps=*/5));
  auto run = wb->Run({{"terms", testbed::PdSampleInput()}}, "r0");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  InterestSet one{wb->flow()->processors().front().name};
  ExpectModesAgree(&*wb, "r0", OutputQueries(*run),
                   {{}, {kWorkflowProcessor}, one});
}

class ModeEquivalenceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModeEquivalenceFuzz, RandomWorkflows) {
  uint64_t seed = GetParam();
  GeneratedWorkflow gen = MakeRandomWorkflow(seed);
  ASSERT_NE(gen.flow, nullptr);

  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  auto wb_result = Workbench::Create(gen.flow, registry);
  ASSERT_TRUE(wb_result.ok());
  auto wb = std::move(*wb_result);

  auto run = wb->Run(gen.inputs, "r0");
  if (!run.ok() && IsDotShapeMismatch(run.status())) {
    GTEST_SKIP() << "seed " << seed << ": ragged dot pair, skipped";
  }
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  Random rng(seed * 131 + 3);
  std::vector<std::pair<PortRef, Index>> queries;
  for (const auto& [port, value] : run->outputs) {
    PortRef ref{kWorkflowProcessor, port};
    queries.push_back({ref, Index()});
    std::vector<Index> leaves = value.LeafIndices();
    if (!leaves.empty()) {
      queries.push_back({ref, leaves[rng.Uniform(leaves.size())]});
    }
  }
  const auto& procs = gen.flow->processors();
  InterestSet one{procs[rng.Uniform(procs.size())].name};
  ExpectModesAgree(&*wb, "r0", queries, {{}, {kWorkflowProcessor}, one});
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeEquivalenceFuzz,
                         ::testing::Range<uint64_t>(1, 26));

TEST(IdStringEquivalence, ProbeOverloadsReturnIdenticalRows) {
  // The string probe APIs are thin shims over the interned-id overloads;
  // both must see exactly the same rows for every probe shape.
  auto wb = std::move(*Workbench::Synthetic(5));
  ASSERT_TRUE(wb->RunSynthetic(3, "r0").ok());
  const provenance::TraceStore& store = *wb->store();

  auto run = store.LookupSymbol("r0");
  ASSERT_TRUE(run.has_value());

  auto xform_key = [](const provenance::XformRecord& r) {
    return std::make_tuple(r.run, r.event_id, r.processor, r.has_in,
                           r.in_port, r.in_index, r.in_value, r.has_out,
                           r.out_port, r.out_index, r.out_value);
  };
  auto xfer_key = [](const provenance::XferRecord& r) {
    return std::make_tuple(r.run, r.src_proc, r.src_port, r.src_index,
                           r.dst_proc, r.dst_port, r.dst_index, r.value_id);
  };

  for (const char* proc : {"CHAINA_1", "CHAINA_2", "LISTGEN_1"}) {
    auto proc_sym = store.LookupSymbol(proc);
    ASSERT_TRUE(proc_sym.has_value()) << proc;
    for (const Index& q : {Index(), Index({1}), Index({0, 2})}) {
      auto by_name = *store.FindProducing("r0", proc, "y", q);
      auto y = store.LookupSymbol("y");
      std::vector<provenance::XformRecord> by_id;
      if (y.has_value()) {
        by_id = *store.FindProducing(*run, *proc_sym, *y, q);
      }
      ASSERT_EQ(by_name.size(), by_id.size()) << proc << q.ToString();
      for (size_t i = 0; i < by_name.size(); ++i) {
        EXPECT_EQ(xform_key(by_name[i]), xform_key(by_id[i]));
      }

      auto xn = *store.FindXfersInto("r0", proc, "x", q);
      auto x = store.LookupSymbol("x");
      std::vector<provenance::XferRecord> xi;
      if (x.has_value()) xi = *store.FindXfersInto(*run, *proc_sym, *x, q);
      ASSERT_EQ(xn.size(), xi.size()) << proc << q.ToString();
      for (size_t i = 0; i < xn.size(); ++i) {
        EXPECT_EQ(xfer_key(xn[i]), xfer_key(xi[i]));
      }
    }
  }

  // Unknown names resolve to empty answers through the shim, matching
  // "no such symbol ⇒ no rows" on the id path.
  EXPECT_TRUE(store.FindProducing("r0", "NO_SUCH", "y", Index())->empty());
  EXPECT_TRUE(store.FindProducing("no-run", "CHAINA_1", "y", Index())->empty());
}

TEST(EquivalenceFocusedCost, FocusedIndexProjProbesFarLessThanNaive) {
  // On the synthetic testbed the probe asymmetry is the headline result;
  // assert it as an invariant, not just a bench observation.
  auto wb = std::move(*Workbench::Synthetic(30));
  ASSERT_TRUE(wb->RunSynthetic(10, "r0").ok());
  PortRef target{kWorkflowProcessor, "RESULT"};
  InterestSet focused{testbed::kListGen};

  auto ni = wb->Naive().Query(LineageRequest::SingleRun("r0", target, Index({1, 2}), focused));
  auto ip = wb->IndexProj()->Query(LineageRequest::SingleRun("r0", target, Index({1, 2}), focused));
  ASSERT_TRUE(ni.ok());
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
  EXPECT_GE(ni->timing.trace_probes, 60u * 2u);  // grows with l
  EXPECT_LE(ip->timing.trace_probes, 4u);        // constant
}

}  // namespace
}  // namespace provlin::lineage
