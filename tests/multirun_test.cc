// Multi-run lineage queries (§3.4): one spec traversal, per-run trace
// probes, answers spanning traces.

#include <gtest/gtest.h>

#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::lineage {
namespace {

using testbed::Workbench;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

class MultiRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wb_ = std::move(*Workbench::Synthetic(5));
    for (int d = 3; d <= 6; ++d) {
      ASSERT_TRUE(
          wb_->RunSynthetic(d, "run-d" + std::to_string(d)).ok());
      runs_.push_back("run-d" + std::to_string(d));
    }
  }

  std::unique_ptr<Workbench> wb_;
  std::vector<std::string> runs_;
};

TEST_F(MultiRunTest, AnswersSpanAllRunsInScope) {
  PortRef target{kWorkflowProcessor, "RESULT"};
  InterestSet interest{testbed::kListGen};
  auto answer =
      wb_->IndexProj()->Query(LineageRequest::MultiRun(runs_, target, Index({1, 2}), interest));
  ASSERT_TRUE(answer.ok());
  // One binding (the generator's size input) per run.
  ASSERT_EQ(answer->bindings.size(), runs_.size());
  std::set<std::string> seen;
  for (const auto& b : answer->bindings) seen.insert(b.run_id);
  EXPECT_EQ(seen.size(), runs_.size());
}

TEST_F(MultiRunTest, MatchesNaiveMultiRun) {
  PortRef target{kWorkflowProcessor, "RESULT"};
  for (const InterestSet& interest :
       {InterestSet{testbed::kListGen}, InterestSet{},
        InterestSet{kWorkflowProcessor, "CHAINA_3"}}) {
    auto ni = wb_->Naive().Query(LineageRequest::MultiRun(runs_, target, Index({0, 1}),
                                         interest));
    auto ip = wb_->IndexProj()->Query(LineageRequest::MultiRun(runs_, target, Index({0, 1}),
                                              interest));
    ASSERT_TRUE(ni.ok());
    ASSERT_TRUE(ip.ok());
    EXPECT_EQ(ni->bindings, ip->bindings);
  }
}

TEST_F(MultiRunTest, SubsetOfRunsStaysScoped) {
  PortRef target{kWorkflowProcessor, "RESULT"};
  InterestSet interest{testbed::kListGen};
  std::vector<std::string> subset{runs_[1], runs_[3]};
  auto answer = wb_->IndexProj()->Query(LineageRequest::MultiRun(subset, target,
                                                Index({0, 0}), interest));
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->bindings.size(), 2u);
  EXPECT_EQ(answer->bindings[0].run_id, subset[0]);
  EXPECT_EQ(answer->bindings[1].run_id, subset[1]);
}

TEST_F(MultiRunTest, PlanIsSharedAcrossRuns) {
  PortRef target{kWorkflowProcessor, "RESULT"};
  InterestSet interest{testbed::kListGen};
  wb_->IndexProj()->ClearPlanCache();

  auto single =
      wb_->IndexProj()->Query(LineageRequest::SingleRun(runs_[0], target, Index({1, 1}), interest));
  ASSERT_TRUE(single.ok());
  uint64_t probes_single = single->timing.trace_probes;

  // The multi-run query re-uses the cached plan (graph work once) and
  // issues ~|runs| times the per-run probes.
  auto multi = wb_->IndexProj()->Query(LineageRequest::MultiRun(runs_, target, Index({1, 1}),
                                               interest));
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(multi->timing.plan_cache_hit);
  EXPECT_EQ(multi->timing.trace_probes, probes_single * runs_.size());

  // NI, by contrast, repeats the full traversal per run.
  auto ni = wb_->Naive().Query(LineageRequest::MultiRun(runs_, target, Index({1, 1}),
                                       interest));
  ASSERT_TRUE(ni.ok());
  EXPECT_GT(ni->timing.trace_probes, multi->timing.trace_probes * 4);
}

TEST_F(MultiRunTest, EmptyRunListYieldsEmptyAnswer) {
  auto answer = wb_->IndexProj()->Query(LineageRequest::MultiRun({}, {kWorkflowProcessor, "RESULT"}, Index(), {testbed::kListGen}));
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->bindings.empty());
}

TEST_F(MultiRunTest, UnknownRunsContributeNothing) {
  auto answer = wb_->IndexProj()->Query(LineageRequest::MultiRun({"ghost-run", runs_[0]}, {kWorkflowProcessor, "RESULT"},
      Index({0, 0}), {testbed::kListGen}));
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->bindings.size(), 1u);
  EXPECT_EQ(answer->bindings[0].run_id, runs_[0]);
}

TEST_F(MultiRunTest, RunsOverDifferentParametersReportDistinctValues) {
  auto answer = wb_->IndexProj()->Query(LineageRequest::MultiRun(runs_, {kWorkflowProcessor, "RESULT"}, Index({0, 0}),
      {testbed::kListGen}));
  ASSERT_TRUE(answer.ok());
  std::set<std::string> values;
  for (const auto& b : answer->bindings) values.insert(b.value_repr);
  EXPECT_EQ(values, (std::set<std::string>{"3", "4", "5", "6"}));
}

}  // namespace
}  // namespace provlin::lineage
