#include "values/index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace provlin {
namespace {

TEST(Index, EmptyIndexDenotesWholeValue) {
  Index idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.length(), 0u);
  EXPECT_EQ(idx.ToString(), "[]");
  EXPECT_EQ(idx.Encode(), "");
}

TEST(Index, ToStringIsOneBasedLikeThePaper) {
  EXPECT_EQ(Index({0, 1}).ToString(), "[1,2]");
  EXPECT_EQ(Index({4}).ToString(), "[5]");
}

TEST(Index, ConcatMatchesProp1Composition) {
  Index p1({1});
  Index p2({2, 3});
  EXPECT_EQ(p1.Concat(p2), Index({1, 2, 3}));
  EXPECT_EQ(Index().Concat(p1), p1);
  EXPECT_EQ(p1.Concat(Index()), p1);
}

TEST(Index, ChildAppends) {
  EXPECT_EQ(Index({1}).Child(2), Index({1, 2}));
  EXPECT_EQ(Index().Child(0), Index({0}));
}

TEST(Index, SubIndexAndPrefix) {
  Index q({5, 6, 7, 8});
  EXPECT_EQ(q.SubIndex(1, 2), Index({6, 7}));
  EXPECT_EQ(q.SubIndex(0, 0), Index());
  EXPECT_EQ(q.Prefix(3), Index({5, 6, 7}));
  EXPECT_EQ(q.Prefix(0), Index());
}

TEST(Index, IsPrefixOf) {
  EXPECT_TRUE(Index().IsPrefixOf(Index({1, 2})));
  EXPECT_TRUE(Index({1}).IsPrefixOf(Index({1, 2})));
  EXPECT_TRUE(Index({1, 2}).IsPrefixOf(Index({1, 2})));
  EXPECT_FALSE(Index({2}).IsPrefixOf(Index({1, 2})));
  EXPECT_FALSE(Index({1, 2, 3}).IsPrefixOf(Index({1, 2})));
}

TEST(Index, EncodeDecodeRoundTrip) {
  for (const Index& idx :
       {Index(), Index({0}), Index({1, 2}), Index({99998, 0, 7})}) {
    auto decoded = Index::Decode(idx.Encode());
    ASSERT_TRUE(decoded.ok()) << idx.ToString();
    EXPECT_EQ(*decoded, idx);
  }
}

TEST(Index, DecodeRejectsMalformed) {
  EXPECT_FALSE(Index::Decode("1").ok());        // not 5 digits
  EXPECT_FALSE(Index::Decode("abcde").ok());    // not a number
  EXPECT_FALSE(Index::Decode("00001.").ok());   // dangling dot
  EXPECT_FALSE(Index::Decode("000001").ok());   // 6 digits
}

TEST(Index, EncodePreservesOrder) {
  // Property: lexicographic order of encodings == (prefix-aware)
  // component order of indices — required for B+tree prefix scans.
  Random rng(2024);
  std::vector<Index> indices;
  for (int i = 0; i < 200; ++i) {
    std::vector<int32_t> parts;
    size_t len = rng.Uniform(4);
    for (size_t j = 0; j < len; ++j) {
      parts.push_back(static_cast<int32_t>(rng.Uniform(300)));
    }
    indices.emplace_back(parts);
  }
  for (const Index& a : indices) {
    for (const Index& b : indices) {
      bool idx_less = a.parts() < b.parts();
      bool enc_less = a.Encode() < b.Encode();
      EXPECT_EQ(idx_less, enc_less)
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(Index, StrictDescendantEncodingStartsWithDotExtension) {
  // The trace store's "finer bindings" range scan relies on descendants
  // of q having encodings prefixed by Encode(q) + ".".
  Index q({1, 2});
  Index finer({1, 2, 0});
  Index sibling({1, 3});
  EXPECT_EQ(finer.Encode().rfind(q.Encode() + ".", 0), 0u);
  EXPECT_NE(sibling.Encode().rfind(q.Encode() + ".", 0), 0u);
}

TEST(Index, ComparisonOperators) {
  EXPECT_EQ(Index({1, 2}), Index({1, 2}));
  EXPECT_NE(Index({1}), Index({1, 0}));
  EXPECT_LT(Index({1}), Index({1, 0}));  // prefix sorts first
  EXPECT_LT(Index({0, 9}), Index({1}));
}

}  // namespace
}  // namespace provlin
