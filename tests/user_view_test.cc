// Zoom-style user views: composite grouping, interest lowering, answer
// raising.

#include "lineage/user_view.h"

#include <gtest/gtest.h>

#include "testbed/gk_workflow.h"
#include "testbed/workbench.h"

namespace provlin::lineage {
namespace {

using testbed::Workbench;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

class UserViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wb_ = std::move(*Workbench::GK());
    ASSERT_TRUE(
        wb_->Run({{"list_of_geneIDList", testbed::GkSampleInput()}}, "r0")
            .ok());
    // Hide the KEGG branch internals behind two composites.
    auto view = UserView::Create(
        wb_->flow(),
        {{"kegg_lookup",
          {"get_pathways_by_genes", "getPathwayDescriptions"}},
         {"common_branch",
          {"merge_gene_lists", "get_common_pathways", "describe_common"}}});
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    view_.emplace(std::move(*view));
  }

  std::unique_ptr<Workbench> wb_;
  std::optional<UserView> view_;
};

TEST_F(UserViewTest, ValidationRejectsBadComposites) {
  EXPECT_FALSE(UserView::Create(wb_->flow(), {{"c", {}}}).ok());
  EXPECT_FALSE(UserView::Create(wb_->flow(), {{"c", {"ghost"}}}).ok());
  EXPECT_FALSE(
      UserView::Create(wb_->flow(), {{"workflow", {"merge_gene_lists"}}})
          .ok());
  EXPECT_FALSE(UserView::Create(wb_->flow(),
                                {{"get_pathways_by_genes",
                                  {"merge_gene_lists"}}})
                   .ok());
  // Overlapping composites.
  EXPECT_FALSE(UserView::Create(wb_->flow(),
                                {{"a", {"merge_gene_lists"}},
                                 {"b", {"merge_gene_lists"}}})
                   .ok());
}

TEST_F(UserViewTest, BoundaryComputation) {
  // kegg_lookup's only boundary input is the lookup's gene list (fed by
  // normalize_gene_ids, outside the group); getPathwayDescriptions is
  // fed from inside.
  auto boundary = view_->BoundaryInputs("kegg_lookup");
  ASSERT_TRUE(boundary.ok());
  EXPECT_EQ(*boundary, (std::set<std::string>{
                           "get_pathways_by_genes:genes_id_list"}));
  auto common = view_->BoundaryInputs("common_branch");
  ASSERT_TRUE(common.ok());
  EXPECT_EQ(*common, (std::set<std::string>{"merge_gene_lists:lists"}));
  EXPECT_FALSE(view_->BoundaryInputs("ghost").ok());
}

TEST_F(UserViewTest, CompositeOfLookup) {
  ASSERT_NE(view_->CompositeOf("merge_gene_lists"), nullptr);
  EXPECT_EQ(*view_->CompositeOf("merge_gene_lists"), "common_branch");
  EXPECT_EQ(view_->CompositeOf("normalize_gene_ids"), nullptr);
}

TEST_F(UserViewTest, LowerTranslatesComposites) {
  auto lowered = view_->Lower({"kegg_lookup", "normalize_gene_ids"});
  ASSERT_TRUE(lowered.ok());
  EXPECT_EQ(*lowered, (InterestSet{"get_pathways_by_genes",
                                   "normalize_gene_ids"}));
  EXPECT_FALSE(view_->Lower({"nonexistent_thing"}).ok());
  EXPECT_TRUE(view_->Lower({})->empty());
}

TEST_F(UserViewTest, QueryAnswersAtCompositeBoundary) {
  auto answer = view_->Query(wb_->IndexProj(), "r0",
                             {kWorkflowProcessor, "paths_per_gene"},
                             Index({1}), {"kegg_lookup"});
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->bindings.size(), 1u);
  EXPECT_EQ(answer->bindings[0].port.ToString(),
            "kegg_lookup:get_pathways_by_genes.genes_id_list");
  EXPECT_EQ(answer->bindings[0].index, Index({1}));
  EXPECT_EQ(answer->bindings[0].value_repr, "[\"mmu:328788\"]");
}

TEST_F(UserViewTest, InternalBindingsAreHidden) {
  // Unfocused query through the view: composite-internal ports (e.g.
  // getPathwayDescriptions:string) never appear.
  auto answer =
      view_->Query(wb_->IndexProj(), "r0",
                   {kWorkflowProcessor, "paths_per_gene"}, Index({0}), {});
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->bindings.empty());
  for (const auto& b : answer->bindings) {
    EXPECT_EQ(b.port.port.find("getPathwayDescriptions"), std::string::npos)
        << b.ToString();
    EXPECT_EQ(b.port.port.find("describe_common"), std::string::npos)
        << b.ToString();
  }
}

TEST_F(UserViewTest, MemberAskedExplicitlyPassesThrough) {
  // Asking for the member directly (not its composite) keeps the raw
  // binding shape.
  auto answer = view_->Query(wb_->IndexProj(), "r0",
                             {kWorkflowProcessor, "paths_per_gene"},
                             Index({0}), {"get_pathways_by_genes"});
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->bindings.size(), 1u);
  EXPECT_EQ(answer->bindings[0].port.ToString(),
            "get_pathways_by_genes:genes_id_list");
}

TEST_F(UserViewTest, NonCompositeInterestsUnaffected) {
  auto direct = wb_->IndexProj()->Query(LineageRequest::SingleRun("r0", {kWorkflowProcessor, "paths_per_gene"}, Index({0}),
      {"normalize_gene_ids"}));
  auto viewed = view_->Query(wb_->IndexProj(), "r0",
                             {kWorkflowProcessor, "paths_per_gene"},
                             Index({0}), {"normalize_gene_ids"});
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(viewed.ok());
  EXPECT_EQ(direct->bindings, viewed->bindings);
}

}  // namespace
}  // namespace provlin::lineage
