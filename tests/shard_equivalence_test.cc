// Run sharding is purely physical (DESIGN.md §11): a TraceStore opened
// with N > 1 shards must answer every lineage query with bindings
// identical to the unsharded store — for both engines, both probe
// execution modes, single- and multi-run requests — and EXPLAIN must
// report the same logical row counts per step. The suite sweeps the
// paper workloads (GK, PD, synthetic) plus random workflows over
// N ∈ {1, 2, 4, 7}, and TSan-stresses concurrent ingest-while-querying
// on a sharded store with async writer threads.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/builtin_activities.h"
#include "lineage/engine.h"
#include "provenance/schema.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "provenance/trace_store.h"
#include "tests/random_workflow.h"
#include "testbed/gk_workflow.h"
#include "testbed/pd_workflow.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::lineage {
namespace {

using provenance::TraceStoreOptions;
using testbed::Workbench;
using testbed_testing::GeneratedWorkflow;
using testbed_testing::IsDotShapeMismatch;
using testbed_testing::MakeRandomWorkflow;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

/// A workbench with its runs executed, ready to be queried. The factory
/// is invoked once per shard count so every store captures the same
/// trace through an identical execution.
struct Populated {
  std::unique_ptr<Workbench> wb;
  std::vector<std::string> runs;
  std::vector<std::pair<PortRef, Index>> queries;
  std::vector<InterestSet> interests;
};

using Factory = std::function<Populated(const TraceStoreOptions&)>;

const size_t kShardCounts[] = {2, 4, 7};

/// Asserts that `make` produces identical answers at 1 shard and at
/// every count in kShardCounts: bindings and logical probe counts from
/// both engines in both probe modes, multi-run answers, EXPLAIN row
/// counts, and the record totals themselves.
void ExpectShardingIsPurelyPhysical(const Factory& make) {
  TraceStoreOptions base_options;
  base_options.shards = 1;  // pin: immune to PROVLIN_TEST_SHARDS
  Populated base = make(base_options);
  ASSERT_NE(base.wb, nullptr);
  ASSERT_EQ(base.wb->store()->shard_count(), 1u);

  auto base_counts = base.wb->store()->CountAllRecords();
  ASSERT_TRUE(base_counts.ok());
  auto base_runs = base.wb->store()->ListRuns();
  ASSERT_TRUE(base_runs.ok());

  auto base_ip = IndexProjLineage::Create(base.wb->flow(), base.wb->store(),
                                          ProbeExecution::kBatched);
  ASSERT_TRUE(base_ip.ok());

  for (size_t nshards : kShardCounts) {
    TraceStoreOptions options;
    options.shards = nshards;
    Populated sharded = make(options);
    ASSERT_NE(sharded.wb, nullptr);
    provenance::TraceStore* store = sharded.wb->store();
    ASSERT_EQ(store->shard_count(), nshards);

    // Same runs (global sequence order), same record totals.
    auto runs = store->ListRuns();
    ASSERT_TRUE(runs.ok());
    EXPECT_EQ(*runs, *base_runs) << nshards << " shards";
    auto counts = store->CountAllRecords();
    ASSERT_TRUE(counts.ok());
    EXPECT_EQ(counts->xform_rows, base_counts->xform_rows);
    EXPECT_EQ(counts->xfer_rows, base_counts->xfer_rows);
    EXPECT_EQ(counts->value_rows, base_counts->value_rows);

    // Shard routing is a pure function of the run id: both stores at
    // this count agree, and hashes stay within range.
    for (const std::string& run : base.runs) {
      EXPECT_LT(store->ShardOfRun(run), nshards);
      EXPECT_EQ(store->ShardOfRun(run),
                provenance::RunShardHash(run) % nshards);
    }

    // The property is per engine and per probe mode: the SAME engine on
    // the sharded store answers exactly as on the unsharded store.
    // (NI-vs-IndexProj equivalence is the main suite's concern.)
    NaiveLineage ni_single(base.wb->store(), ProbeExecution::kSingleProbe);
    NaiveLineage ni_batched(base.wb->store(), ProbeExecution::kBatched);
    auto ip_single = IndexProjLineage::Create(
        base.wb->flow(), base.wb->store(), ProbeExecution::kSingleProbe);
    auto ip_batched = IndexProjLineage::Create(
        base.wb->flow(), base.wb->store(), ProbeExecution::kBatched);
    ASSERT_TRUE(ip_single.ok());
    ASSERT_TRUE(ip_batched.ok());
    NaiveLineage sh_ni_single(store, ProbeExecution::kSingleProbe);
    NaiveLineage sh_ni_batched(store, ProbeExecution::kBatched);
    auto sh_ip_batched = IndexProjLineage::Create(
        sharded.wb->flow(), store, ProbeExecution::kBatched);
    auto sh_ip_single = IndexProjLineage::Create(
        sharded.wb->flow(), store, ProbeExecution::kSingleProbe);
    ASSERT_TRUE(sh_ip_batched.ok());
    ASSERT_TRUE(sh_ip_single.ok());
    const std::pair<const LineageEngine*, const LineageEngine*> pairs[] = {
        {&ni_single, &sh_ni_single},
        {&ni_batched, &sh_ni_batched},
        {&*ip_single, &*sh_ip_single},
        {&*ip_batched, &*sh_ip_batched},
    };

    for (const auto& [port, q] : base.queries) {
      for (const InterestSet& interest : base.interests) {
        auto tag = [&, port = port, q = q] {
          return port.ToString() + q.ToString() + " |P|=" +
                 std::to_string(interest.size()) + " shards=" +
                 std::to_string(nshards);
        };
        for (const std::string& run : base.runs) {
          LineageRequest req =
              LineageRequest::SingleRun(run, port, q, interest);
          for (const auto& [unsharded, shardeng] : pairs) {
            auto want = unsharded->Query(req);
            ASSERT_TRUE(want.ok())
                << tag() << ": " << want.status().ToString();
            auto got = shardeng->Query(req);
            ASSERT_TRUE(got.ok())
                << shardeng->name() << " " << tag() << ": "
                << got.status().ToString();
            ASSERT_EQ(got->bindings, want->bindings)
                << shardeng->name() << " diverges at " << tag() << " run "
                << run;
            // Sharding must not change the logical probe count either —
            // only where the probes land.
            EXPECT_EQ(got->timing.trace_probes, want->timing.trace_probes)
                << shardeng->name() << " probes changed at " << tag();
          }

          // EXPLAIN against the sharded store mirrors the unsharded
          // plan: same steps, same logical row and binding counts.
          auto base_ex = base_ip->Explain(req);
          auto sh_ex = sh_ip_batched->Explain(req);
          ASSERT_TRUE(base_ex.ok()) << tag();
          ASSERT_TRUE(sh_ex.ok()) << tag();
          EXPECT_EQ(sh_ex->answer.bindings, base_ex->answer.bindings);
          ASSERT_EQ(sh_ex->steps.size(), base_ex->steps.size()) << tag();
          for (size_t s = 0; s < base_ex->steps.size(); ++s) {
            EXPECT_EQ(sh_ex->steps[s].rows, base_ex->steps[s].rows)
                << tag() << " step " << s;
            EXPECT_EQ(sh_ex->steps[s].bindings, base_ex->steps[s].bindings)
                << tag() << " step " << s;
            EXPECT_EQ(sh_ex->steps[s].trace_probes,
                      base_ex->steps[s].trace_probes)
                << tag() << " step " << s;
          }
        }

        // Multi-run requests cross shard boundaries inside one batch —
        // the fan-out/merge path must keep the per-run answers intact.
        if (base.runs.size() > 1) {
          LineageRequest multi;
          multi.runs = base.runs;
          multi.target = port;
          multi.index = q;
          multi.interest = interest;
          for (const auto& [unsharded, shardeng] : pairs) {
            auto want = unsharded->Query(multi);
            ASSERT_TRUE(want.ok()) << tag();
            auto got = shardeng->Query(multi);
            ASSERT_TRUE(got.ok()) << tag();
            EXPECT_EQ(got->bindings, want->bindings)
                << "multi-run " << shardeng->name() << " diverges at "
                << tag();
          }
        }
      }
    }
  }
}

/// Synthetic chains: five runs with distinct list sizes, so runs land
/// on distinct shards with distinct row volumes.
Populated MakeSynthetic(const TraceStoreOptions& options) {
  Populated p;
  auto wb = Workbench::Synthetic(8, options);
  EXPECT_TRUE(wb.ok());
  p.wb = std::move(*wb);
  for (int r = 0; r < 5; ++r) {
    std::string run = "r" + std::to_string(r);
    EXPECT_TRUE(p.wb->RunSynthetic(2 + r, run).ok()) << run;
    p.runs.push_back(run);
  }
  p.queries = {{{kWorkflowProcessor, "RESULT"}, Index()},
               {{kWorkflowProcessor, "RESULT"}, Index({1})},
               {{kWorkflowProcessor, "RESULT"}, Index({1, 2})}};
  p.interests = {{}, {kWorkflowProcessor}, {testbed::kListGen}};
  return p;
}

TEST(ShardEquivalence, Synthetic) {
  ExpectShardingIsPurelyPhysical(MakeSynthetic);
}

TEST(ShardEquivalence, GK) {
  ExpectShardingIsPurelyPhysical([](const TraceStoreOptions& options) {
    Populated p;
    auto wb = Workbench::GK(42, options);
    EXPECT_TRUE(wb.ok());
    p.wb = std::move(*wb);
    for (int r = 0; r < 3; ++r) {
      std::string run = "gk" + std::to_string(r);
      auto result = p.wb->Run(
          {{"list_of_geneIDList", testbed::GkSampleInput()}}, run);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (r == 0) {
        for (const auto& [port, value] : result->outputs) {
          PortRef ref{kWorkflowProcessor, port};
          p.queries.push_back({ref, Index()});
          std::vector<Index> leaves = value.LeafIndices();
          if (!leaves.empty()) p.queries.push_back({ref, leaves.front()});
        }
      }
      p.runs.push_back(run);
    }
    p.interests = {{},
                   {kWorkflowProcessor},
                   {p.wb->flow()->processors().front().name}};
    return p;
  });
}

TEST(ShardEquivalence, PD) {
  ExpectShardingIsPurelyPhysical([](const TraceStoreOptions& options) {
    Populated p;
    auto wb = Workbench::PD(/*text_steps=*/5, /*seed=*/7, options);
    EXPECT_TRUE(wb.ok());
    p.wb = std::move(*wb);
    for (int r = 0; r < 3; ++r) {
      std::string run = "pd" + std::to_string(r);
      auto result = p.wb->Run({{"terms", testbed::PdSampleInput()}}, run);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (r == 0) {
        for (const auto& [port, value] : result->outputs) {
          PortRef ref{kWorkflowProcessor, port};
          p.queries.push_back({ref, Index()});
          std::vector<Index> leaves = value.LeafIndices();
          if (!leaves.empty()) p.queries.push_back({ref, leaves.back()});
        }
      }
      p.runs.push_back(run);
    }
    p.interests = {{}, {kWorkflowProcessor}};
    return p;
  });
}

class ShardEquivalenceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardEquivalenceFuzz, RandomWorkflows) {
  uint64_t seed = GetParam();
  GeneratedWorkflow gen = MakeRandomWorkflow(seed);
  ASSERT_NE(gen.flow, nullptr);

  // Probe-run the workflow once to find out whether this seed executes
  // (ragged dot pairs abort) before sweeping shard counts.
  {
    auto registry = std::make_shared<engine::ActivityRegistry>();
    engine::RegisterBuiltinActivities(registry.get());
    auto wb = std::move(*Workbench::Create(gen.flow, registry));
    auto run = wb->Run(gen.inputs, "probe");
    if (!run.ok() && IsDotShapeMismatch(run.status())) {
      GTEST_SKIP() << "seed " << seed << ": ragged dot pair, skipped";
    }
    ASSERT_TRUE(run.ok()) << run.status().ToString();
  }

  Random rng(seed * 977 + 11);
  ExpectShardingIsPurelyPhysical([&](const TraceStoreOptions& options) {
    Populated p;
    auto registry = std::make_shared<engine::ActivityRegistry>();
    engine::RegisterBuiltinActivities(registry.get());
    auto wb = Workbench::Create(gen.flow, registry, options);
    EXPECT_TRUE(wb.ok());
    p.wb = std::move(*wb);
    for (int r = 0; r < 4; ++r) {
      std::string run = "rw" + std::to_string(r);
      auto result = p.wb->Run(gen.inputs, run);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (r == 0 && p.queries.empty()) {
        for (const auto& [port, value] : result->outputs) {
          PortRef ref{kWorkflowProcessor, port};
          p.queries.push_back({ref, Index()});
          std::vector<Index> leaves = value.LeafIndices();
          if (!leaves.empty()) {
            p.queries.push_back({ref, leaves[rng.Uniform(leaves.size())]});
          }
        }
      }
      p.runs.push_back(run);
    }
    const auto& procs = gen.flow->processors();
    p.interests = {{}, {procs[rng.Uniform(procs.size())].name}};
    return p;
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardEquivalenceFuzz,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Routing sanity: the hash actually spreads runs, and DeleteRun under
// sharding removes exactly the owning shard's rows.
// ---------------------------------------------------------------------------

TEST(ShardRouting, ManyRunsSpreadAcrossShards) {
  TraceStoreOptions options;
  options.shards = 7;
  auto wb = std::move(*Workbench::Synthetic(3, options));
  std::set<size_t> used;
  for (int r = 0; r < 20; ++r) {
    std::string run = "spread" + std::to_string(r);
    ASSERT_TRUE(wb->RunSynthetic(2, run).ok());
    used.insert(wb->store()->ShardOfRun(run));
  }
  // FNV-1a over 20 distinct ids into 7 buckets: a routing bug that pins
  // everything to one shard is what this guards against.
  EXPECT_GE(used.size(), 3u);
  EXPECT_EQ(wb->store()->ListRuns()->size(), 20u);
}

TEST(ShardRouting, DeleteRunTouchesOnlyOwningShard) {
  TraceStoreOptions options;
  options.shards = 4;
  auto wb = std::move(*Workbench::Synthetic(4, options));
  for (int r = 0; r < 6; ++r) {
    ASSERT_TRUE(wb->RunSynthetic(3, "d" + std::to_string(r)).ok());
  }
  auto before = *wb->store()->CountAllRecords();
  auto victim = *wb->store()->CountRecords("d2");
  auto removed = wb->store()->DeleteRun("d2");
  ASSERT_TRUE(removed.ok());
  EXPECT_GT(*removed, 0u);
  auto after = *wb->store()->CountAllRecords();
  EXPECT_EQ(after.xform_rows, before.xform_rows - victim.xform_rows);
  EXPECT_EQ(after.xfer_rows, before.xfer_rows - victim.xfer_rows);
  EXPECT_EQ(after.value_rows, before.value_rows - victim.value_rows);
  // The survivors answer exactly as before.
  for (const char* run : {"d0", "d1", "d3", "d4", "d5"}) {
    auto answer = wb->Naive().Query(LineageRequest::SingleRun(run, {kWorkflowProcessor, "RESULT"}, Index({1}), {testbed::kListGen}));
    ASSERT_TRUE(answer.ok()) << run;
    EXPECT_EQ(answer->bindings.size(), 1u) << run;
  }
  EXPECT_FALSE(wb->store()->DeleteRun("d2").ok());  // NotFound now
}

// ---------------------------------------------------------------------------
// Concurrent ingest while querying: writer threads capture fresh runs
// through async per-shard ingest queues while reader threads replay a
// fixed query against an already-complete run. Run under TSan this
// exercises every lock in the sharded store; functionally the readers
// must never see the complete run's answer change.
// ---------------------------------------------------------------------------

TEST(ShardConcurrency, IngestWhileQueryingKeepsAnswersStable) {
  TraceStoreOptions options;
  options.shards = 4;
  options.async_ingest = true;
  auto wb = std::move(*Workbench::Synthetic(6, options));
  ASSERT_TRUE(wb->RunSynthetic(4, "stable").ok());

  LineageRequest req = LineageRequest::SingleRun(
      "stable", {kWorkflowProcessor, "RESULT"}, Index({1, 2}),
      {testbed::kListGen});
  NaiveLineage naive(wb->store(), ProbeExecution::kBatched);
  auto expected = naive.Query(req);
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(expected->bindings.empty());

  constexpr int kWriters = 2;
  constexpr int kRunsPerWriter = 6;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> reader_errors{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int r = 0; r < kRunsPerWriter; ++r) {
        std::string run = "w" + std::to_string(w) + "_" + std::to_string(r);
        if (!wb->RunSynthetic(3, run).ok()) {
          reader_errors.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto got = naive.Query(req);
        if (!got.ok()) {
          reader_errors.fetch_add(1);
        } else if (got->bindings != expected->bindings) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(reader_errors.load(), 0);
  ASSERT_TRUE(wb->store()->Flush().ok());

  // Everything the writers captured is present and queryable.
  EXPECT_EQ(wb->store()->ListRuns()->size(),
            1u + kWriters * kRunsPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    for (int r = 0; r < kRunsPerWriter; ++r) {
      std::string run = "w" + std::to_string(w) + "_" + std::to_string(r);
      auto answer = naive.Query(LineageRequest::SingleRun(run, {kWorkflowProcessor, "RESULT"}, Index({1}),
          {testbed::kListGen}));
      ASSERT_TRUE(answer.ok()) << run;
      EXPECT_EQ(answer->bindings.size(), 1u) << run;
    }
  }
}

}  // namespace
}  // namespace provlin::lineage
