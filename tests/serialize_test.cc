// Binary reader/writer round trips and truncation robustness.

#include "storage/serialize.h"

#include <gtest/gtest.h>

namespace provlin::storage {
namespace {

TEST(Serialize, PrimitiveRoundTrips) {
  BinaryWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI64(-42);
  w.WriteDouble(3.14159);
  w.WriteString("hello");

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, EmptyString) {
  BinaryWriter w;
  w.WriteString("");
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, StringWithEmbeddedNuls) {
  BinaryWriter w;
  std::string s("a\0b", 3);
  w.WriteString(s);
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadString(), s);
}

TEST(Serialize, DatumRoundTripsAllKinds) {
  std::vector<Datum> datums{Datum::Null(), Datum(int64_t{-5}), Datum(2.5),
                            Datum("text")};
  BinaryWriter w;
  for (const Datum& d : datums) w.WriteDatum(d);
  BinaryReader r(w.buffer());
  for (const Datum& d : datums) {
    auto read = r.ReadDatum();
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, d);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, RowRoundTrip) {
  Row row{Datum("a"), Datum(int64_t{1}), Datum::Null()};
  BinaryWriter w;
  w.WriteRow(row);
  BinaryReader r(w.buffer());
  auto read = r.ReadRow();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, row);
}

TEST(Serialize, ReaderRejectsTruncationAtEveryLength) {
  // Failure injection: every strict prefix of a valid stream must fail
  // with Corruption, never crash or return bogus data silently.
  BinaryWriter w;
  w.WriteDatum(Datum("some string payload"));
  w.WriteDatum(Datum(int64_t{12345}));
  const std::string& full = w.buffer();
  for (size_t len = 0; len < full.size(); ++len) {
    BinaryReader r(full.substr(0, len));
    auto d1 = r.ReadDatum();
    if (!d1.ok()) {
      EXPECT_EQ(d1.status().code(), StatusCode::kCorruption);
      continue;
    }
    auto d2 = r.ReadDatum();
    EXPECT_FALSE(d2.ok()) << "prefix length " << len;
  }
}

TEST(Serialize, ReaderRejectsBadDatumTag) {
  std::string data("\x09", 1);  // tag 9 is not a DatumKind
  BinaryReader r(data);
  auto d = r.ReadDatum();
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kCorruption);
}

TEST(Serialize, ReaderRejectsOverlongStringLength) {
  BinaryWriter w;
  w.WriteU64(1ull << 40);  // absurd length, no payload
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(Serialize, PositionTracksConsumption) {
  BinaryWriter w;
  w.WriteU32(7);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.position(), 0u);
  ASSERT_TRUE(r.ReadU32().ok());
  EXPECT_EQ(r.position(), 4u);
}

}  // namespace
}  // namespace provlin::storage
