// The interned-identifier layer: SymbolTable and IndexDictionary are the
// foundation the storage/provenance/lineage id encoding rests on, so
// their round-trip, uniqueness, and restore semantics are pinned here.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/random.h"

namespace provlin::common {
namespace {

TEST(SymbolTable, InternIsIdempotentAndDense) {
  SymbolTable table;
  EXPECT_TRUE(table.empty());
  SymbolId a = table.Intern("alpha");
  SymbolId b = table.Intern("beta");
  SymbolId a2 = table.Intern("alpha");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  // Ids are dense and assigned in first-intern order.
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTable, RoundTripsNamesAndIds) {
  SymbolTable table;
  std::vector<std::string> names = {"", "x", "processor:port", "väl\nue"};
  std::vector<SymbolId> ids;
  for (const std::string& n : names) ids.push_back(table.Intern(n));
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(table.NameOf(ids[i]), names[i]);
    ASSERT_TRUE(table.Lookup(names[i]).has_value());
    EXPECT_EQ(*table.Lookup(names[i]), ids[i]);
    EXPECT_TRUE(table.Contains(ids[i]));
  }
  EXPECT_FALSE(table.Lookup("never-interned").has_value());
  EXPECT_FALSE(table.Contains(static_cast<SymbolId>(names.size())));
  EXPECT_FALSE(table.Contains(kNoSymbol));
}

TEST(SymbolTable, HeterogeneousLookupNeedsNoAllocation) {
  SymbolTable table;
  SymbolId id = table.Intern(std::string_view("view-key"));
  std::string_view probe = "view-key";
  ASSERT_TRUE(table.Lookup(probe).has_value());
  EXPECT_EQ(*table.Lookup(probe), id);
}

TEST(SymbolTable, NamesSurviveRehash) {
  // NameOf returns a reference into table-owned storage; interning many
  // more symbols (forcing map rehashes) must not invalidate resolution.
  SymbolTable table;
  SymbolId first = table.Intern("first");
  for (int i = 0; i < 10000; ++i) {
    table.Intern("sym" + std::to_string(i));
  }
  EXPECT_EQ(table.NameOf(first), "first");
  EXPECT_EQ(*table.Lookup("sym9999"), 10000u);
}

TEST(SymbolTable, RestoreReproducesPositionalIds) {
  SymbolTable table;
  table.Intern("stale");
  table.Restore({"r0", "P", "x"});
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(*table.Lookup("r0"), 0u);
  EXPECT_EQ(*table.Lookup("P"), 1u);
  EXPECT_EQ(*table.Lookup("x"), 2u);
  EXPECT_FALSE(table.Lookup("stale").has_value());
  // New interns continue after the restored ids.
  EXPECT_EQ(table.Intern("y"), 3u);
}

TEST(IndexDictionary, InternIsIdempotentPerPath) {
  IndexDictionary dict;
  IndexId empty = dict.Intern({});
  IndexId one = dict.Intern({1});
  IndexId deep = dict.Intern({1, 2, 3});
  EXPECT_EQ(dict.Intern({}), empty);
  EXPECT_EQ(dict.Intern({1}), one);
  EXPECT_EQ(dict.Intern({1, 2, 3}), deep);
  EXPECT_NE(one, deep);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.PartsOf(deep), (std::vector<int32_t>{1, 2, 3}));
  EXPECT_FALSE(dict.Lookup({9, 9}).has_value());
}

TEST(IndexDictionary, FuzzRoundTripAndUniqueness) {
  Random rng(4242);
  IndexDictionary dict;
  // Model: path -> id. Random interns and lookups must always agree
  // with the model; distinct paths must never collide.
  std::map<std::vector<int32_t>, IndexId> model;
  for (int step = 0; step < 5000; ++step) {
    std::vector<int32_t> path;
    size_t len = rng.Uniform(5);
    for (size_t i = 0; i < len; ++i) {
      path.push_back(static_cast<int32_t>(rng.Uniform(4)));
    }
    IndexId id = dict.Intern(path);
    auto [it, inserted] = model.emplace(path, id);
    if (!inserted) {
      EXPECT_EQ(it->second, id);
    }
    EXPECT_EQ(dict.PartsOf(id), path);
    ASSERT_TRUE(dict.Lookup(path).has_value());
    EXPECT_EQ(*dict.Lookup(path), id);
  }
  EXPECT_EQ(dict.size(), model.size());
  // Pairwise uniqueness: dense ids, one per distinct path.
  std::vector<bool> seen(dict.size(), false);
  for (const auto& [path, id] : model) {
    ASSERT_LT(id, seen.size());
    EXPECT_FALSE(seen[id]) << "id " << id << " assigned twice";
    seen[id] = true;
  }
}

TEST(IndexDictionary, RestoreReproducesPositionalIds) {
  IndexDictionary dict;
  dict.Intern({7});
  dict.Restore({{}, {0}, {0, 1}});
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(*dict.Lookup({}), 0u);
  EXPECT_EQ(*dict.Lookup({0}), 1u);
  EXPECT_EQ(*dict.Lookup({0, 1}), 2u);
  EXPECT_FALSE(dict.Lookup({7}).has_value());
  EXPECT_EQ(dict.Intern({5}), 3u);
}

}  // namespace
}  // namespace provlin::common
