// Trace capture: recorder semantics, trace-store probes, record counts.

#include <gtest/gtest.h>

#include "provenance/recorder.h"
#include "provenance/schema.h"
#include "storage/query.h"
#include "testbed/workbench.h"

namespace provlin::provenance {
namespace {

using storage::Datum;
using testbed::Workbench;

TEST(Schema, CreatesAllTablesAndIndexes) {
  storage::Database db;
  ASSERT_TRUE(CreateProvenanceSchema(&db).ok());
  EXPECT_EQ(db.TableNames(),
            (std::vector<std::string>{"runs", "val", "xfer", "xform"}));
  EXPECT_TRUE((*db.GetTable(tables::kXform))->HasIndex(indexes::kXformOut));
  EXPECT_TRUE((*db.GetTable(tables::kXform))->HasIndex(indexes::kXformIn));
  EXPECT_TRUE((*db.GetTable(tables::kXfer))->HasIndex(indexes::kXferDst));
  EXPECT_TRUE((*db.GetTable(tables::kVal))->HasIndex(indexes::kValById));
}

TEST(TraceStore, OpenIsIdempotent) {
  storage::Database db;
  ASSERT_TRUE(TraceStore::Open(&db).ok());
  ASSERT_TRUE(TraceStore::Open(&db).ok());  // schema already present
}

TEST(TraceStore, RunRegistrationRejectsDuplicates) {
  storage::Database db;
  auto store = *TraceStore::Open(&db);
  ASSERT_TRUE(store.InsertRun("r1", "wf").ok());
  EXPECT_FALSE(store.InsertRun("r1", "wf").ok());
  ASSERT_TRUE(store.InsertRun("r2", "wf").ok());
  EXPECT_EQ(*store.ListRuns(), (std::vector<std::string>{"r1", "r2"}));
}

TEST(TraceStore, ValueInterningDedups) {
  storage::Database db;
  auto store = *TraceStore::Open(&db);
  int64_t a = *store.InternValue("r1", "\"x\"");
  int64_t b = *store.InternValue("r1", "\"x\"");
  int64_t c = *store.InternValue("r1", "\"y\"");
  int64_t d = *store.InternValue("r2", "\"x\"");  // separate run namespace
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(d, 0);  // ids restart per run
  EXPECT_EQ(*store.GetValueRepr("r1", a), "\"x\"");
  EXPECT_EQ(*store.GetValue("r1", c), Value::Str("y"));
  EXPECT_FALSE(store.GetValueRepr("r1", 99).ok());
}

TEST(Recorder, CapturesSyntheticRunFaithfully) {
  auto wb = std::move(*Workbench::Synthetic(2));
  ASSERT_TRUE((*wb).RunSynthetic(3, "r0").ok());
  TraceStore* store = (*wb).store();

  // LISTGEN_1 ran once, coarse.
  auto gen = *store->FindProducing("r0", "LISTGEN_1", "list", Index());
  ASSERT_EQ(gen.size(), 1u);
  EXPECT_EQ(gen[0].out_index, Index());
  EXPECT_EQ(*store->GetValue("r0", gen[0].out_value),
            Value::StringList({"e0", "e1", "e2"}));

  // CHAINA_1 ran 3 times, fine-grained.
  auto chain = *store->FindProducing("r0", "CHAINA_1", "y", Index());
  EXPECT_EQ(chain.size(), 3u);

  // Final cross product: 3x3 events, 2 dependency rows each.
  auto fin =
      *store->FindProducing("r0", "TWO_TO_ONE_FINAL", "Y", Index());
  EXPECT_EQ(fin.size(), 18u);

  // Workflow-input source row exists with NULL in-side.
  auto src = *store->FindProducing("r0", "workflow", "ListSize", Index());
  ASSERT_EQ(src.size(), 1u);
  EXPECT_FALSE(src[0].has_in);
  EXPECT_TRUE(src[0].has_out);
}

TEST(Recorder, FineGrainedProbeFindsExactElement) {
  auto wb = std::move(*Workbench::Synthetic(2));
  ASSERT_TRUE((*wb).RunSynthetic(4, "r0").ok());
  auto rows =
      *(*wb).store()->FindProducing("r0", "CHAINA_2", "y", Index({2}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].out_index, Index({2}));
  EXPECT_EQ(rows[0].in_index, Index({2}));
}

TEST(Recorder, OverlapProbeFindsCoarserAndFinerBindings) {
  auto wb = std::move(*Workbench::Synthetic(1));
  ASSERT_TRUE((*wb).RunSynthetic(2, "r0").ok());
  TraceStore* store = (*wb).store();

  // LISTGEN out is coarse []; a fine query [1] must still find it.
  auto coarse = *store->FindProducing("r0", "LISTGEN_1", "list", Index({1}));
  ASSERT_EQ(coarse.size(), 1u);
  EXPECT_EQ(coarse[0].out_index, Index());

  // CHAINA_1 out is fine; the whole-value query [] must find all rows.
  auto fine = *store->FindProducing("r0", "CHAINA_1", "y", Index());
  EXPECT_EQ(fine.size(), 2u);
}

TEST(Recorder, XferRowsRecordArcsAtProducerGranularity) {
  auto wb = std::move(*Workbench::Synthetic(2));
  ASSERT_TRUE((*wb).RunSynthetic(3, "r0").ok());
  TraceStore* store = (*wb).store();

  // Into CHAINA_2:x — producer CHAINA_1 is fine-grained: 3 rows.
  auto fine = *store->FindXfersInto("r0", "CHAINA_2", "x", Index());
  EXPECT_EQ(fine.size(), 3u);
  for (const auto& row : fine) {
    EXPECT_EQ(store->NameOf(row.src_proc), "CHAINA_1");
    EXPECT_EQ(row.src_index, row.dst_index);
  }

  // Into CHAINA_1:x — producer LISTGEN_1 is coarse: 1 row.
  auto coarse = *store->FindXfersInto("r0", "CHAINA_1", "x", Index({1}));
  ASSERT_EQ(coarse.size(), 1u);
  EXPECT_EQ(coarse[0].dst_index, Index());

  // Into the workflow output — coarse by the boundary rule.
  auto out = *store->FindXfersInto("r0", "workflow", "RESULT", Index({0, 0}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(store->NameOf(out[0].src_proc), "TWO_TO_ONE_FINAL");
}

TEST(Recorder, CountsMatchClosedForm) {
  // Our recorder's record count is 4*d*l + 2*d^2 + 6 (DESIGN.md §5).
  for (auto [l, d] : {std::pair{3, 4}, std::pair{5, 2}, std::pair{10, 10}}) {
    auto wb = std::move(*Workbench::Synthetic(l));
    ASSERT_TRUE((*wb).RunSynthetic(d, "r0").ok());
    auto counts = *(*wb).store()->CountRecords("r0");
    EXPECT_EQ(counts.TotalDependencyRecords(),
              static_cast<size_t>(4 * d * l + 2 * d * d + 6))
        << "l=" << l << " d=" << d;
  }
}

TEST(Recorder, MultipleRunsShareTheStore) {
  auto wb = std::move(*Workbench::Synthetic(2));
  ASSERT_TRUE((*wb).RunSynthetic(2, "r0").ok());
  ASSERT_TRUE((*wb).RunSynthetic(3, "r1").ok());
  EXPECT_EQ(*(*wb).store()->ListRuns(),
            (std::vector<std::string>{"r0", "r1"}));
  auto c0 = *(*wb).store()->CountRecords("r0");
  auto c1 = *(*wb).store()->CountRecords("r1");
  auto all = *(*wb).store()->CountAllRecords();
  EXPECT_EQ(all.TotalDependencyRecords(),
            c0.TotalDependencyRecords() + c1.TotalDependencyRecords());
  // Probes scoped by run id never see the other run.
  auto rows = *(*wb).store()->FindProducing("r0", "CHAINA_1", "y", Index());
  EXPECT_EQ(rows.size(), 2u);
}

TEST(Recorder, DuplicateRunIdSurfacesAsError) {
  auto wb = std::move(*Workbench::Synthetic(1));
  ASSERT_TRUE((*wb).RunSynthetic(2, "r0").ok());
  auto second = (*wb).RunSynthetic(2, "r0");
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST(TraceStore, ProbesNeverFullScan) {
  // The paper's performance argument requires every trace query to be an
  // index access ("none requiring full table scans").
  auto wb = std::move(*Workbench::Synthetic(3));
  ASSERT_TRUE((*wb).RunSynthetic(4, "r0").ok());
  TraceStore* store = (*wb).store();
  store->db()->ResetStats();
  ASSERT_TRUE(
      store->FindProducing("r0", "CHAINA_2", "y", Index({1})).ok());
  ASSERT_TRUE(store->FindConsuming("r0", "CHAINA_2", "x", Index({1})).ok());
  ASSERT_TRUE(store->FindXfersInto("r0", "CHAINA_2", "x", Index({1})).ok());
  storage::TableStats stats = store->db()->AggregateStats();
  EXPECT_GT(stats.index_probes, 0u);
  EXPECT_EQ(stats.full_scans, 0u);
}

}  // namespace
}  // namespace provlin::provenance
