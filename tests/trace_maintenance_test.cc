// Trace maintenance: pruning runs, run metadata.

#include <gtest/gtest.h>

#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::provenance {
namespace {

using testbed::Workbench;

class TraceMaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wb_ = std::move(*Workbench::Synthetic(3));
    ASSERT_TRUE(wb_->RunSynthetic(3, "keep").ok());
    ASSERT_TRUE(wb_->RunSynthetic(4, "prune").ok());
  }
  std::unique_ptr<Workbench> wb_;
};

TEST_F(TraceMaintenanceTest, RunWorkflowMetadata) {
  EXPECT_EQ(*wb_->store()->RunWorkflow("keep"), "synthetic_l3");
  EXPECT_FALSE(wb_->store()->RunWorkflow("ghost").ok());
}

TEST_F(TraceMaintenanceTest, DeleteRunRemovesAllItsRows) {
  auto before_all = *wb_->store()->CountAllRecords();
  auto prune_counts = *wb_->store()->CountRecords("prune");

  auto removed = wb_->store()->DeleteRun("prune");
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  // Dependency rows + value rows + the runs row itself.
  EXPECT_EQ(*removed, prune_counts.TotalDependencyRecords() +
                          prune_counts.value_rows + 1);

  EXPECT_EQ(*wb_->store()->ListRuns(), (std::vector<std::string>{"keep"}));
  auto after_all = *wb_->store()->CountAllRecords();
  EXPECT_EQ(after_all.TotalDependencyRecords() + after_all.value_rows,
            before_all.TotalDependencyRecords() + before_all.value_rows -
                (*removed - 1));
  // The pruned run's rows are gone from probes too.
  auto rows = *wb_->store()->FindProducing("prune", "CHAINA_1", "y", Index());
  EXPECT_TRUE(rows.empty());
  // The surviving run is untouched.
  auto kept = *wb_->store()->FindProducing("keep", "CHAINA_1", "y", Index());
  EXPECT_EQ(kept.size(), 3u);
}

TEST_F(TraceMaintenanceTest, DeleteRunMaintainsIndexConsistency) {
  ASSERT_TRUE(wb_->store()->DeleteRun("prune").ok());
  for (const std::string& name : wb_->db()->TableNames()) {
    EXPECT_TRUE((*wb_->db()->GetTable(name))->CheckIndexConsistency().ok())
        << name;
  }
}

TEST_F(TraceMaintenanceTest, DeleteUnknownRunFails) {
  auto removed = wb_->store()->DeleteRun("ghost");
  EXPECT_FALSE(removed.ok());
  EXPECT_EQ(removed.status().code(), StatusCode::kNotFound);
}

TEST_F(TraceMaintenanceTest, RunIdIsReusableAfterDelete) {
  ASSERT_TRUE(wb_->store()->DeleteRun("prune").ok());
  ASSERT_TRUE(wb_->RunSynthetic(5, "prune").ok());
  auto rows = *wb_->store()->FindProducing("prune", "CHAINA_1", "y", Index());
  EXPECT_EQ(rows.size(), 5u);
  // Lineage over the re-recorded run works end to end.
  auto answer = wb_->IndexProj()->Query(lineage::LineageRequest::SingleRun("prune", {workflow::kWorkflowProcessor, "RESULT"}, Index({0, 0}),
      {testbed::kListGen}));
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->bindings.size(), 1u);
  EXPECT_EQ(answer->bindings[0].value_repr, "5");
}

}  // namespace
}  // namespace provlin::provenance
