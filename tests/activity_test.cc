// Builtin activities and the registry.

#include <gtest/gtest.h>

#include "engine/activity.h"
#include "engine/builtin_activities.h"

namespace provlin::engine {
namespace {

class ActivityTest : public ::testing::Test {
 protected:
  Result<std::vector<Value>> Invoke(const std::string& name,
                                    const std::vector<Value>& inputs,
                                    const ActivityConfig& config = {}) {
    auto activity = ActivityRegistry::BuiltinsOnly().Create(name, config);
    if (!activity.ok()) return activity.status();
    return (*activity)->Invoke(inputs);
  }
};

TEST_F(ActivityTest, RegistryKnowsBuiltins) {
  const ActivityRegistry& r = ActivityRegistry::BuiltinsOnly();
  for (const char* name :
       {"identity", "transform", "to_upper", "to_lower", "prefix", "concat2",
        "split_words", "join", "flatten", "intersect", "sort_list",
        "unique_list", "head", "count", "list_gen"}) {
    EXPECT_TRUE(r.Has(name)) << name;
  }
  EXPECT_FALSE(r.Has("no_such_activity"));
  EXPECT_FALSE(r.Create("no_such_activity", {}).ok());
}

TEST_F(ActivityTest, RegistryRejectsDuplicates) {
  ActivityRegistry r;
  auto factory = [](const ActivityConfig&)
      -> Result<std::shared_ptr<Activity>> {
    return std::shared_ptr<Activity>(new LambdaActivity(
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          return in;
        }));
  };
  EXPECT_TRUE(r.Register("mine", factory).ok());
  EXPECT_FALSE(r.Register("mine", factory).ok());
  EXPECT_EQ(r.Names(), (std::vector<std::string>{"mine"}));
}

TEST_F(ActivityTest, Identity) {
  auto out = Invoke("identity", {Value::Str("a"), Value::Int(2)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (std::vector<Value>{Value::Str("a"), Value::Int(2)}));
}

TEST_F(ActivityTest, TransformTagsValue) {
  auto out = Invoke("transform", {Value::Str("x")}, {{"tag", "t7"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], Value::Str("t7(x)"));
  // Default tag is "f".
  EXPECT_EQ((*Invoke("transform", {Value::Str("x")}))[0],
            Value::Str("f(x)"));
}

TEST_F(ActivityTest, CaseConversions) {
  EXPECT_EQ((*Invoke("to_upper", {Value::Str("aBc")}))[0], Value::Str("ABC"));
  EXPECT_EQ((*Invoke("to_lower", {Value::Str("aBc")}))[0], Value::Str("abc"));
}

TEST_F(ActivityTest, PrefixUsesConfig) {
  EXPECT_EQ((*Invoke("prefix", {Value::Str("g")}, {{"prefix", "mmu:"}}))[0],
            Value::Str("mmu:g"));
}

TEST_F(ActivityTest, Concat2) {
  EXPECT_EQ((*Invoke("concat2", {Value::Str("a"), Value::Str("b")}))[0],
            Value::Str("a+b"));
  EXPECT_FALSE(Invoke("concat2", {Value::Str("a")}).ok());
}

TEST_F(ActivityTest, SplitAndJoinAreInverse) {
  auto words = Invoke("split_words", {Value::Str("red green blue")});
  ASSERT_TRUE(words.ok());
  EXPECT_EQ((*words)[0], Value::StringList({"red", "green", "blue"}));
  auto joined = Invoke("join", {(*words)[0]});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ((*joined)[0], Value::Str("red green blue"));
}

TEST_F(ActivityTest, SplitSkipsEmptyTokens) {
  auto words = Invoke("split_words", {Value::Str("  a  b ")});
  ASSERT_TRUE(words.ok());
  EXPECT_EQ((*words)[0], Value::StringList({"a", "b"}));
}

TEST_F(ActivityTest, FlattenRemovesOneLevel) {
  Value nested = Value::List({Value::StringList({"a", "b"}),
                              Value::StringList({"c"})});
  EXPECT_EQ((*Invoke("flatten", {nested}))[0],
            Value::StringList({"a", "b", "c"}));
  EXPECT_FALSE(Invoke("flatten", {Value::Str("x")}).ok());
  EXPECT_FALSE(Invoke("flatten", {Value::StringList({"flat"})}).ok());
}

TEST_F(ActivityTest, IntersectKeepsCommonElements) {
  Value lists = Value::List({Value::StringList({"a", "b", "c"}),
                             Value::StringList({"b", "c", "d"}),
                             Value::StringList({"c", "b"})});
  EXPECT_EQ((*Invoke("intersect", {lists}))[0],
            Value::StringList({"b", "c"}));
  // Single list intersects to itself.
  Value one = Value::List({Value::StringList({"x"})});
  EXPECT_EQ((*Invoke("intersect", {one}))[0], Value::StringList({"x"}));
}

TEST_F(ActivityTest, SortAndUnique) {
  EXPECT_EQ((*Invoke("sort_list", {Value::StringList({"c", "a", "b"})}))[0],
            Value::StringList({"a", "b", "c"}));
  EXPECT_EQ(
      (*Invoke("unique_list", {Value::StringList({"b", "a", "b", "a"})}))[0],
      Value::StringList({"b", "a"}));
}

TEST_F(ActivityTest, HeadAndCount) {
  EXPECT_EQ((*Invoke("head", {Value::StringList({"x", "y"})}))[0],
            Value::Str("x"));
  EXPECT_FALSE(Invoke("head", {Value::List({})}).ok());
  EXPECT_EQ((*Invoke("count", {Value::StringList({"x", "y"})}))[0],
            Value::Int(2));
}

TEST_F(ActivityTest, ListGen) {
  auto out = Invoke("list_gen", {Value::Int(3)}, {{"item_prefix", "e"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], Value::StringList({"e0", "e1", "e2"}));
  EXPECT_EQ((*Invoke("list_gen", {Value::Int(0)}))[0], Value::List({}));
  EXPECT_FALSE(Invoke("list_gen", {Value::Int(-1)}).ok());
  EXPECT_FALSE(Invoke("list_gen", {Value::Str("3")}).ok());
}

TEST_F(ActivityTest, TypeErrorsAreInvalidArgument) {
  auto out = Invoke("to_upper", {Value::Int(3)});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace provlin::engine
