// OPM-style JSON export of a run's trace.

#include "provenance/opm_export.h"

#include <gtest/gtest.h>

#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace provlin::provenance {
namespace {

using testbed::Workbench;

class OpmExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wb_ = std::move(*Workbench::Synthetic(1));
    ASSERT_TRUE(wb_->RunSynthetic(2, "r0").ok());
  }
  std::unique_ptr<Workbench> wb_;
};

TEST_F(OpmExportTest, DocumentStructure) {
  auto json = ExportOpmJson(*wb_->store(), "r0");
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"opm\": \"1.1\""), std::string::npos);
  EXPECT_NE(json->find("\"run\": \"r0\""), std::string::npos);
  for (const char* section :
       {"\"artifacts\"", "\"processes\"", "\"used\"",
        "\"wasGeneratedBy\"", "\"wasDerivedFrom\""}) {
    EXPECT_NE(json->find(section), std::string::npos) << section;
  }
  // Fine-grained bindings appear as distinct artifacts.
  EXPECT_NE(json->find("\"CHAINA_1:x[1]\""), std::string::npos);
  EXPECT_NE(json->find("\"CHAINA_1:x[2]\""), std::string::npos);
  // Values carried inline.
  EXPECT_NE(json->find("\\\"e0\\\""), std::string::npos);
}

TEST_F(OpmExportTest, DeterministicAcrossCalls) {
  auto a = ExportOpmJson(*wb_->store(), "r0");
  auto b = ExportOpmJson(*wb_->store(), "r0");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(OpmExportTest, EdgeCountsMatchTrace) {
  auto json = *ExportOpmJson(*wb_->store(), "r0");
  auto counts = *wb_->store()->CountRecords("r0");
  auto count_in_section = [&](const char* name) {
    size_t begin = json.find(std::string("\"") + name + "\": [");
    EXPECT_NE(begin, std::string::npos) << name;
    size_t end = json.find("\n  ]", begin);
    size_t n = 0;
    for (size_t pos = json.find('{', begin);
         pos != std::string::npos && pos < end;
         pos = json.find('{', pos + 1)) {
      ++n;
    }
    return n;
  };
  size_t used = count_in_section("used");
  size_t generated = count_in_section("wasGeneratedBy");
  size_t derived = count_in_section("wasDerivedFrom");
  // Every xform dependency row yields one used and one wasGeneratedBy
  // (the workflow-input source row yields only wasGeneratedBy).
  EXPECT_EQ(derived, counts.xfer_rows);
  EXPECT_EQ(used + 1, counts.xform_rows);
  EXPECT_EQ(generated, counts.xform_rows);
}

TEST_F(OpmExportTest, UnknownRunFails) {
  EXPECT_FALSE(ExportOpmJson(*wb_->store(), "ghost").ok());
}

}  // namespace
}  // namespace provlin::provenance
