#include "storage/bplus_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace provlin::storage {
namespace {

Key K(int64_t v) { return Key{Datum(v)}; }
Key K2(int64_t a, const std::string& b) { return Key{Datum(a), Datum(b)}; }

TEST(BPlusTree, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Lookup(K(1)).empty());
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTree, InsertAndLookup) {
  BPlusTree tree;
  tree.Insert(K(5), 50);
  tree.Insert(K(3), 30);
  tree.Insert(K(7), 70);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Lookup(K(3)), (std::vector<uint64_t>{30}));
  EXPECT_EQ(tree.Lookup(K(5)), (std::vector<uint64_t>{50}));
  EXPECT_TRUE(tree.Lookup(K(4)).empty());
}

TEST(BPlusTree, DuplicateKeysKeepAllRids) {
  BPlusTree tree;
  tree.Insert(K(1), 10);
  tree.Insert(K(1), 11);
  tree.Insert(K(1), 12);
  EXPECT_EQ(tree.Lookup(K(1)), (std::vector<uint64_t>{10, 11, 12}));
}

TEST(BPlusTree, DuplicateEntryIgnored) {
  BPlusTree tree;
  tree.Insert(K(1), 10);
  tree.Insert(K(1), 10);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTree, EraseRemovesOnlyThatEntry) {
  BPlusTree tree;
  tree.Insert(K(1), 10);
  tree.Insert(K(1), 11);
  EXPECT_TRUE(tree.Erase(K(1), 10));
  EXPECT_EQ(tree.Lookup(K(1)), (std::vector<uint64_t>{11}));
  EXPECT_FALSE(tree.Erase(K(1), 10));  // already gone
  EXPECT_FALSE(tree.Erase(K(9), 1));   // never existed
}

TEST(BPlusTree, SplitsGrowHeight) {
  BPlusTree tree;
  for (int64_t i = 0; i < 1000; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  EXPECT_GT(tree.height(), 1);
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(tree.Lookup(K(i)).size(), 1u) << i;
  }
}

TEST(BPlusTree, IteratorEnumeratesInOrder) {
  BPlusTree tree;
  for (int64_t i = 99; i >= 0; --i) tree.Insert(K(i), static_cast<uint64_t>(i));
  int64_t expect = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key()[0].AsInt(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 100);
}

TEST(BPlusTree, SeekFindsLowerBound) {
  BPlusTree tree;
  for (int64_t i = 0; i < 100; i += 2) tree.Insert(K(i), static_cast<uint64_t>(i));
  auto it = tree.Seek(K(31));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 32);
  it = tree.Seek(K(98));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 98);
  EXPECT_FALSE(tree.Seek(K(99)).Valid());
}

TEST(BPlusTree, PrefixLookupOnCompositeKeys) {
  BPlusTree tree;
  uint64_t rid = 0;
  for (int64_t g = 0; g < 5; ++g) {
    for (int m = 0; m < 7; ++m) {
      tree.Insert(K2(g, "m" + std::to_string(m)), rid++);
    }
  }
  EXPECT_EQ(tree.PrefixLookup({Datum(int64_t{2})}).size(), 7u);
  EXPECT_EQ(tree.PrefixLookup({}).size(), 35u);
  EXPECT_TRUE(tree.PrefixLookup({Datum(int64_t{9})}).empty());
  EXPECT_EQ(tree.Lookup(K2(2, "m3")).size(), 1u);
}

TEST(BPlusTree, RangeLookupInclusiveBounds) {
  BPlusTree tree;
  for (int64_t i = 0; i < 50; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  auto rids = tree.RangeLookup(K(10), K(20));
  EXPECT_EQ(rids.size(), 11u);
  EXPECT_EQ(rids.front(), 10u);
  EXPECT_EQ(rids.back(), 20u);
}

TEST(BPlusTree, StringPrefixRangeScan) {
  // The pattern the trace store uses for "all finer indices below q".
  BPlusTree tree;
  tree.Insert({Datum("00001")}, 1);
  tree.Insert({Datum("00001.00000")}, 2);
  tree.Insert({Datum("00001.00001")}, 3);
  tree.Insert({Datum("00002")}, 4);
  auto rids = tree.RangeLookup({Datum("00001.")},
                               {Datum(std::string("00001.") + "\xff\xff")});
  EXPECT_EQ(rids, (std::vector<uint64_t>{2, 3}));
}

TEST(BPlusTree, DeleteDownToEmptyShrinksRoot) {
  BPlusTree tree;
  for (int64_t i = 0; i < 500; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  EXPECT_GT(tree.height(), 1);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Erase(K(i), static_cast<uint64_t>(i))) << i;
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Randomized differential test against std::multimap-like reference.
// ---------------------------------------------------------------------------

class BPlusTreeRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeRandomized, MatchesReferenceUnderRandomWorkload) {
  Random rng(GetParam());
  BPlusTree tree;
  std::map<std::pair<int64_t, uint64_t>, bool> reference;

  for (int op = 0; op < 4000; ++op) {
    int64_t key = static_cast<int64_t>(rng.Uniform(200));
    uint64_t rid = rng.Uniform(5);
    if (rng.Bernoulli(0.6)) {
      tree.Insert(K(key), rid);
      reference[{key, rid}] = true;
    } else {
      bool erased = tree.Erase(K(key), rid);
      bool expected = reference.erase({key, rid}) > 0;
      ASSERT_EQ(erased, expected) << "op " << op;
    }
    if (op % 512 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  ASSERT_EQ(tree.size(), reference.size());

  // Every reference entry is findable; iteration matches exactly.
  auto it = tree.Begin();
  for (const auto& [kr, _] : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key()[0].AsInt(), kr.first);
    EXPECT_EQ(it.rid(), kr.second);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace provlin::storage
