#include "storage/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"

namespace provlin::storage {
namespace {

Key K(int64_t v) { return Key{Datum(v)}; }
Key K2(int64_t a, const std::string& b) { return Key{Datum(a), Datum(b)}; }

TEST(BPlusTree, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Lookup(K(1)).empty());
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTree, InsertAndLookup) {
  BPlusTree tree;
  tree.Insert(K(5), 50);
  tree.Insert(K(3), 30);
  tree.Insert(K(7), 70);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Lookup(K(3)), (std::vector<uint64_t>{30}));
  EXPECT_EQ(tree.Lookup(K(5)), (std::vector<uint64_t>{50}));
  EXPECT_TRUE(tree.Lookup(K(4)).empty());
}

TEST(BPlusTree, DuplicateKeysKeepAllRids) {
  BPlusTree tree;
  tree.Insert(K(1), 10);
  tree.Insert(K(1), 11);
  tree.Insert(K(1), 12);
  EXPECT_EQ(tree.Lookup(K(1)), (std::vector<uint64_t>{10, 11, 12}));
}

TEST(BPlusTree, DuplicateEntryIgnored) {
  BPlusTree tree;
  tree.Insert(K(1), 10);
  tree.Insert(K(1), 10);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTree, EraseRemovesOnlyThatEntry) {
  BPlusTree tree;
  tree.Insert(K(1), 10);
  tree.Insert(K(1), 11);
  EXPECT_TRUE(tree.Erase(K(1), 10));
  EXPECT_EQ(tree.Lookup(K(1)), (std::vector<uint64_t>{11}));
  EXPECT_FALSE(tree.Erase(K(1), 10));  // already gone
  EXPECT_FALSE(tree.Erase(K(9), 1));   // never existed
}

TEST(BPlusTree, SplitsGrowHeight) {
  BPlusTree tree;
  for (int64_t i = 0; i < 1000; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  EXPECT_GT(tree.height(), 1);
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(tree.Lookup(K(i)).size(), 1u) << i;
  }
}

TEST(BPlusTree, IteratorEnumeratesInOrder) {
  BPlusTree tree;
  for (int64_t i = 99; i >= 0; --i) tree.Insert(K(i), static_cast<uint64_t>(i));
  int64_t expect = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key()[0].AsInt(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 100);
}

TEST(BPlusTree, SeekFindsLowerBound) {
  BPlusTree tree;
  for (int64_t i = 0; i < 100; i += 2) tree.Insert(K(i), static_cast<uint64_t>(i));
  auto it = tree.Seek(K(31));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 32);
  it = tree.Seek(K(98));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 98);
  EXPECT_FALSE(tree.Seek(K(99)).Valid());
}

TEST(BPlusTree, PrefixLookupOnCompositeKeys) {
  BPlusTree tree;
  uint64_t rid = 0;
  for (int64_t g = 0; g < 5; ++g) {
    for (int m = 0; m < 7; ++m) {
      tree.Insert(K2(g, "m" + std::to_string(m)), rid++);
    }
  }
  EXPECT_EQ(tree.PrefixLookup({Datum(int64_t{2})}).size(), 7u);
  EXPECT_EQ(tree.PrefixLookup({}).size(), 35u);
  EXPECT_TRUE(tree.PrefixLookup({Datum(int64_t{9})}).empty());
  EXPECT_EQ(tree.Lookup(K2(2, "m3")).size(), 1u);
}

TEST(BPlusTree, RangeLookupInclusiveBounds) {
  BPlusTree tree;
  for (int64_t i = 0; i < 50; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  auto rids = tree.RangeLookup(K(10), K(20));
  EXPECT_EQ(rids.size(), 11u);
  EXPECT_EQ(rids.front(), 10u);
  EXPECT_EQ(rids.back(), 20u);
}

TEST(BPlusTree, StringPrefixRangeScan) {
  // The pattern the trace store uses for "all finer indices below q".
  BPlusTree tree;
  tree.Insert({Datum("00001")}, 1);
  tree.Insert({Datum("00001.00000")}, 2);
  tree.Insert({Datum("00001.00001")}, 3);
  tree.Insert({Datum("00002")}, 4);
  auto rids = tree.RangeLookup({Datum("00001.")},
                               {Datum(std::string("00001.") + "\xff\xff")});
  EXPECT_EQ(rids, (std::vector<uint64_t>{2, 3}));
}

TEST(BPlusTree, DeleteDownToEmptyShrinksRoot) {
  BPlusTree tree;
  for (int64_t i = 0; i < 500; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  EXPECT_GT(tree.height(), 1);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Erase(K(i), static_cast<uint64_t>(i))) << i;
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// MultiSeek: batched probes must answer exactly like repeated single
// lookups, for fewer descents.
// ---------------------------------------------------------------------------

using Probe = BPlusTree::Probe;

TEST(BPlusTreeMultiSeek, EmptyBatchCostsNothing) {
  BPlusTree tree;
  for (int64_t i = 0; i < 100; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  BPlusTree::MultiSeekResult r = tree.MultiSeek({});
  EXPECT_EQ(r.num_probes(), 0u);
  EXPECT_TRUE(r.rids.empty());
  EXPECT_EQ(r.descents, 0u);
}

TEST(BPlusTreeMultiSeek, SortedPointProbesShareOneDescent) {
  BPlusTree tree;
  for (int64_t i = 0; i < 200; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  // Consecutive keys live on the same or adjacent leaves, so the whole
  // sorted batch should cost exactly one root-to-leaf descent.
  std::vector<Probe> probes;
  for (int64_t i = 10; i < 20; ++i) {
    probes.push_back({Probe::Kind::kPoint, K(i), {}});
  }
  BPlusTree::MultiSeekResult r = tree.MultiSeek(probes);
  ASSERT_EQ(r.num_probes(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(r.MatchesOf(i), tree.Lookup(probes[i].lo)) << i;
  }
  EXPECT_EQ(r.descents, 1u);
}

TEST(BPlusTreeMultiSeek, DuplicateProbesReuseTheAnchor) {
  BPlusTree tree;
  for (int64_t i = 0; i < 500; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  std::vector<Probe> probes(5, Probe{Probe::Kind::kPoint, K(123), {}});
  BPlusTree::MultiSeekResult r = tree.MultiSeek(probes);
  for (size_t i = 0; i < r.num_probes(); ++i) {
    EXPECT_EQ(r.MatchesOf(i), (std::vector<uint64_t>{123}));
  }
  EXPECT_EQ(r.descents, 1u);
}

TEST(BPlusTreeMultiSeek, UnsortedProbesStayCorrect) {
  BPlusTree tree;
  for (int64_t i = 0; i < 300; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  std::vector<Probe> probes{{Probe::Kind::kPoint, K(250), {}},
                            {Probe::Kind::kPoint, K(3), {}},
                            {Probe::Kind::kPoint, K(170), {}}};
  BPlusTree::MultiSeekResult r = tree.MultiSeek(probes);
  EXPECT_EQ(r.MatchesOf(0), tree.Lookup(K(250)));
  EXPECT_EQ(r.MatchesOf(1), tree.Lookup(K(3)));
  EXPECT_EQ(r.MatchesOf(2), tree.Lookup(K(170)));
}

TEST(BPlusTreeMultiSeek, ProbesPastTheEndPinToTheTail) {
  BPlusTree tree;
  for (int64_t i = 0; i < 64; ++i) tree.Insert(K(i), static_cast<uint64_t>(i));
  std::vector<Probe> probes{{Probe::Kind::kPoint, K(1000), {}},
                            {Probe::Kind::kPoint, K(2000), {}},
                            {Probe::Kind::kPoint, K(3000), {}}};
  BPlusTree::MultiSeekResult r = tree.MultiSeek(probes);
  EXPECT_TRUE(r.rids.empty());
  // Once the batch walks off the end of the chain, later (larger) probes
  // must not pay fresh descents.
  EXPECT_EQ(r.descents, 1u);
}

class MultiSeekFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiSeekFuzz, MatchesRepeatedSingleLookups) {
  Random rng(GetParam());
  BPlusTree tree;
  // Clustered keys with duplicates so probes hit multi-rid runs, empty
  // gaps, and leaf boundaries.
  size_t n = 500 + rng.Uniform(2000);
  for (size_t i = 0; i < n; ++i) {
    tree.Insert(K(static_cast<int64_t>(rng.Uniform(400))), rng.Uniform(6));
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());

  for (int round = 0; round < 10; ++round) {
    size_t batch = rng.Uniform(40);  // includes empty batches
    std::vector<Probe> probes;
    probes.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      int64_t a = static_cast<int64_t>(rng.Uniform(450));
      switch (rng.Uniform(3)) {
        case 0:
          probes.push_back({Probe::Kind::kPoint, K(a), {}});
          break;
        case 1:
          // Composite prefix: first component only.
          probes.push_back({Probe::Kind::kPrefix, K(a), {}});
          break;
        default: {
          int64_t b = a + static_cast<int64_t>(rng.Uniform(30));
          probes.push_back({Probe::Kind::kRange, K(a), K(b)});
          break;
        }
      }
    }
    // Sort by lower bound (the production path always does); ties and
    // overlapping ranges stay in the batch.
    std::stable_sort(probes.begin(), probes.end(),
                     [](const Probe& x, const Probe& y) {
                       return CompareKeys(x.lo, y.lo) < 0;
                     });
    BPlusTree::MultiSeekResult r = tree.MultiSeek(probes);
    ASSERT_EQ(r.num_probes(), probes.size());
    EXPECT_LE(r.descents, probes.size());
    for (size_t i = 0; i < probes.size(); ++i) {
      std::vector<uint64_t> expect;
      switch (probes[i].kind) {
        case Probe::Kind::kPoint:
          expect = tree.Lookup(probes[i].lo);
          break;
        case Probe::Kind::kPrefix:
          expect = tree.PrefixLookup(probes[i].lo);
          break;
        case Probe::Kind::kRange:
          expect = tree.RangeLookup(probes[i].lo, probes[i].hi);
          break;
      }
      ASSERT_EQ(r.MatchesOf(i), expect)
          << "seed " << GetParam() << " round " << round << " probe " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSeekFuzz,
                         ::testing::Values(7, 11, 19, 23, 42, 77, 101, 2024));

// ---------------------------------------------------------------------------
// Randomized differential test against std::multimap-like reference.
// ---------------------------------------------------------------------------

class BPlusTreeRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeRandomized, MatchesReferenceUnderRandomWorkload) {
  Random rng(GetParam());
  BPlusTree tree;
  std::map<std::pair<int64_t, uint64_t>, bool> reference;

  for (int op = 0; op < 4000; ++op) {
    int64_t key = static_cast<int64_t>(rng.Uniform(200));
    uint64_t rid = rng.Uniform(5);
    if (rng.Bernoulli(0.6)) {
      tree.Insert(K(key), rid);
      reference[{key, rid}] = true;
    } else {
      bool erased = tree.Erase(K(key), rid);
      bool expected = reference.erase({key, rid}) > 0;
      ASSERT_EQ(erased, expected) << "op " << op;
    }
    if (op % 512 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  ASSERT_EQ(tree.size(), reference.size());

  // Every reference entry is findable; iteration matches exactly.
  auto it = tree.Begin();
  for (const auto& [kr, _] : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key()[0].AsInt(), kr.first);
    EXPECT_EQ(it.rid(), kr.second);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace provlin::storage
