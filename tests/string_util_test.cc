#include "common/string_util.h"

#include <gtest/gtest.h>

namespace provlin {
namespace {

TEST(Split, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, KeepsEmptyTokens) {
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Split, EmptyInputYieldsOneEmptyToken) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(Split, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Join, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, "."), '.'), parts);
}

TEST(Join, EmptyVector) { EXPECT_EQ(Join({}, ","), ""); }

TEST(Join, SingleElement) { EXPECT_EQ(Join({"only"}, ", "), "only"); }

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "llo"));
  EXPECT_FALSE(EndsWith("llo", "hello"));
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n a \r"), "a");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ParseInt64, ValidInputs) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
}

TEST(ParseInt64, RejectsGarbage) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("x12", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &v));  // overflow
}

TEST(ParseDouble, ValidInputs) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.5abc", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

}  // namespace
}  // namespace provlin
