#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace provlin::common::metrics {
namespace {

// Each TEST runs in its own process under gtest_discover_tests, so the
// global registry starts empty; tests that use it still pick distinct
// instrument names to stay robust under single-process runs.

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsSumExactlyWhenQuiescent) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (bounds are inclusive upper bounds)
  h.Observe(5.0);    // <= 10
  h.Observe(100.5);  // overflow
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 5.0 + 100.5);
}

TEST(HistogramTest, EmptyPercentileReturnsDocumentedSentinel) {
  // An empty histogram reports kEmptyHistogramPercentile (0.0, not
  // NaN) at every quantile, so percentile consumers that feed straight
  // into JSON/arithmetic never see a poison value; "no data" vs "all
  // zeros" is distinguished by snap.count.
  Histogram h({1.0, 10.0, 100.0});
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, 0u);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(snap.Percentile(q), kEmptyHistogramPercentile) << "q=" << q;
  }
  // A default-constructed snapshot (no buckets at all) hits the same
  // sentinel instead of indexing into empty vectors.
  HistogramSnapshot none;
  EXPECT_EQ(none.Percentile(0.5), kEmptyHistogramPercentile);
  // And after Reset the histogram is "empty" again for Percentile too.
  h.Observe(5.0);
  EXPECT_GT(h.Snapshot().Percentile(0.5), 0.0);
  h.Reset();
  EXPECT_EQ(h.Snapshot().Percentile(0.5), kEmptyHistogramPercentile);
}

TEST(HistogramTest, ResetClearsCountsAndSum) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Reset();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.counts[0], 0u);
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("test/alpha");
  Counter* b = reg.GetCounter("test/alpha");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("test/beta"));
}

TEST(RegistryTest, FirstRegistrationFixesHistogramBounds) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("test/lat", {1.0, 2.0});
  Histogram* again = reg.GetHistogram("test/lat", {99.0});
  EXPECT_EQ(h, again);
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(RegistryTest, SnapshotIsDetachedFromLiveInstruments) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test/count");
  c->Add(5);
  MetricsSnapshot snap = reg.Snapshot();
  c->Add(10);
  EXPECT_EQ(snap.counter("test/count"), 5u);
  EXPECT_EQ(reg.Snapshot().counter("test/count"), 15u);
  // Absent names read as zero.
  EXPECT_EQ(snap.counter("test/never_registered"), 0u);
  EXPECT_EQ(snap.gauge("test/never_registered"), 0);
  EXPECT_DOUBLE_EQ(snap.histogram_sum("test/never_registered"), 0.0);
}

TEST(RegistryTest, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry reg;
  reg.GetCounter("test/a")->Add(3);
  reg.GetGauge("test/g")->Set(9);
  reg.GetHistogram("test/h", {1.0})->Observe(0.5);
  size_t before = reg.num_instruments();
  reg.Reset();
  EXPECT_EQ(reg.num_instruments(), before);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("test/a"), 0u);
  EXPECT_EQ(snap.gauge("test/g"), 0);
  EXPECT_EQ(snap.histograms.at("test/h").count, 0u);
}

TEST(RegistryTest, ConcurrentGetAndBumpIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.GetCounter("test/shared")->Increment();
        reg.GetCounter("test/per_thread_" + std::to_string(t))->Increment();
        reg.GetHistogram("test/lat")->Observe(static_cast<double>(i % 7));
      }
    });
  }
  for (auto& t : threads) t.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("test/shared"),
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counter("test/per_thread_" + std::to_string(t)),
              static_cast<uint64_t>(kIters));
  }
  EXPECT_EQ(snap.histograms.at("test/lat").count,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ExpositionTest, PrometheusTextGolden) {
  MetricsRegistry reg;
  reg.GetCounter("storage/index_probes")->Add(12);
  reg.GetGauge("service/last_batch_wall_us")->Set(2500);
  reg.GetHistogram("lineage/t2_ms", {1.0, 10.0})->Observe(0.5);
  reg.GetHistogram("lineage/t2_ms")->Observe(3.0);
  std::string text = reg.Snapshot().ToPrometheusText();
  EXPECT_EQ(text,
            "# TYPE provlin_storage_index_probes counter\n"
            "provlin_storage_index_probes 12\n"
            "# TYPE provlin_service_last_batch_wall_us gauge\n"
            "provlin_service_last_batch_wall_us 2500\n"
            "# TYPE provlin_lineage_t2_ms histogram\n"
            "provlin_lineage_t2_ms_bucket{le=\"1\"} 1\n"
            "provlin_lineage_t2_ms_bucket{le=\"10\"} 2\n"
            "provlin_lineage_t2_ms_bucket{le=\"+Inf\"} 2\n"
            "provlin_lineage_t2_ms_sum 3.5\n"
            "provlin_lineage_t2_ms_count 2\n");
}

TEST(ExpositionTest, JsonIsWellFormedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("a/b")->Add(1);
  reg.GetGauge("c")->Set(-2);
  reg.GetHistogram("d", {1.0})->Observe(0.5);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"a/b\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"c\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  // Crude but effective balance check for hand-rolled emitters.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(GlobalRegistryTest, FreeFunctionsHitTheGlobalRegistry) {
  Counter* c = GetCounter("metrics_test/global");
  c->Add(3);
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().counter(
                "metrics_test/global"),
            3u);
}

}  // namespace
}  // namespace provlin::common::metrics
