// Testbed components: synthetic generator structure, GK and PD
// workflows, KEGG/PubMed simulators.

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "testbed/gk_workflow.h"
#include "testbed/kegg_sim.h"
#include "testbed/pd_workflow.h"
#include "testbed/pubmed_sim.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"
#include "workflow/depth_propagation.h"

namespace provlin::testbed {
namespace {

TEST(Synthetic, StructureMatchesFig5) {
  auto flow = *MakeSyntheticWorkflow(4);
  EXPECT_EQ(flow->num_processors(), static_cast<size_t>(SyntheticNodeCount(4)));
  EXPECT_NE(flow->FindProcessor(kListGen), nullptr);
  EXPECT_NE(flow->FindProcessor(kFinal), nullptr);
  EXPECT_NE(flow->FindProcessor(ChainAProc(1)), nullptr);
  EXPECT_NE(flow->FindProcessor(ChainBProc(4)), nullptr);
  EXPECT_EQ(flow->FindProcessor("CHAINA_5"), nullptr);
  EXPECT_FALSE(MakeSyntheticWorkflow(0).ok());
}

TEST(Synthetic, DIsControlledAtRunTime) {
  auto wb = std::move(*Workbench::Synthetic(2));
  auto r1 = *wb->RunSynthetic(3, "a");
  auto r2 = *wb->RunSynthetic(5, "b");
  EXPECT_EQ(r1.outputs.at("RESULT").list_size(), 3u);
  EXPECT_EQ(r2.outputs.at("RESULT").list_size(), 5u);
  EXPECT_EQ(r2.outputs.at("RESULT").elements()[0].list_size(), 5u);
}

TEST(Synthetic, AllChainProcessorsAreOneToOne) {
  auto flow = *MakeSyntheticWorkflow(3);
  auto depths = *workflow::PropagateDepths(*flow);
  for (int k = 1; k <= 3; ++k) {
    EXPECT_EQ(depths.ForProcessor(ChainAProc(k)).iteration_levels, 1);
    EXPECT_EQ(depths.ForProcessor(ChainBProc(k)).iteration_levels, 1);
  }
  EXPECT_EQ(depths.ForProcessor(kFinal).iteration_levels, 2);
  EXPECT_EQ(depths.ForProcessor(kListGen).iteration_levels, 0);
}

TEST(Synthetic, ValuesStayDistinctAlongChains) {
  // Every chain processor tags its input, so lineage-relevant values
  // differ at every step (no accidental value collisions in the trace).
  auto wb = std::move(*Workbench::Synthetic(2));
  auto run = *wb->RunSynthetic(2, "r");
  EXPECT_EQ(*run.outputs.at("RESULT").At(Index({0, 1})),
            Value::Str("a2(a1(e0))+b2(b1(e1))"));
}

TEST(KeggSim, DeterministicAndSeedSensitive) {
  KeggSimulator sim1(1), sim1b(1), sim2(2);
  auto p1 = sim1.PathwaysForGene("mmu:100");
  EXPECT_EQ(p1, sim1b.PathwaysForGene("mmu:100"));
  EXPECT_FALSE(p1.empty());
  // Different seeds generally differ for some gene.
  bool any_diff = false;
  for (int g = 0; g < 20 && !any_diff; ++g) {
    std::string gene = "mmu:" + std::to_string(g);
    any_diff = sim1.PathwaysForGene(gene) != sim2.PathwaysForGene(gene);
  }
  EXPECT_TRUE(any_diff);
}

TEST(KeggSim, EveryGeneSharesTheCommonPathway) {
  KeggSimulator sim(9);
  for (int g = 0; g < 30; ++g) {
    auto paths = sim.PathwaysForGene("gene" + std::to_string(g));
    EXPECT_NE(std::find(paths.begin(), paths.end(), "path:04010"),
              paths.end());
  }
  // Hence the intersection over any gene list is non-empty.
  auto common = sim.PathwaysForGenes({"a", "b", "c", "d"});
  EXPECT_FALSE(common.empty());
}

TEST(KeggSim, DescriptionsAreStable) {
  KeggSimulator sim;
  EXPECT_EQ(sim.DescribePathway("path:04010"),
            "path:04010 MAPK signaling pathway");
  EXPECT_EQ(sim.DescribePathway("path:99999"),
            "path:99999 (unknown pathway)");
}

TEST(GkWorkflow, ReproducesPaperShape) {
  auto wb = std::move(*Workbench::GK());
  auto run = *wb->Run({{"list_of_geneIDList", GkSampleInput()}}, "r");
  const Value& per_gene = run.outputs.at("paths_per_gene");
  ASSERT_EQ(per_gene.depth(), 2);
  ASSERT_EQ(per_gene.list_size(), 2u);  // one sub-list per input sub-list
  const Value& common = run.outputs.at("commonPathways");
  ASSERT_EQ(common.depth(), 1);
  EXPECT_GE(common.list_size(), 1u);
  // Every common pathway appears in each per-gene sub-list (description
  // suffix included).
  for (const Value& c : common.elements()) {
    for (const Value& sub : per_gene.elements()) {
      bool found = false;
      for (const Value& p : sub.elements()) {
        if (p == c) found = true;
      }
      EXPECT_TRUE(found) << c.ToString();
    }
  }
}

TEST(GkWorkflow, SyntheticInputScales) {
  auto wb = std::move(*Workbench::GK());
  Value input = GkSyntheticInput(5, 2, 123);
  ASSERT_EQ(input.list_size(), 5u);
  auto run = wb->Run({{"list_of_geneIDList", input}}, "r");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->outputs.at("paths_per_gene").list_size(), 5u);
}

TEST(PubmedSim, SearchFetchExtractPipelineIsDeterministic) {
  PubmedSimulator sim(3);
  auto ids = sim.Search({"cancer", "kinase"});
  EXPECT_EQ(ids.size(), 6u);  // 3 per term
  EXPECT_EQ(ids, PubmedSimulator(3).Search({"cancer", "kinase"}));
  std::string abstract = sim.FetchAbstract(ids[0]);
  EXPECT_NE(abstract.find(ids[0]), std::string::npos);
  auto proteins = sim.ExtractProteins(abstract);
  EXPECT_FALSE(proteins.empty());
  for (const auto& p : proteins) {
    EXPECT_NE(abstract.find(p), std::string::npos);
  }
}

TEST(PdWorkflow, LongPathStructure) {
  auto flow = *MakePdWorkflow(22);
  EXPECT_EQ(flow->num_processors(), 22u + 8u);  // chain + fixed stages
  EXPECT_FALSE(MakePdWorkflow(0).ok());
}

TEST(PdWorkflow, EndToEndRunDiscoversProteins) {
  auto wb = std::move(*Workbench::PD(/*text_steps=*/3));
  auto run = *wb->Run({{"terms", PdSampleInput()}}, "r");
  const Value& proteins = run.outputs.at("discovered_proteins");
  ASSERT_EQ(proteins.depth(), 1);
  EXPECT_GT(proteins.list_size(), 0u);
  // Output is sorted + deduplicated (rank after dedupe).
  for (size_t i = 1; i < proteins.list_size(); ++i) {
    EXPECT_LT(proteins.elements()[i - 1].atom().AsString(),
              proteins.elements()[i].atom().AsString());
  }
}

TEST(PdWorkflow, TextStepsControlPathLength) {
  auto wb = std::move(*Workbench::PD(/*text_steps=*/1));
  auto run = wb->Run({{"terms", PdSampleInput()}}, "r");
  ASSERT_TRUE(run.ok());
  auto wb2 = std::move(*Workbench::PD(/*text_steps=*/10));
  auto run2 = wb2->Run({{"terms", PdSampleInput()}}, "r");
  ASSERT_TRUE(run2.ok());
  EXPECT_GT(run2->total_invocations, run->total_invocations);
}

TEST(Workbench, CustomFlowAndRegistry) {
  auto flow = *MakeSyntheticWorkflow(1);
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  auto wb = Workbench::Create(flow, registry);
  ASSERT_TRUE(wb.ok());
  EXPECT_EQ((*wb)->flow()->name(), "synthetic_l1");
}

}  // namespace
}  // namespace provlin::testbed
