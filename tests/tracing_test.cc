#include "common/tracing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace provlin::common::tracing {
namespace {

// Each TEST runs in its own process under gtest_discover_tests, so
// enabling/disabling the global tracer cannot leak across tests; every
// test still disables on the way out for single-process runs.

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::Global().Disable(); }
};

TEST_F(TracerTest, DisabledGuardRecordsNothing) {
  ASSERT_FALSE(Tracer::Global().enabled());
  {
    PROVLIN_TRACE_SPAN("test/should_not_appear");
  }
  Tracer::Global().Enable(16);
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
}

TEST_F(TracerTest, SpansRecordWithNesting) {
  Tracer::Global().Enable(64);
  {
    PROVLIN_TRACE_SPAN("test/outer");
    {
      PROVLIN_TRACE_SPAN("test/inner");
    }
  }
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot sorts by start timestamp: outer opened first.
  EXPECT_EQ(events[0].name, "test/outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "test/inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].dur_us, events[1].dur_us);
}

TEST_F(TracerTest, SetArgsAttachesAnnotation) {
  Tracer::Global().Enable(16);
  {
    PROVLIN_TRACE_SPAN_VAR(span, "test/with_args");
    ASSERT_TRUE(span.active());
    span.SetArgs("k=v");
  }
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].args, "k=v");
}

TEST_F(TracerTest, GuardOpenedWhileDisabledStaysInert) {
  ASSERT_FALSE(Tracer::Global().enabled());
  {
    PROVLIN_TRACE_SPAN_VAR(span, "test/pre_enable");
    EXPECT_FALSE(span.active());
    Tracer::Global().Enable(16);
    // The guard latched its decision at construction: nothing recorded.
  }
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
}

TEST_F(TracerTest, RingWrapsAroundKeepingNewestEvents) {
  Tracer::Global().Enable(4);
  for (int i = 0; i < 10; ++i) {
    Tracer::Global().Record("ev" + std::to_string(i), "",
                            static_cast<uint64_t>(i), 1, 0);
  }
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "ev6");
  EXPECT_EQ(events[3].name, "ev9");
  EXPECT_EQ(Tracer::Global().dropped(), 6u);
  EXPECT_EQ(Tracer::Global().capacity(), 4u);
}

TEST_F(TracerTest, ReEnableClearsPreviousCapture) {
  Tracer::Global().Enable(16);
  { PROVLIN_TRACE_SPAN("test/first_epoch"); }
  Tracer::Global().Enable(16);
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
  EXPECT_EQ(Tracer::Global().dropped(), 0u);
}

TEST_F(TracerTest, SpanStraddlingCaptureFlipIsDropped) {
  // A span opened under one Enable() and closed under the next has a
  // start timestamp from a dead epoch; it must not leak into the new
  // capture with a garbage duration.
  Tracer::Global().Enable(16);
  {
    PROVLIN_TRACE_SPAN_VAR(span, "test/straddle");
    ASSERT_TRUE(span.active());
    Tracer::Global().Disable();
    Tracer::Global().Enable(16);
  }
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
  // A span opened entirely under the new capture still records.
  { PROVLIN_TRACE_SPAN("test/post_flip"); }
  ASSERT_EQ(Tracer::Global().Snapshot().size(), 1u);
  EXPECT_EQ(Tracer::Global().Snapshot()[0].name, "test/post_flip");
}

TEST_F(TracerTest, ChromeExportShapeAndEscaping) {
  Tracer::Global().Enable(16);
  Tracer::Global().Record("test/\"quoted\"", "line1\nline2", 5, 7, 2);
  std::string json = Tracer::Global().ExportChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 7"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST_F(TracerTest, ExportOfEmptyCaptureIsValidJson) {
  Tracer::Global().Enable(16);
  EXPECT_EQ(Tracer::Global().ExportChromeTrace(), "{\"traceEvents\": [\n]}\n");
}

TEST_F(TracerTest, ThreadIdsAreDenseAndStable) {
  uint32_t here = Tracer::ThisThreadId();
  EXPECT_EQ(Tracer::ThisThreadId(), here);
  uint32_t other = 0;
  std::thread t([&other] { other = Tracer::ThisThreadId(); });
  t.join();
  EXPECT_NE(other, here);
  EXPECT_NE(other, 0u);
}

TEST_F(TracerTest, MultiThreadedStress) {
  // Hammer the tracer from many threads through enable/disable flips;
  // run under TSan in CI. Counts are checked only loosely — the flips
  // drop events by design — the point is data-race freedom and a
  // well-formed snapshot.
  Tracer::Global().Enable(1 << 10);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;
  std::atomic<bool> stop{false};
  std::thread flipper([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      Tracer::Global().Disable();
      Tracer::Global().Enable(1 << 10);
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        PROVLIN_TRACE_SPAN_VAR(span, "test/stress");
        if (span.active() && i % 64 == 0) span.SetArgs("i=...");
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  flipper.join();

  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(ev.name, "test/stress");
    EXPECT_NE(ev.tid, 0u);
  }
}

}  // namespace
}  // namespace provlin::common::tracing
