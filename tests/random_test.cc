#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace provlin {
namespace {

TEST(Random, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Random, UniformStaysInBounds) {
  Random rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Random, UniformRangeInclusive) {
  Random rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values should appear in 1000 draws
}

TEST(Random, NextDoubleInUnitInterval) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Random, BernoulliRoughlyCalibrated) {
  Random rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(Random, ZeroSeedStillWorks) {
  Random rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.Next());
  EXPECT_GT(seen.size(), 90u);
}

}  // namespace
}  // namespace provlin
