// Error tokens: Taverna-style failure confinement and error lineage —
// the paper's "debug errors in the results" use case, end to end.

#include <gtest/gtest.h>

#include "engine/builtin_activities.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "provenance/recorder.h"
#include "testbed/workbench.h"
#include "values/value_parser.h"
#include "workflow/builder.h"

namespace provlin {
namespace {

using engine::ExecuteOptions;
using lineage::InterestSet;
using testbed::Workbench;
using workflow::DataflowBuilder;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

TEST(ErrorToken, AtomBasics) {
  Atom err = Atom::Error("service timed out");
  EXPECT_TRUE(err.is_error());
  EXPECT_EQ(err.kind(), AtomKind::kError);
  EXPECT_EQ(err.AsError(), "service timed out");
  EXPECT_EQ(err.ToString(), "error: service timed out");
  EXPECT_EQ(err.ToLiteral(), "error(\"service timed out\")");
  EXPECT_EQ(err, Atom::Error("service timed out"));
  EXPECT_NE(err, Atom::Error("other"));
  EXPECT_NE(err, Atom("service timed out"));  // string != error
  EXPECT_EQ(AtomKindName(AtomKind::kError), "error");
}

TEST(ErrorToken, ValueHelpers) {
  Value plain = Value::StringList({"a", "b"});
  EXPECT_FALSE(plain.ContainsError());
  EXPECT_EQ(plain.FirstError(), "");
  Value nested =
      Value::List({Value::Str("ok"), Value::List({Value::Error("boom")})});
  EXPECT_TRUE(nested.ContainsError());
  EXPECT_EQ(nested.FirstError(), "boom");
}

TEST(ErrorToken, LiteralRoundTripsThroughParser) {
  Value v = Value::List({Value::Str("x"), Value::Error("it broke (badly)")});
  auto parsed = ParseValue(v.ToString());
  ASSERT_TRUE(parsed.ok()) << v.ToString();
  EXPECT_EQ(*parsed, v);
}

TEST(ErrorToken, InferTypeTreatsErrorsAsWildcards) {
  Value mixed = Value::List({Value::Str("a"), Value::Error("x")});
  auto t = InferType(mixed);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->base, AtomKind::kString);
  EXPECT_EQ(t->depth, 1);
}

/// in -> filter (fails on elements containing "bad") -> shout -> out.
std::unique_ptr<Workbench> FailingChain() {
  DataflowBuilder b("failing_chain");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(1));
  b.Proc("filter")
      .Activity("fail_if")
      .Config("match", "bad")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Proc("shout")
      .Activity("to_upper")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:in", "filter:x");
  b.Arc("filter:y", "shout:x");
  b.Arc("shout:y", "workflow:out");
  auto flow = *b.Build();
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  return std::move(*Workbench::Create(flow, registry));
}

TEST(ErrorPropagation, WithoutOptInRunAborts) {
  auto wb = FailingChain();
  auto run = wb->Run({{"in", Value::StringList({"good", "bad"})}}, "r0");
  EXPECT_FALSE(run.ok());
}

TEST(ErrorPropagation, FailureConfinedToAffectedElements) {
  auto wb = FailingChain();
  provenance::TraceRecorder recorder(wb->store());
  // Drive the executor directly to pass options.
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  engine::Executor executor(registry.get(), &recorder);
  ExecuteOptions options;
  options.continue_on_error = true;
  auto run = executor.Execute(
      *wb->flow(), {{"in", Value::StringList({"ok1", "badger", "ok2"})}},
      "r0", options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_TRUE(recorder.status().ok());

  const Value& out = run->outputs.at("out");
  ASSERT_EQ(out.list_size(), 3u);
  EXPECT_EQ(out.elements()[0], Value::Str("OK1"));
  EXPECT_TRUE(out.elements()[1].ContainsError());
  EXPECT_EQ(out.elements()[2], Value::Str("OK2"));
  // filter failed once; shout short-circuited once.
  EXPECT_EQ(run->failed_invocations, 2u);
  EXPECT_EQ(run->total_invocations, 6u);
}

TEST(ErrorPropagation, ErrorLineageLeadsToCulprit) {
  auto wb = FailingChain();
  provenance::TraceRecorder recorder(wb->store());
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  engine::Executor executor(registry.get(), &recorder);
  ExecuteOptions options;
  options.continue_on_error = true;
  ASSERT_TRUE(executor
                  .Execute(*wb->flow(),
                           {{"in", Value::StringList({"ok", "badx"})}}, "r0",
                           options)
                  .ok());

  // Lineage of the error element points at the failing step's input and
  // the original workflow input element — on both engines.
  PortRef target{kWorkflowProcessor, "out"};
  InterestSet interest{"filter", kWorkflowProcessor};
  auto ni = wb->Naive().Query(lineage::LineageRequest::SingleRun("r0", target, Index({1}), interest));
  auto ip = wb->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", target, Index({1}), interest));
  ASSERT_TRUE(ni.ok());
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ni->bindings, ip->bindings);
  ASSERT_EQ(ip->bindings.size(), 2u);
  EXPECT_EQ(ip->bindings[0].port.ToString(), "filter:x");
  EXPECT_EQ(ip->bindings[0].value_repr, "\"badx\"");
  EXPECT_EQ(ip->bindings[1].port.ToString(), "workflow:in");
  EXPECT_EQ(ip->bindings[1].value_repr, "\"badx\"");
}

TEST(ErrorPropagation, ErrorCrossesCrossProduct) {
  // One failing element of a poisons a whole row of the cross product.
  DataflowBuilder b("cross_fail");
  b.Input("a", PortType::String(1));
  b.Input("bb", PortType::String(1));
  b.Output("out", PortType::String(2));
  b.Proc("filter")
      .Activity("fail_if")
      .Config("match", "bad")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Proc("join")
      .Activity("concat2")
      .In("x1", PortType::String(0))
      .In("x2", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Arc("workflow:a", "filter:x");
  b.Arc("filter:y", "join:x1");
  b.Arc("workflow:bb", "join:x2");
  b.Arc("join:y", "workflow:out");
  auto flow = *b.Build();
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  engine::Executor executor(registry.get(), nullptr);
  ExecuteOptions options;
  options.continue_on_error = true;
  auto run = executor.Execute(*flow,
                              {{"a", Value::StringList({"ok", "bad"})},
                               {"bb", Value::StringList({"x", "y"})}},
                              "r0", options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const Value& out = run->outputs.at("out");
  EXPECT_FALSE(out.elements()[0].ContainsError());  // row of "ok"
  EXPECT_TRUE(out.At(Index({1, 0}))->ContainsError());
  EXPECT_TRUE(out.At(Index({1, 1}))->ContainsError());
}

TEST(ErrorPropagation, WholeListConsumerShortCircuits) {
  // A coarse (whole-list) consumer sees a list containing an error and
  // produces an error without being invoked.
  DataflowBuilder b("agg_fail");
  b.Input("in", PortType::String(1));
  b.Output("out", PortType::String(0));
  b.Proc("filter")
      .Activity("fail_if")
      .Config("match", "bad")
      .In("x", PortType::String(0))
      .Out("y", PortType::String(0));
  b.Proc("summarize")
      .Activity("join")
      .In("items", PortType::String(1))
      .Out("joined", PortType::String(0));
  b.Arc("workflow:in", "filter:x");
  b.Arc("filter:y", "summarize:items");
  b.Arc("summarize:joined", "workflow:out");
  auto flow = *b.Build();
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  engine::Executor executor(registry.get(), nullptr);
  ExecuteOptions options;
  options.continue_on_error = true;
  auto run = executor.Execute(
      *flow, {{"in", Value::StringList({"ok", "bad"})}}, "r0", options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->outputs.at("out").ContainsError());
}

TEST(ErrorPropagation, ErrorMessageIdentifiesFailingProcessor) {
  auto wb = FailingChain();
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  engine::Executor executor(registry.get(), nullptr);
  ExecuteOptions options;
  options.continue_on_error = true;
  auto run = executor.Execute(
      *wb->flow(), {{"in", Value::StringList({"bad"})}}, "r0", options);
  ASSERT_TRUE(run.ok());
  std::string msg = run->outputs.at("out").FirstError();
  EXPECT_NE(msg.find("filter"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fail_if matched"), std::string::npos) << msg;
}

}  // namespace
}  // namespace provlin
