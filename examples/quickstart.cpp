// Quickstart: build a small collection-oriented workflow, execute it with
// provenance capture, and ask a fine-grained lineage question.
//
//   greeting pipeline:  names -> upper -> greet   (element-wise)
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "engine/builtin_activities.h"
#include "lineage/engine.h"
#include "testbed/workbench.h"
#include "workflow/builder.h"

using namespace provlin;

namespace {

template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  // 1. Describe the dataflow. Ports declare types with nesting depth;
  //    feeding a list(string) into a string port makes the engine
  //    iterate the processor over the elements (Taverna semantics).
  workflow::DataflowBuilder b("greeter");
  b.Input("names", PortType::String(1));      // list(string)
  b.Output("greetings", PortType::String(1));  // list(string)
  b.Proc("upper")
      .Activity("to_upper")
      .In("name", PortType::String(0))   // scalar port <- list input: δ=1
      .Out("upper", PortType::String(0));
  b.Proc("greet")
      .Activity("prefix")
      .Config("prefix", "hello ")
      .In("who", PortType::String(0))
      .Out("greeting", PortType::String(0));
  b.Arc("workflow:names", "upper:name");
  b.Arc("upper:upper", "greet:who");
  b.Arc("greet:greeting", "workflow:greetings");
  auto flow = Check(b.Build(), "build workflow");

  // 2. Execute with provenance capture. The Workbench bundles the
  //    activity registry, the embedded trace database and the engines.
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  auto wb = Check(testbed::Workbench::Create(flow, registry), "workbench");

  Value names = Value::StringList({"ada", "grace", "edsger"});
  auto run = Check(wb->Run({{"names", names}}, "run-1"), "execute");
  std::printf("greetings = %s\n",
              run.outputs.at("greetings").ToString().c_str());

  // 3. Lineage: which input produced greetings[2]? Build a
  //    LineageRequest and hand it to an engine through the uniform
  //    LineageEngine interface; "indexproj" answers by traversing the
  //    workflow spec, not the trace.
  workflow::PortRef target{workflow::kWorkflowProcessor, "greetings"};
  const lineage::LineageEngine* engine = wb->Engine("indexproj");
  auto answer = Check(
      engine->Query(lineage::LineageRequest::SingleRun(
          "run-1", target, Index({2}), {workflow::kWorkflowProcessor})),
      "lineage query");
  for (const auto& binding : answer.bindings) {
    std::printf("lineage of greetings[3]: %s\n", binding.ToString().c_str());
  }
  std::printf("cost: t1=%.3fms (spec traversal) t2=%.3fms (%llu trace "
              "probes)\n",
              answer.timing.t1_ms, answer.timing.t2_ms,
              static_cast<unsigned long long>(answer.timing.trace_probes));
  return 0;
}
