// Provenance explorer: runs the protein-discovery workflow, pokes at the
// raw trace relations (xform / xfer / val), persists the whole trace
// database to disk, reloads it, and queries lineage against the reloaded
// image — the "post mortem analysis" workflow of the paper's intro.
//
// Build & run:  ./build/examples/provenance_explorer

#include <cstdio>

#include "lineage/naive_lineage.h"
#include "provenance/schema.h"
#include "testbed/pd_workflow.h"
#include "testbed/workbench.h"

using namespace provlin;

namespace {

template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

void CheckOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  auto wb = Check(testbed::Workbench::PD(/*text_steps=*/6), "workbench");
  auto run = Check(wb->Run({{"terms", testbed::PdSampleInput()}}, "pd-run"),
                   "execute");
  std::printf("discovered_proteins = %s\n\n",
              run.outputs.at("discovered_proteins").ToString().c_str());

  // Raw trace inspection: the elementary invocations of one processor.
  auto rows = Check(wb->store()->FindConsuming("pd-run", "fetch_abstract",
                                               "abstract_id", Index()),
                    "trace probe");
  std::printf("fetch_abstract consumed %zu element bindings; first three:\n",
              rows.size());
  for (size_t i = 0; i < rows.size() && i < 3; ++i) {
    std::string repr =
        Check(wb->store()->GetValueRepr("pd-run", rows[i].in_value), "value");
    std::printf("   event %lld  in %s%s = %s\n",
                static_cast<long long>(rows[i].event_id),
                wb->store()->NameOf(rows[i].in_port).c_str(),
                rows[i].in_index.ToString().c_str(), repr.c_str());
  }

  auto counts = Check(wb->store()->CountRecords("pd-run"), "counts");
  std::printf("\ntrace size: %zu xform rows, %zu xfer rows, %zu values\n",
              counts.xform_rows, counts.xfer_rows, counts.value_rows);

  // Persist the trace database and reload it into a fresh catalog.
  const char* path = "/tmp/provlin_pd_trace.db";
  CheckOk(wb->db()->Save(path), "save");
  storage::Database reloaded;
  CheckOk(reloaded.Load(path), "load");
  auto store = Check(provenance::TraceStore::Open(&reloaded), "reopen");
  std::printf("\nreloaded database from %s (%zu total rows)\n", path,
              reloaded.TotalRows());

  // Post-mortem lineage against the reloaded image, via the naive engine
  // (it needs only the trace, no workflow definition at hand) — addressed
  // through the LineageEngine interface like any other engine.
  lineage::NaiveLineage naive(&store);
  const lineage::LineageEngine& engine = naive;
  auto answer = Check(
      engine.Query(lineage::LineageRequest::SingleRun(
          "pd-run", {workflow::kWorkflowProcessor, "discovered_proteins"},
          Index({0}), {workflow::kWorkflowProcessor})),
      "post-mortem lineage");
  std::printf("lin(discovered_proteins[1]) from the reloaded trace:\n");
  for (const auto& b : answer.bindings) {
    std::printf("   %s\n", b.ToString().c_str());
  }
  return 0;
}
