// Parameter sweeps are the paper's motivating case for multi-run lineage
// (§3.4): a batch of runs varies an input parameter, then one question —
// "report the lineage of this output across all executions" — must span
// every trace. IndexProj traverses the workflow specification once and
// re-executes only the generated trace queries per run; NI re-traverses
// each provenance graph from scratch.
//
// Build & run:  ./build/examples/parameter_sweep

#include <cstdio>

#include "lineage/engine.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

using namespace provlin;

namespace {

template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  constexpr int kChainLength = 40;
  auto wb = Check(testbed::Workbench::Synthetic(kChainLength), "workbench");

  // Sweep the ListSize parameter over 8 runs.
  std::vector<std::string> runs;
  for (int d = 5; d <= 40; d += 5) {
    std::string run_id = "sweep-d" + std::to_string(d);
    Check(wb->RunSynthetic(d, run_id), "run");
    runs.push_back(run_id);
    std::printf("executed %-10s (d=%d)\n", run_id.c_str(), d);
  }

  // A multi-run request is just a LineageRequest whose scope holds every
  // run of the sweep: s1 happens once, s2 once per run.
  lineage::LineageRequest request;
  request.runs = runs;
  request.target = {workflow::kWorkflowProcessor, "RESULT"};
  request.index = Index({1, 2});
  request.interest = {testbed::kListGen};

  auto multi = Check(wb->Engine("indexproj")->Query(request), "multi-run");
  std::printf("\nlin(RESULT[2,3], {LISTGEN_1}) across %zu runs:\n",
              runs.size());
  for (const auto& b : multi.bindings) {
    std::printf("   %s\n", b.ToString().c_str());
  }
  std::printf(
      "IndexProj: t1=%.3fms (one spec traversal), t2=%.3fms, %llu probes\n",
      multi.timing.t1_ms, multi.timing.t2_ms,
      static_cast<unsigned long long>(multi.timing.trace_probes));

  // NI must traverse each run's provenance graph in full.
  auto ni = Check(wb->Engine("naive")->Query(request), "naive multi-run");
  std::printf("NI:        t2=%.3fms, %llu probes  (same bindings: %s)\n",
              ni.timing.t2_ms,
              static_cast<unsigned long long>(ni.timing.trace_probes),
              ni.bindings == multi.bindings ? "yes" : "NO!");
  return 0;
}
