// Impact analysis (forward lineage): "the KEGG annotation for gene
// mmu:26416 was retracted — which published results are affected?"
// Backward lineage answers "where did this output come from"; the dual
// forward query pushes an input element downstream through the same
// index-projection machinery (with wildcards for the dimensions other
// ports contribute).
//
// Build & run:  ./build/examples/impact_analysis

#include <cstdio>

#include "lineage/forward_lineage.h"
#include "testbed/gk_workflow.h"
#include "testbed/workbench.h"

using namespace provlin;

namespace {

template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  auto wb = Check(testbed::Workbench::GK(), "workbench");
  Value input = testbed::GkSampleInput();  // [[20816,26416],[328788]]
  auto run = Check(wb->Run({{"list_of_geneIDList", input}}, "gk-run"),
                   "execute");
  std::printf("input gene lists  = %s\n", input.ToString().c_str());
  std::printf("paths_per_gene    = %s\n",
              run.outputs.at("paths_per_gene").ToString().c_str());
  std::printf("commonPathways    = %s\n\n",
              run.outputs.at("commonPathways").ToString().c_str());

  auto fwd = Check(
      lineage::ForwardIndexProjLineage::Create(wb->flow(), wb->store()),
      "forward engine");

  // Which workflow outputs depend on gene #2 of sub-list 1 (26416)?
  workflow::PortRef gene_input{workflow::kWorkflowProcessor,
                               "list_of_geneIDList"};
  auto impact = Check(fwd.Query("gk-run", gene_input, Index({0, 1}),
                                {workflow::kWorkflowProcessor}),
                      "impact query");
  std::printf("impact of list_of_geneIDList[1,2] (gene 26416):\n");
  for (const auto& b : impact.bindings) {
    std::printf("   %s\n", b.ToString().c_str());
  }

  // The naive trace-walking engine agrees, at higher probe cost.
  lineage::NaiveForwardLineage naive(wb->store());
  auto ni = Check(naive.Query("gk-run", gene_input, Index({0, 1}),
                              {workflow::kWorkflowProcessor}),
                  "naive impact");
  std::printf(
      "\nagreement with naive forward traversal: %s (probes %llu vs "
      "%llu)\n",
      ni.bindings == impact.bindings ? "yes" : "NO!",
      static_cast<unsigned long long>(ni.timing.trace_probes),
      static_cast<unsigned long long>(impact.timing.trace_probes));

  // Narrower question: does the retraction touch the per-sub-list view
  // of the *other* sub-list? (It must not — that is the fine-grained
  // provenance claim of the paper, applied forward.)
  bool touches_other = false;
  for (const auto& b : impact.bindings) {
    if (b.port.port == "paths_per_gene" && b.index.length() >= 1 &&
        b.index[0] == 1) {
      touches_other = true;
    }
  }
  std::printf("does gene 26416 impact paths_per_gene[2]? %s\n",
              touches_other ? "yes (unexpected!)" : "no — isolated, as the "
                                                    "fine-grained model "
                                                    "predicts");
  return 0;
}
