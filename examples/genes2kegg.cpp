// The paper's motivating scenario (Fig. 1): the genes2Kegg bioinformatics
// workflow maps nested lists of gene ids to metabolic pathways (KEGG is
// simulated — see DESIGN.md). Provenance answers the natural question
// "why is this pathway in the output?" at fine granularity: pathways in
// sub-list i of paths_per_gene depend only on the genes in input
// sub-list i, while commonPathways depends on all input genes.
//
// Build & run:  ./build/examples/genes2kegg

#include <cstdio>

#include "lineage/engine.h"
#include "testbed/gk_workflow.h"
#include "testbed/workbench.h"

using namespace provlin;

namespace {

template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  auto wb = Check(testbed::Workbench::GK(), "workbench");

  Value input = testbed::GkSampleInput();  // [[20816,26416],[328788]]
  std::printf("input gene lists: %s\n\n", input.ToString().c_str());
  auto run =
      Check(wb->Run({{"list_of_geneIDList", input}}, "gk-run"), "execute");

  const Value& per_gene = run.outputs.at("paths_per_gene");
  const Value& common = run.outputs.at("commonPathways");
  std::printf("paths_per_gene  = %s\n", per_gene.ToString().c_str());
  std::printf("commonPathways  = %s\n\n", common.ToString().c_str());

  // "Which of the input lists of genes is involved in this pathway?"
  // Ask for each sub-list of paths_per_gene, focused on the KEGG lookup.
  lineage::InterestSet lookup{"get_pathways_by_genes"};
  const lineage::LineageEngine* indexproj = wb->Engine("indexproj");
  const lineage::LineageEngine* naive_engine = wb->Engine("naive");
  workflow::PortRef per_gene_port{workflow::kWorkflowProcessor,
                                  "paths_per_gene"};
  for (int i = 0; i < static_cast<int>(per_gene.list_size()); ++i) {
    auto answer = Check(indexproj->Query(lineage::LineageRequest::SingleRun(
                            "gk-run", per_gene_port, Index({i}), lookup)),
                        "lineage");
    std::printf("lin(paths_per_gene[%d]) =\n", i + 1);
    for (const auto& b : answer.bindings) {
      std::printf("   %s\n", b.ToString().c_str());
    }
  }

  // commonPathways flows through a flatten step, so its lineage covers
  // ALL input genes — granularity degrades exactly where the workflow
  // merged the collections.
  auto answer = Check(
      indexproj->Query(lineage::LineageRequest::SingleRun(
          "gk-run", {workflow::kWorkflowProcessor, "commonPathways"},
          Index({0}), lineage::InterestSet{"get_common_pathways"})),
      "lineage");
  std::printf("\nlin(commonPathways[1]) =\n");
  for (const auto& b : answer.bindings) {
    std::printf("   %s\n", b.ToString().c_str());
  }

  // The naive engine agrees, at higher trace-access cost. Same request,
  // two engines — the interface makes the comparison one-liner symmetric.
  lineage::LineageRequest first = lineage::LineageRequest::SingleRun(
      "gk-run", per_gene_port, Index({0}), lookup);
  auto ni = Check(naive_engine->Query(first), "naive lineage");
  auto ip = Check(indexproj->Query(first), "indexproj lineage");
  std::printf("\nNI vs IndexProj: same answer (%s), probes %llu vs %llu\n",
              ni.bindings == ip.bindings ? "yes" : "NO!",
              static_cast<unsigned long long>(ni.timing.trace_probes),
              static_cast<unsigned long long>(ip.timing.trace_probes));
  return 0;
}
