// Iteration-strategy expressions in a realistic shape: a gene-expression
// study pairs each sample with its condition label (dot product — they
// advance together) and crosses the pairs with every gene of interest:
//
//   score : strategy cross(gene, dot(sample, label))
//
// The engine runs |genes| x |samples| elementary invocations; lineage
// stays exact because each port's index fragment occupies a fixed slot
// of the output index (generalized Prop. 1).
//
// Build & run:  ./build/examples/expression_matrix

#include <cstdio>

#include "engine/builtin_activities.h"
#include "lineage/engine.h"
#include "testbed/workbench.h"
#include "workflow/builder.h"

using namespace provlin;

namespace {

template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

void CheckOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  // A three-input "scoring service": gene x (sample, label) -> record.
  CheckOk(registry->Register(
              "score_expression",
              [](const engine::ActivityConfig&)
                  -> Result<std::shared_ptr<engine::Activity>> {
                return std::shared_ptr<engine::Activity>(
                    new engine::LambdaActivity(
                        [](const std::vector<Value>& in)
                            -> Result<std::vector<Value>> {
                          return std::vector<Value>{Value::Str(
                              in[0].atom().AsString() + "@" +
                              in[1].atom().AsString() + "/" +
                              in[2].atom().AsString())};
                        }));
              }),
          "register");

  workflow::DataflowBuilder b("expression_matrix");
  b.Input("genes", PortType::String(1));
  b.Input("samples", PortType::String(1));
  b.Input("labels", PortType::String(1));
  b.Output("matrix", PortType::String(2));
  auto proc = b.Proc("score");
  proc.Activity("score_expression")
      .StrategyTree(Check(
          workflow::StrategyNode::Parse("cross(gene,dot(sample,label))"),
          "strategy"))
      .In("gene", PortType::String(0))
      .In("sample", PortType::String(0))
      .In("label", PortType::String(0))
      .Out("record", PortType::String(0));
  b.Arc("workflow:genes", "score:gene");
  b.Arc("workflow:samples", "score:sample");
  b.Arc("workflow:labels", "score:label");
  b.Arc("score:record", "workflow:matrix");
  auto flow = Check(b.Build(), "build");

  auto wb = Check(testbed::Workbench::Create(flow, registry), "workbench");
  auto run = Check(
      wb->Run({{"genes", Value::StringList({"BRCA1", "TP53"})},
               {"samples", Value::StringList({"s1", "s2", "s3"})},
               {"labels", Value::StringList({"ctrl", "ctrl", "tumor"})}},
              "study-1"),
      "execute");

  const Value& matrix = run.outputs.at("matrix");
  std::printf("expression matrix (%zu genes x %zu samples):\n",
              matrix.list_size(), matrix.elements()[0].list_size());
  for (const Value& row : matrix.elements()) {
    std::printf("   %s\n", row.ToString().c_str());
  }

  // Lineage of matrix[2][3]: exactly gene TP53 and the (sample, label)
  // pair at position 3 — the dot lanes resolve together, the crossed
  // gene independently.
  lineage::LineageRequest request = lineage::LineageRequest::SingleRun(
      "study-1", {workflow::kWorkflowProcessor, "matrix"}, Index({1, 2}),
      {workflow::kWorkflowProcessor});
  auto answer = Check(wb->Engine("indexproj")->Query(request), "lineage");
  std::printf("\nlin(matrix[2,3]) =\n");
  for (const auto& binding : answer.bindings) {
    std::printf("   %s\n", binding.ToString().c_str());
  }
  auto naive = wb->Engine("naive")->Query(request);
  std::printf("naive engine agrees: %s\n",
              Check(std::move(naive), "naive").bindings == answer.bindings
                  ? "yes"
                  : "NO!");
  return 0;
}
