// libFuzzer harness for the lineage wire codec (src/lineage/wire.h).
//
// The decoders are the server's first contact with untrusted bytes
// (DESIGN.md §12): they must return a Status on any input — never
// crash, hang, or allocate from an unvalidated count. On a successful
// decode the harness additionally re-encodes and asserts the canonical
// property encode(decode(x)) == x that server_test's byte comparison
// relies on.
//
// Built only under -DPROVLIN_FUZZ=ON (fuzz/CMakeLists.txt): with a
// fuzzer-capable clang this links -fsanitize=fuzzer; elsewhere it links
// the standalone driver, which replays the seed corpus and a bounded
// stream of mutants so the harness stays exercisable under GCC.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "lineage/wire.h"

using provlin::lineage::wire::DecodeRequestEnvelope;
using provlin::lineage::wire::DecodeResponseEnvelope;
using provlin::lineage::wire::DecodeStatsRequest;
using provlin::lineage::wire::DecodeStatsResponse;
using provlin::lineage::wire::EncodeAnswerResponse;
using provlin::lineage::wire::EncodeAnswerResponseV2;
using provlin::lineage::wire::EncodeRequestEnvelope;
using provlin::lineage::wire::EncodeStatsRequest;
using provlin::lineage::wire::EncodeStatsResponse;
using provlin::lineage::wire::kWireVersionLegacy;

namespace {

/// Aborts with the violated property and a hex dump of the input, so a
/// failure is reproducible from the log alone (libFuzzer also saves the
/// input as a crash-* file; the standalone driver does not).
[[noreturn]] void Fail(const char* property, std::string_view payload) {
  std::fprintf(stderr, "fuzz_wire: canonical property violated: %s\n",
               property);
  std::fprintf(stderr, "  input (%zu bytes):", payload.size());
  for (size_t i = 0; i < payload.size() && i < 512; ++i) {
    std::fprintf(stderr, " %02x", static_cast<unsigned char>(payload[i]));
  }
  std::fprintf(stderr, "\n");
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view payload(reinterpret_cast<const char*>(data), size);

  // Every decoder sees every input: the dispatch byte decides which
  // path rejects it, and all rejections must be graceful.
  if (auto req = DecodeRequestEnvelope(payload); req.ok()) {
    std::string reencoded = EncodeRequestEnvelope(*req);
    if (reencoded != payload) Fail("EncodeRequestEnvelope(decode(x)) != x", payload);
  }
  if (auto resp = DecodeResponseEnvelope(payload); resp.ok()) {
    if (resp->ok && !resp->has_timeline &&
        resp->version == kWireVersionLegacy) {
      std::string reencoded =
          EncodeAnswerResponse(resp->request_id, resp->answer);
      if (reencoded != payload) Fail("EncodeAnswerResponse(decode(x)) != x", payload);
    } else if (resp->ok && resp->version != kWireVersionLegacy) {
      std::string reencoded = EncodeAnswerResponseV2(
          resp->request_id, resp->answer,
          resp->has_timeline ? &resp->timeline : nullptr);
      if (reencoded != payload) {
        Fail("EncodeAnswerResponseV2(decode(x)) != x", payload);
      }
    }
  }
  if (auto stats_req = DecodeStatsRequest(payload); stats_req.ok()) {
    if (EncodeStatsRequest(*stats_req) != payload) {
      Fail("EncodeStatsRequest(decode(x)) != x", payload);
    }
  }
  if (auto stats_resp = DecodeStatsResponse(payload); stats_resp.ok()) {
    if (EncodeStatsResponse(*stats_resp) != payload) {
      Fail("EncodeStatsResponse(decode(x)) != x", payload);
    }
  }
  return 0;
}
