// Fallback driver for the fuzz harnesses when the toolchain has no
// libFuzzer (-fsanitize=fuzzer is clang-only; the local GCC image and
// any non-sanitizer build land here). It gives the harness the same
// entry point contract:
//
//   standalone_fuzz_<name> FILE...        replay each file once
//   PROVLIN_FUZZ_MUTATE_RUNS=N <same>     additionally run N random
//                                         mutants (flip/truncate/extend)
//                                         derived from the input files
//
// Replay keeps crash reproducers usable everywhere; the mutation mode
// is a bounded smoke of the harness logic itself — the real coverage-
// guided search only happens under clang + libFuzzer in CI.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::string ReadFile(const char* path, bool* ok) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    *ok = false;
    return {};
  }
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  *ok = true;
  return content;
}

void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    bool ok = false;
    std::string content = ReadFile(argv[i], &ok);
    if (!ok) {
      std::fprintf(stderr, "standalone_driver: cannot read %s\n", argv[i]);
      return 2;
    }
    RunOne(content);
    inputs.push_back(std::move(content));
  }
  std::printf("standalone_driver: %zu file(s) replayed\n", inputs.size());

  const char* runs_env = std::getenv("PROVLIN_FUZZ_MUTATE_RUNS");
  if (runs_env == nullptr || inputs.empty()) return 0;
  long runs = std::strtol(runs_env, nullptr, 10);
  std::mt19937_64 rng(20260808);
  for (long r = 0; r < runs; ++r) {
    std::string mutant = inputs[rng() % inputs.size()];
    switch (rng() % 3) {
      case 0: {  // flip 1-4 bytes
        if (mutant.empty()) break;
        uint64_t flips = 1 + rng() % 4;
        for (uint64_t f = 0; f < flips; ++f) {
          mutant[rng() % mutant.size()] = static_cast<char>(rng() % 256);
        }
        break;
      }
      case 1:  // truncate
        if (mutant.empty()) break;
        mutant.resize(rng() % mutant.size());
        break;
      default:  // extend with junk
        mutant.append(1 + rng() % 16, static_cast<char>(rng() % 256));
        break;
    }
    RunOne(mutant);
  }
  std::printf("standalone_driver: %ld mutant(s) survived\n", runs);
  return 0;
}
