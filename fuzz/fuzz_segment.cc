// libFuzzer harness for the sealed-segment codec
// (storage::Segment::FromBytes, src/storage/segment.h).
//
// Segment blobs are parsed back from the database file on open, so
// FromBytes must reject any corruption with a Status — never crash or
// allocate from an untrusted count. Any input that parses must also
// survive a full row decode (with the row count it promised) and a few
// view probes: parse acceptance implies decode safety.
//
// Built only under -DPROVLIN_FUZZ=ON; see fuzz_wire.cc for the
// clang/GCC driver split.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "storage/segment.h"

using provlin::storage::IdPair;
using provlin::storage::Row;
using provlin::storage::Segment;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto bytes = std::make_shared<const std::string>(
      reinterpret_cast<const char*>(data), size);
  auto parsed = Segment::FromBytes(bytes);
  if (!parsed.ok()) return 0;

  if (auto rows = parsed->DecodeAllRows(); rows.ok()) {
    if (rows->size() != parsed->num_rows()) {
      std::fprintf(stderr,
                   "fuzz_segment: DecodeAllRows returned %zu rows, header "
                   "promised %zu\n",
                   rows->size(), parsed->num_rows());
      std::abort();
    }
  }

  Segment::Scratch scratch;
  Segment::ProbeCounts counts;
  for (uint32_t p = 0; p < 4; ++p) {
    Segment::ViewProbe probe;
    probe.pair = IdPair{p, p % 2}.Packed();
    (void)parsed->ProbeView(Segment::kViewOut, probe, &scratch, &counts,
                            [](uint64_t, const Row&) {});
    (void)parsed->ProbeView(Segment::kViewIn, probe, &scratch, &counts,
                            [](uint64_t, const Row&) {});
  }
  return 0;
}
