// Generates the seed corpora for the codec fuzz harnesses from the same
// valid-payload shapes the unit tests mutate (tests/wire_test.cc
// FuzzedPayloadsNeverCrash, tests/segment_test.cc ditto): a fuzzer
// seeded with structurally valid frames reaches the deep decode paths
// in seconds instead of spending its budget rediscovering the header.
//
// Usage: make_seed_corpus <wire_dir> <segment_dir>
// Writes one file per seed into each directory (which must exist).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "lineage/wire.h"
#include "storage/segment.h"

namespace {

using namespace provlin;
using namespace provlin::lineage;
using namespace provlin::lineage::wire;
using storage::Datum;
using storage::IdPair;
using storage::IndexPath;
using storage::Row;
using storage::Segment;

LineageRequest MakeRequest() {
  LineageRequest req;
  req.runs = {"r0", "r1", "run-with-long-name-2"};
  req.target = workflow::PortRef{"P", "Y1"};
  req.index = Index({1, 2, 0});
  req.interest = {"workflow", "P", "Q"};
  return req;
}

LineageAnswer MakeAnswer() {
  LineageAnswer answer;
  LineageBinding b1;
  b1.run_id = "r0";
  b1.port = workflow::PortRef{"workflow", "X"};
  b1.index = Index({0, 1});
  b1.value_repr = "\"quoted\nvalue\"";
  LineageBinding b2;
  b2.run_id = "r1";
  b2.port = workflow::PortRef{"P", "A"};
  b2.index = Index();
  b2.value_repr = "e0";
  answer.bindings = {b1, b2};
  answer.timing.t1_ms = 1.25;
  answer.timing.trace_probes = 17;
  return answer;
}

std::vector<std::string> WireSeeds() {
  RequestEnvelope v2_envelope;
  v2_envelope.request_id = 45;
  v2_envelope.engine = "naive";
  v2_envelope.request = MakeRequest();
  v2_envelope.version = kWireVersion;
  v2_envelope.want_timeline = true;

  RequestTimeline timeline;
  timeline.queue_ms = 0.5;
  timeline.execute_ms = 2.25;
  timeline.total_ms = 3.0;
  timeline.trace_probes = 11;
  timeline.shards = {{0, 5, 2, 40}, {1, 6, 3, 40}};

  StatsResponse stats_response;
  stats_response.request_id = 47;
  stats_response.has_metrics = true;
  stats_response.prometheus_text = "provlin_server_requests 5\n";
  stats_response.metrics_json = "{}";

  return {
      EncodeRequestEnvelope({42, "indexproj", MakeRequest()}),
      EncodeRequestEnvelope({}),
      EncodeAnswerResponse(43, MakeAnswer()),
      EncodeErrorResponse(44, ErrorCode::kOverloaded, "queue full"),
      EncodeRequestEnvelope(v2_envelope),
      EncodeAnswerResponseV2(45, MakeAnswer(), &timeline),
      EncodeStatsRequest({46, kStatsWantMetrics | kStatsWantTrace}),
      EncodeStatsResponse(stats_response),
  };
}

std::vector<std::string> SegmentSeeds() {
  constexpr uint64_t kRun = 7;
  Random rng(51);
  std::vector<Row> xform;
  for (int64_t i = 0; i < 300; ++i) {
    Row row(8);
    row[0] = Datum(static_cast<int64_t>(kRun));
    row[1] = Datum(i);
    IndexPath in_idx{static_cast<int32_t>(rng.Uniform(6))};
    IndexPath out_idx{static_cast<int32_t>(rng.Uniform(6)),
                      static_cast<int32_t>(rng.Uniform(6))};
    if (rng.Bernoulli(0.8)) {
      row[2] = Datum(IdPair{static_cast<uint32_t>(rng.Uniform(5)),
                            static_cast<uint32_t>(rng.Uniform(3))});
      row[3] = Datum(std::move(in_idx));
      row[4] = Datum(100 + i);
    }
    row[5] = Datum(IdPair{static_cast<uint32_t>(rng.Uniform(5)),
                          static_cast<uint32_t>(3 + rng.Uniform(3))});
    row[6] = Datum(std::move(out_idx));
    row[7] = Datum(200 + i);
    xform.push_back(std::move(row));
  }
  std::vector<Row> xfer;
  for (int64_t i = 0; i < 200; ++i) {
    Row row(6);
    row[0] = Datum(static_cast<int64_t>(kRun));
    row[1] = Datum(IdPair{static_cast<uint32_t>(rng.Uniform(4)),
                          static_cast<uint32_t>(rng.Uniform(2))});
    row[2] = Datum(IndexPath{static_cast<int32_t>(rng.Uniform(8))});
    row[3] = Datum(IdPair{static_cast<uint32_t>(4 + rng.Uniform(4)),
                          static_cast<uint32_t>(rng.Uniform(2))});
    row[4] = Datum(IndexPath{static_cast<int32_t>(rng.Uniform(8))});
    row[5] = Datum(i);
    xfer.push_back(std::move(row));
  }
  return {
      Segment::Build(Segment::Kind::kXform, kRun, xform)->bytes(),
      Segment::Build(Segment::Kind::kXfer, kRun, xfer)->bytes(),
      Segment::Build(Segment::Kind::kXform, kRun, {})->bytes(),
  };
}

bool WriteSeeds(const char* dir, const char* prefix,
                const std::vector<std::string>& seeds) {
  for (size_t i = 0; i < seeds.size(); ++i) {
    std::string path =
        std::string(dir) + "/" + prefix + "_" + std::to_string(i) + ".bin";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "make_seed_corpus: cannot write %s\n",
                   path.c_str());
      return false;
    }
    std::fwrite(seeds[i].data(), 1, seeds[i].size(), f);
    std::fclose(f);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <wire_dir> <segment_dir>\n", argv[0]);
    return 2;
  }
  if (!WriteSeeds(argv[1], "wire", WireSeeds())) return 1;
  if (!WriteSeeds(argv[2], "segment", SegmentSeeds())) return 1;
  std::printf("make_seed_corpus: wire + segment seeds written\n");
  return 0;
}
