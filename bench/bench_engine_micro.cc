// Engine micro-benchmarks: iteration-tree construction (Def. 2/3) and
// end-to-end synthetic execution with provenance capture.

#include <benchmark/benchmark.h>

#include <map>

#include "engine/iteration.h"
#include "testbed/workbench.h"
#include "workflow/port_space.h"

namespace {

using namespace provlin;

/// A dataflow-shaped namespace of `procs` processors with one input and
/// one output port each, for the port-binding lookup benches below.
workflow::Dataflow MakePortBenchFlow(int procs) {
  workflow::Dataflow flow("bench");
  for (int i = 0; i < procs; ++i) {
    workflow::Processor p;
    p.name = "processor_" + std::to_string(i);
    p.inputs.push_back({"in", PortType::String(1)});
    p.outputs.push_back({"out", PortType::String(1)});
    flow.AddProcessor(std::move(p));
  }
  return flow;
}

void BM_CrossProductTree(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::vector<std::string> items;
  for (int i = 0; i < d; ++i) items.push_back("x" + std::to_string(i));
  Value a = Value::StringList(items);
  Value b = Value::StringList(items);
  for (auto _ : state) {
    auto tree = engine::BuildIterationTree(
        {a, b}, {1, 1}, workflow::IterationStrategy::kCross);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * d * d);
}
BENCHMARK(BM_CrossProductTree)->Arg(10)->Arg(50)->Arg(150);

// Identifier-layer payoff at the engine layer: resolving a port binding
// during execution. The seed kept port values in a map keyed by the
// "processor:port" string; the executor now indexes a flat vector by
// the dense PortSlotId from the dataflow's cached PortSpace.

void BM_PortBindingStringKeyed(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  workflow::Dataflow flow = MakePortBenchFlow(procs);
  std::map<std::string, Value> port_values;
  for (const workflow::Processor& p : flow.processors()) {
    port_values[workflow::PortRef{p.name, "out"}.ToString()] =
        Value::Str(p.name);
  }
  int probe = 0;
  for (auto _ : state) {
    workflow::PortRef ref{"processor_" + std::to_string(probe++ % procs),
                          "out"};
    auto it = port_values.find(ref.ToString());
    benchmark::DoNotOptimize(it->second);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PortBindingStringKeyed)->Arg(30)->Arg(150);

void BM_PortBindingSlotKeyed(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  workflow::Dataflow flow = MakePortBenchFlow(procs);
  const workflow::PortSpace& ports = flow.Ports();
  std::vector<Value> port_values(ports.size());
  for (const workflow::Processor& p : flow.processors()) {
    port_values[ports.Find(workflow::PortRef{p.name, "out"})] =
        Value::Str(p.name);
  }
  int probe = 0;
  for (auto _ : state) {
    workflow::PortRef ref{"processor_" + std::to_string(probe++ % procs),
                          "out"};
    workflow::PortSlotId slot = ports.Find(ref);
    benchmark::DoNotOptimize(port_values[slot]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PortBindingSlotKeyed)->Arg(30)->Arg(150);

void BM_SyntheticRunWithProvenance(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  int run = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto wb = testbed::Workbench::Synthetic(l);
    if (!wb.ok()) {
      state.SkipWithError(wb.status().ToString().c_str());
      break;
    }
    state.ResumeTiming();
    auto r = (*wb)->RunSynthetic(d, "r" + std::to_string(run++));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r->total_invocations);
  }
}
BENCHMARK(BM_SyntheticRunWithProvenance)
    ->Args({10, 10})
    ->Args({50, 25})
    ->Args({75, 50});

}  // namespace

BENCHMARK_MAIN();
