// Engine micro-benchmarks: iteration-tree construction (Def. 2/3) and
// end-to-end synthetic execution with provenance capture.

#include <benchmark/benchmark.h>

#include "engine/iteration.h"
#include "testbed/workbench.h"

namespace {

using namespace provlin;

void BM_CrossProductTree(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::vector<std::string> items;
  for (int i = 0; i < d; ++i) items.push_back("x" + std::to_string(i));
  Value a = Value::StringList(items);
  Value b = Value::StringList(items);
  for (auto _ : state) {
    auto tree = engine::BuildIterationTree(
        {a, b}, {1, 1}, workflow::IterationStrategy::kCross);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * d * d);
}
BENCHMARK(BM_CrossProductTree)->Arg(10)->Arg(50)->Arg(150);

void BM_SyntheticRunWithProvenance(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  int run = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto wb = testbed::Workbench::Synthetic(l);
    if (!wb.ok()) {
      state.SkipWithError(wb.status().ToString().c_str());
      break;
    }
    state.ResumeTiming();
    auto r = (*wb)->RunSynthetic(d, "r" + std::to_string(run++));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r->total_invocations);
  }
}
BENCHMARK(BM_SyntheticRunWithProvenance)
    ->Args({10, 10})
    ->Args({50, 25})
    ->Args({75, 50});

}  // namespace

BENCHMARK_MAIN();
