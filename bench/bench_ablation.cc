// Ablation benches for the design choices DESIGN.md calls out:
//
//   (a) plan caching — the s1 spec traversal is cached per (target,
//       index, 𝒫); how much does a cold plan cost as the graph grows?
//   (b) value interning — the recorder dedups value literals per run;
//       how much smaller is the val table than the raw binding stream?
//   (c) overlap-probe shape — the trace store answers an index-overlap
//       question with |q|+1 point probes + 1 range scan; compare with
//       the naive alternative of scanning the whole (run, processor,
//       port) prefix and filtering client-side.

#include <cstdio>

#include "bench/bench_util.h"
#include "lineage/index_proj_lineage.h"
#include "provenance/schema.h"
#include "storage/query.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

using namespace provlin;
using bench::CheckResult;

namespace {

void AblationPlanCache() {
  std::printf("(a) plan cache: cold vs warm IndexProj query (d=25)\n\n");
  bench::TablePrinter table({"l", "cold_ms", "warm_ms", "speedup"});
  for (int l : {10, 50, 100, 150}) {
    auto wb = CheckResult(testbed::Workbench::Synthetic(l), "workbench");
    CheckResult(wb->RunSynthetic(25, "r0"), "run");
    workflow::PortRef target{workflow::kWorkflowProcessor, "RESULT"};
    Index q({1, 2});
    lineage::InterestSet interest{testbed::kListGen};

    double cold = CheckResult(
        bench::BestOfFive([&]() -> Status {
          wb->IndexProj()->ClearPlanCache();
          return wb->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", target, q, interest)).status();
        }),
        "cold");
    double warm = CheckResult(
        bench::BestOfFive([&]() -> Status {
          return wb->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", target, q, interest)).status();
        }),
        "warm");
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  warm > 0 ? cold / warm : 0.0);
    table.AddRow({std::to_string(l), bench::Ms(cold), bench::Ms(warm),
                  speedup});
  }
  table.Print();
}

void AblationInterning() {
  std::printf("\n(b) value interning: stored literals vs raw bindings\n\n");
  bench::TablePrinter table(
      {"l", "d", "val_rows", "binding_refs", "dedup_ratio"});
  for (auto [l, d] : {std::pair{10, 10}, std::pair{50, 25},
                      std::pair{75, 50}}) {
    auto wb = CheckResult(testbed::Workbench::Synthetic(l), "workbench");
    CheckResult(wb->RunSynthetic(d, "r0"), "run");
    auto counts = CheckResult(wb->store()->CountRecords("r0"), "counts");
    // Each xform row holds up to 2 value refs, each xfer row 1.
    size_t refs = counts.xform_rows * 2 + counts.xfer_rows;
    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  static_cast<double>(refs) /
                      static_cast<double>(counts.value_rows));
    table.AddRow({std::to_string(l), std::to_string(d),
                  bench::Num(counts.value_rows), bench::Num(refs), ratio});
  }
  table.Print();
}

void AblationProbeShape() {
  std::printf(
      "\n(c) overlap probe: point+range probes vs whole-port scan+filter\n"
      "(l=75, d=50; probing CHAINA_40:y for index [7])\n\n");
  auto wb = CheckResult(testbed::Workbench::Synthetic(75), "workbench");
  CheckResult(wb->RunSynthetic(50, "r0"), "run");

  // Structured overlap probe (what the trace store does).
  double structured = CheckResult(
      bench::BestOfFive([&]() -> Status {
        return wb->store()
            ->FindProducing("r0", "CHAINA_40", "y", Index({7}))
            .status();
      }),
      "structured");

  // Naive alternative: fetch every binding of the port, filter here.
  const storage::Table* xform =
      CheckResult(wb->db()->GetTable(provenance::tables::kXform), "table");
  double scan_all = CheckResult(
      bench::BestOfFive([&]() -> Status {
        storage::SelectQuery q;
        q.equals.push_back({"run_id", storage::Datum("r0")});
        q.equals.push_back({"processor", storage::Datum("CHAINA_40")});
        q.equals.push_back({"out_port", storage::Datum("y")});
        PROVLIN_ASSIGN_OR_RETURN(storage::SelectResult r,
                                 storage::ExecuteSelect(*xform, q));
        size_t hits = 0;
        Index want({7});
        for (const storage::Row& row : r.rows) {
          auto idx = Index::Decode(row[7].AsString());
          if (idx.ok() &&
              (idx->IsPrefixOf(want) || want.IsPrefixOf(*idx))) {
            ++hits;
          }
        }
        if (hits == 0) return Status::Internal("scan found nothing");
        return Status::OK();
      }),
      "scan");

  bench::TablePrinter table({"strategy", "best_ms"});
  table.AddRow({"point+range probes", bench::Ms(structured)});
  table.AddRow({"port scan + filter", bench::Ms(scan_all)});
  table.Print();
}

}  // namespace

int main() {
  AblationPlanCache();
  AblationInterning();
  AblationProbeShape();
  return 0;
}
