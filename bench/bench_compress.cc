// Compressed trace segments (DESIGN.md §13) at ~10x the paper's trace
// scale: 100k xform + 100k xfer rows across eight runs on a four-shard
// store, measured hot (B+tree tier) and then sealed in place. Three
// measurements:
//
//   footprint — resident bytes of the identical rows in each tier
//               (the headline: sealed should be well under 1/4 of hot),
//   probe     — a sorted multi-run probe batch answered by the B+tree
//               MultiSeek path before sealing vs in situ on compressed
//               blocks after (best-of-five each; sealed must stay
//               within 2x),
//   seal      — SealAllRuns throughput, rows/s and encoded bytes/row.
//
// One store serves both phases so the process-wide accounting the
// --compress-ratios check validates stays exact: at exit,
// sum(provenance/shard<k>/segment_rows) + sum(.../hot_rows) must equal
// provenance/rows_ingested, the per-shard segments counters must be
// gapless, and the footprint entries must show ratio >= 1. The logical
// probe counts are deterministic and MUST be identical across tiers —
// sealing is purely physical.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "provenance/store_open.h"
#include "provenance/trace_store.h"

int main() {
  using namespace provlin;
  using bench::CheckOk;
  using bench::CheckResult;
  using provenance::CompressMode;
  using provenance::PortProbe;
  using provenance::TraceStore;
  using provenance::XferRecord;
  using provenance::XformRecord;

  constexpr size_t kShards = 4;
  constexpr size_t kRuns = 8;
  constexpr int kRowsPerRun = 12500;  // x8 runs = 100k rows per table
  constexpr int kProcs = 32;
  constexpr int kFanout = 50;  // distinct top-level indices per run

  std::printf(
      "Compressed segment tier vs hot B+tree tier "
      "(%zu runs x %d xform + %d xfer rows, %zu shards)\n\n",
      kRuns, kRowsPerRun, kRowsPerRun, kShards);

  // Build the store hot: sealing is done explicitly (and timed) after
  // the hot-tier measurements, hence compress stays pinned off.
  provenance::StoreOptions options;  // empty db_path = in-memory
  options.shards = kShards;
  options.compress = CompressMode::kOff;
  provenance::OpenedStore opened =
      CheckResult(provenance::OpenStore(options), "open store");
  TraceStore& store = opened.store();

  const common::SymbolId port_x = store.Intern("x");
  const common::SymbolId port_y = store.Intern("y");
  std::vector<common::SymbolId> procs;
  for (int p = 0; p < kProcs; ++p) {
    procs.push_back(store.Intern("P" + std::to_string(p)));
  }
  for (size_t r = 0; r < kRuns; ++r) {
    const std::string run_id = "cmp" + std::to_string(r);
    CheckOk(store.InsertRun(run_id, "bench"), "InsertRun");
    const common::SymbolId run = store.Intern(run_id);
    for (int i = 0; i < kRowsPerRun; ++i) {
      const auto proc = procs[static_cast<size_t>(i) % procs.size()];
      const auto next = procs[static_cast<size_t>(i + 1) % procs.size()];
      XformRecord rec;
      rec.run = run;
      rec.event_id = i;
      rec.processor = proc;
      rec.has_in = true;
      rec.in_port = port_x;
      rec.in_index = Index({static_cast<int32_t>(i % kFanout)});
      rec.in_value = i;
      rec.has_out = true;
      rec.out_port = port_y;
      rec.out_index = Index({static_cast<int32_t>(i % kFanout),
                             static_cast<int32_t>(i % 3)});
      rec.out_value = i;
      CheckOk(store.InsertXform(rec), "InsertXform");
      XferRecord arc;
      arc.run = run;
      arc.src_proc = proc;
      arc.src_port = port_y;
      arc.src_index = rec.out_index;
      arc.dst_proc = next;
      arc.dst_port = port_x;
      arc.dst_index = rec.out_index;
      arc.value_id = i;
      CheckOk(store.InsertXfer(arc), "InsertXfer");
    }
  }
  CheckOk(store.Flush(), "Flush");

  // One trace-shaped probe batch spanning all runs and processors —
  // the sorted multi-probe shape the batched lineage levels issue.
  std::vector<PortProbe> out_probes;
  std::vector<PortProbe> into_probes;
  for (size_t r = 0; r < kRuns; ++r) {
    const common::SymbolId run = store.Intern("cmp" + std::to_string(r));
    for (int p = 0; p < kProcs; ++p) {
      const common::SymbolId proc = procs[static_cast<size_t>(p)];
      for (int k = 0; k < kFanout; k += 5) {
        out_probes.push_back(
            {run, proc, port_y, Index({static_cast<int32_t>(k)})});
        into_probes.push_back(
            {run, proc, port_x, Index({static_cast<int32_t>(k)})});
      }
    }
  }

  auto run_batch = [&]() -> Status {
    PROVLIN_ASSIGN_OR_RETURN(auto produced,
                             store.FindProducingBatch(out_probes));
    PROVLIN_ASSIGN_OR_RETURN(auto arcs, store.FindXfersIntoBatch(into_probes));
    if (produced.size() != out_probes.size() ||
        arcs.size() != into_probes.size()) {
      return Status::Internal("batch result shape mismatch");
    }
    return Status::OK();
  };

  auto* probes_ctr = common::metrics::GetCounter("storage/index_probes");
  auto* descents_ctr = common::metrics::GetCounter("storage/descents");
  auto counted_batch = [&](uint64_t* probes, uint64_t* descents) {
    uint64_t p0 = probes_ctr->Value();
    uint64_t d0 = descents_ctr->Value();
    CheckOk(run_batch(), "probe batch");
    *probes = probes_ctr->Value() - p0;
    *descents = descents_ctr->Value() - d0;
  };

  // --- hot phase -----------------------------------------------------------
  TraceStore::TierBytes hot_tiers = store.ApproxMemory();
  double hot_ms = CheckResult(bench::BestOfFive(run_batch), "hot batch");
  uint64_t hot_probes = 0, hot_descents = 0;
  counted_batch(&hot_probes, &hot_descents);

  // --- seal in place -------------------------------------------------------
  WallTimer seal_timer;
  CheckOk(store.SealAllRuns(), "SealAllRuns");
  double seal_ms = seal_timer.ElapsedMillis();
  TraceStore::TierBytes sealed_tiers = store.ApproxMemory();

  // --- sealed phase --------------------------------------------------------
  double sealed_ms = CheckResult(bench::BestOfFive(run_batch), "sealed batch");
  uint64_t sealed_probes = 0, sealed_descents = 0;
  counted_batch(&sealed_probes, &sealed_descents);

  // --- report --------------------------------------------------------------
  double ratio = sealed_tiers.sealed_bytes > 0
                     ? static_cast<double>(hot_tiers.hot_bytes) /
                           static_cast<double>(sealed_tiers.sealed_bytes)
                     : 0.0;
  double bytes_per_row =
      sealed_tiers.sealed_rows > 0
          ? static_cast<double>(sealed_tiers.sealed_bytes) /
                static_cast<double>(sealed_tiers.sealed_rows)
          : 0.0;

  bench::TablePrinter table({"measure", "hot", "sealed", "ratio"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  table.AddRow({"resident_bytes", bench::Num(hot_tiers.hot_bytes),
                bench::Num(sealed_tiers.sealed_bytes), buf});
  std::snprintf(buf, sizeof(buf), "%.2fx",
                hot_ms > 0 ? sealed_ms / hot_ms : 0.0);
  table.AddRow({"batch_ms", bench::Ms(hot_ms), bench::Ms(sealed_ms), buf});
  table.AddRow({"batch_descents", bench::Num(hot_descents),
                bench::Num(sealed_descents), "-"});
  table.Print();
  std::printf(
      "\nseal: %zu rows in %.1f ms (%.0f rows/s), %.2f bytes/row encoded\n",
      sealed_tiers.sealed_rows, seal_ms,
      static_cast<double>(sealed_tiers.sealed_rows) / (seal_ms / 1000.0),
      bytes_per_row);

  // The footprint entries carry bytes in the probes column (their
  // timings are meaningless and never compared); deterministic=false
  // keeps them out of the exact-match check while --compress-ratios
  // reads them for the hot/sealed ratio.
  bench::JsonWriter json("compress");
  json.Add("probe_hot", hot_ms, hot_probes, hot_descents);
  json.Add("probe_sealed", sealed_ms, sealed_probes, sealed_descents);
  json.Add("seal_rows", seal_ms, sealed_tiers.sealed_rows, 0);
  json.Add("footprint_hot_bytes", 0.0, hot_tiers.hot_bytes, 0,
           /*deterministic=*/false);
  json.Add("footprint_sealed_bytes", 0.0, sealed_tiers.sealed_bytes, 0,
           /*deterministic=*/false);
  json.Write();

  if (hot_probes != sealed_probes) {
    std::fprintf(stderr,
                 "FATAL: logical probe counts diverge across tiers "
                 "(hot %llu, sealed %llu)\n",
                 static_cast<unsigned long long>(hot_probes),
                 static_cast<unsigned long long>(sealed_probes));
    return 1;
  }
  return 0;
}
