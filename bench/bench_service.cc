// Batch lineage throughput: queries/second of the concurrent
// LineageService at 1/2/4/8 worker threads, NI vs IndexProj, on a mixed
// batch of focused and partially unfocused queries over several runs.
//
// Expected shape: IndexProj scales near-linearly until the distinct-plan
// parallelism is exhausted (the shared plan cache serves every repeat
// from memory), NI scales with the trace-probe work per request.

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/tracing.h"
#include "lineage/engine.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "lineage/service.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

int main() {
  using namespace provlin;
  using bench::CheckResult;

  constexpr int kL = 40;       // chain length (2*l+2 processors)
  constexpr int kD = 20;       // input list size
  constexpr int kRuns = 4;     // recorded runs in the store
  constexpr int kBatch = 256;  // requests per batch

  unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Batch lineage service throughput (l=%d, d=%d, %d runs, "
      "batch=%d requests)\n"
      "hardware threads: %u%s\n\n",
      kL, kD, kRuns, kBatch, cores,
      cores <= 1 ? "  (single-core host: expect speedup ~1.0x)" : "");

  auto wb = CheckResult(testbed::Workbench::Synthetic(kL), "workbench");
  std::vector<std::string> runs;
  for (int r = 0; r < kRuns; ++r) {
    std::string run = "r" + std::to_string(r);
    CheckResult(wb->RunSynthetic(kD + r, run), "run");
    runs.push_back(run);
  }

  // Interest sets of growing size along the chains (the Fig. 10 shape):
  // focused, |P|=8, |P|=16 — so requests carry real s2 work.
  auto interest_of = [&](int size) {
    lineage::InterestSet interest{testbed::kListGen};
    int added = 1;
    for (int k = kL; k >= 1 && added < size; --k) {
      interest.insert(testbed::ChainAProc(k));
      if (++added >= size) break;
      interest.insert(testbed::ChainBProc(k));
      ++added;
    }
    return interest;
  };
  const std::vector<lineage::InterestSet> interests = {
      interest_of(1), interest_of(8), interest_of(16)};
  const std::vector<Index> indices = {Index({1, 2}), Index({0, 1}),
                                      Index({2, 0}), Index({1, 0})};
  workflow::PortRef target{workflow::kWorkflowProcessor, "RESULT"};

  auto make_batch = [&](const lineage::LineageEngine* engine) {
    std::vector<lineage::ServiceRequest> batch;
    batch.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      size_t run = static_cast<size_t>(i) % runs.size();
      size_t q = static_cast<size_t>(i) % indices.size();
      size_t p = static_cast<size_t>(i) % interests.size();
      batch.push_back(
          {engine, lineage::LineageRequest::SingleRun(
                       runs[run], target, indices[q], interests[p])});
    }
    return batch;
  };

  bench::TablePrinter table({"engine", "threads", "best_ms", "qps",
                             "speedup", "hit_rate", "probes", "descents"});
  bench::JsonWriter json("service");
  const size_t thread_counts[] = {1, 2, 4, 8};
  for (const char* name : {"naive", "indexproj"}) {
    const lineage::LineageEngine* engine = wb->Engine(name);
    std::vector<lineage::ServiceRequest> batch = make_batch(engine);
    double base_qps = 0.0;
    for (size_t threads : thread_counts) {
      // One request per task: throughput scaling is the question, so
      // same-plan chaining onto one worker is turned off.
      lineage::ServiceOptions options;
      options.num_threads = threads;
      options.group_same_plan = false;
      lineage::LineageService service(options);

      // Warm caches once, then measure with the paper's best-of-five.
      (void)service.ExecuteBatch(batch);
      double best = CheckResult(
          bench::BestOfFive([&]() -> Status {
            std::vector<lineage::ServiceResponse> responses =
                service.ExecuteBatch(batch);
            for (const lineage::ServiceResponse& resp : responses) {
              PROVLIN_RETURN_IF_ERROR(resp.status);
            }
            return Status::OK();
          }),
          "batch");
      double qps = static_cast<double>(kBatch) / (best / 1000.0);
      if (threads == 1) base_qps = qps;
      lineage::ServiceMetrics m = service.metrics();
      char speedup[32], qps_str[32], rate[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx", qps / base_qps);
      std::snprintf(qps_str, sizeof(qps_str), "%.0f", qps);
      std::snprintf(rate, sizeof(rate), "%.2f", m.plan_cache_hit_rate());
      uint64_t batches = m.batches ? m.batches : 1;
      table.AddRow({name, std::to_string(threads), bench::Ms(best), qps_str,
                    speedup, rate, bench::Num(m.trace_probes / batches),
                    bench::Num(m.trace_descents / batches)});
      // Thread-raced memo sharing makes these counters batch-schedule
      // dependent; record them but keep them out of the baseline check.
      json.Add(std::string(name) + "_t" + std::to_string(threads), best,
               m.trace_probes / batches, m.trace_descents / batches,
               /*deterministic=*/false);
    }
  }
  table.Print();

  // Descent amortization on the 256-request batch, measured
  // single-threaded so the counters are deterministic: the pre-batching
  // baseline (single-probe engines, no probe memo) against the default
  // configuration (frontier/plan-batched probes + shared probe memo).
  std::printf(
      "\nDescent amortization (single-threaded, batch=%d requests):\n\n",
      kBatch);
  lineage::NaiveLineage naive_single(
      wb->store(), lineage::ProbeExecution::kSingleProbe);
  auto ip_single = CheckResult(
      lineage::IndexProjLineage::Create(
          wb->flow(), wb->store(), lineage::ProbeExecution::kSingleProbe),
      "single-probe engine");
  bench::TablePrinter amort({"engine", "mode", "best_ms", "probes",
                             "descents", "memo_hits", "amortization"});
  for (const char* name : {"naive", "indexproj"}) {
    const lineage::LineageEngine* batched = wb->Engine(name);
    const lineage::LineageEngine* single =
        std::string(name) == "naive"
            ? static_cast<const lineage::LineageEngine*>(&naive_single)
            : static_cast<const lineage::LineageEngine*>(&ip_single);
    // One service per mode, measured interleaved: the modes differ by
    // less than the machine drifts between two sequential blocks.
    lineage::ServiceOptions single_opts;
    single_opts.num_threads = 1;
    single_opts.group_same_plan = false;
    single_opts.dedupe_probes = false;
    lineage::LineageService single_service(single_opts);
    std::vector<lineage::ServiceRequest> single_batch = make_batch(single);

    lineage::ServiceOptions batched_opts = single_opts;
    batched_opts.dedupe_probes = true;  // memo is part of the new mode
    lineage::LineageService batched_service(batched_opts);
    std::vector<lineage::ServiceRequest> batched_batch = make_batch(batched);

    auto run_on = [](lineage::LineageService* service,
                     const std::vector<lineage::ServiceRequest>& batch)
        -> Status {
      std::vector<lineage::ServiceResponse> responses =
          service->ExecuteBatch(batch);
      for (const lineage::ServiceResponse& resp : responses) {
        PROVLIN_RETURN_IF_ERROR(resp.status);
      }
      return Status::OK();
    };
    bench::CheckOk(run_on(&single_service, single_batch), "warm single");
    bench::CheckOk(run_on(&batched_service, batched_batch), "warm batched");
    auto [batched_best, single_best] = CheckResult(
        bench::BestOfFiveInterleaved(
            [&]() { return run_on(&batched_service, batched_batch); },
            [&]() { return run_on(&single_service, single_batch); },
            /*calls_per_round=*/2),
        "amortization batch");

    uint64_t single_descents = 0;
    for (bool use_batched : {false, true}) {
      lineage::ServiceMetrics m = use_batched ? batched_service.metrics()
                                              : single_service.metrics();
      uint64_t batches = m.batches ? m.batches : 1;
      uint64_t probes = m.trace_probes / batches;
      uint64_t descents = m.trace_descents / batches;
      uint64_t hits = m.probe_memo_hits / batches;
      if (!use_batched) single_descents = descents;
      char ratio[32];
      if (use_batched && descents > 0) {
        std::snprintf(ratio, sizeof(ratio), "%.2fx fewer",
                      static_cast<double>(single_descents) /
                          static_cast<double>(descents));
      } else {
        std::snprintf(ratio, sizeof(ratio), "baseline");
      }
      double best = use_batched ? batched_best : single_best;
      amort.AddRow({name, use_batched ? "batched" : "single-probe",
                    bench::Ms(best), bench::Num(probes), bench::Num(descents),
                    bench::Num(hits), ratio});
      json.Add(std::string("batch256_") + name +
                   (use_batched ? "_batched" : "_single"),
               best, probes, descents);
    }
  }
  amort.Print();

  // Shard-count axis (DESIGN.md §11): the same 256-request batch over
  // run-sharded stores. Logical probes are shard-invariant (asserted by
  // the baseline check via the single-threaded entries); descents may
  // only shrink as per-shard trees get shallower. The 4-thread rows
  // show whether fan-out across shards helps concurrent querying.
  std::printf("\nRun-sharded store (batch=%d requests):\n\n", kBatch);
  {
    bench::TablePrinter shard_table(
        {"engine", "shards", "threads", "best_ms", "qps", "probes",
         "descents"});
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      provenance::TraceStoreOptions store_options;
      store_options.shards = shards;
      auto swb = CheckResult(testbed::Workbench::Synthetic(kL, store_options),
                             "sharded workbench");
      for (int r = 0; r < kRuns; ++r) {
        CheckResult(swb->RunSynthetic(kD + r, "r" + std::to_string(r)),
                    "sharded run");
      }
      for (const char* name : {"naive", "indexproj"}) {
        const lineage::LineageEngine* engine = swb->Engine(name);
        std::vector<lineage::ServiceRequest> batch = make_batch(engine);
        for (size_t threads : {size_t{1}, size_t{4}}) {
          if (threads > 1 && std::string(name) == "naive") continue;
          lineage::ServiceOptions options;
          options.num_threads = threads;
          options.group_same_plan = false;
          lineage::LineageService service(options);
          (void)service.ExecuteBatch(batch);
          double best = CheckResult(
              bench::BestOfFive([&]() -> Status {
                std::vector<lineage::ServiceResponse> responses =
                    service.ExecuteBatch(batch);
                for (const lineage::ServiceResponse& resp : responses) {
                  PROVLIN_RETURN_IF_ERROR(resp.status);
                }
                return Status::OK();
              }),
              "sharded batch");
          lineage::ServiceMetrics m = service.metrics();
          uint64_t batches = m.batches ? m.batches : 1;
          char qps_str[32];
          std::snprintf(qps_str, sizeof(qps_str), "%.0f",
                        static_cast<double>(kBatch) / (best / 1000.0));
          shard_table.AddRow({name, std::to_string(shards),
                              std::to_string(threads), bench::Ms(best),
                              qps_str, bench::Num(m.trace_probes / batches),
                              bench::Num(m.trace_descents / batches)});
          // Single-threaded counters are deterministic (per-shard fan-out
          // tasks do fixed work each); multi-threaded ones race the memo.
          json.Add("shards" + std::to_string(shards) + "_" + name + "_t" +
                       std::to_string(threads),
                   best, m.trace_probes / batches, m.trace_descents / batches,
                   /*deterministic=*/threads == 1);
        }
      }
    }
    shard_table.Print();
  }

  // Span-tracing overhead on the concurrent service path (IndexProj,
  // 4 workers, the throughput batch), interleaved A/B: disabled-tracer
  // guards must be invisible, the enabled tracer pays per-span ring
  // writes from every worker thread through one mutex.
  {
    lineage::ServiceOptions options;
    options.num_threads = 4;
    options.group_same_plan = false;
    lineage::LineageService service(options);
    std::vector<lineage::ServiceRequest> batch =
        make_batch(wb->Engine("indexproj"));
    auto run_batch = [&]() -> Status {
      std::vector<lineage::ServiceResponse> responses =
          service.ExecuteBatch(batch);
      for (const lineage::ServiceResponse& resp : responses) {
        PROVLIN_RETURN_IF_ERROR(resp.status);
      }
      return Status::OK();
    };
    bench::CheckOk(run_batch(), "warm overhead batch");
    auto& tracer = common::tracing::Tracer::Global();
    auto [off_ms, on_ms] = CheckResult(
        bench::BestOfFiveInterleaved(
            [&]() -> Status {
              if (tracer.enabled()) tracer.Disable();
              return run_batch();
            },
            [&]() -> Status {
              if (!tracer.enabled()) tracer.Enable(1u << 16);
              return run_batch();
            },
            /*calls_per_round=*/2),
        "tracing overhead");
    tracer.Disable();
    std::printf(
        "\nSpan-tracing overhead (indexproj, 4 threads, batch=%d):\n"
        "  trace off %.3f ms   trace on %.3f ms   overhead %+.1f%%\n",
        kBatch, off_ms, on_ms,
        off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0);
    json.Add("overhead_indexproj_t4_traceoff", off_ms, 0, 0,
             /*deterministic=*/false);
    json.Add("overhead_indexproj_t4_traceon", on_ms, 0, 0,
             /*deterministic=*/false);
  }
  json.Write();
  return 0;
}
