// Reproduces Fig. 10: IndexProj response time on *partially unfocused*
// queries — the interesting set 𝒫 grows from 1 processor up to ~50% of
// the graph (l=75: 152 nodes), so the number of generated trace queries
// (s2 probes) grows proportionally.
//
// Expected shape (paper §4.2): response time grows with |𝒫| toward the
// NI/unfocused regime.

#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

int main() {
  using namespace provlin;
  using bench::CheckResult;

  constexpr int kL = 75;
  constexpr int kD = 50;

  std::printf(
      "Fig. 10: IndexProj on partially unfocused queries (l=%d, d=%d)\n"
      "|P| grows to ~50%% of the %d-node graph\n\n",
      kL, kD, testbed::SyntheticNodeCount(kL));

  auto wb = CheckResult(testbed::Workbench::Synthetic(kL), "workbench");
  CheckResult(wb->RunSynthetic(kD, "r0"), "run");

  workflow::PortRef target{workflow::kWorkflowProcessor, "RESULT"};
  Index q({1, 2});

  // Grow 𝒫 along the two chains, starting from the generator.
  auto interest_of = [&](int size) {
    lineage::InterestSet interest{testbed::kListGen};
    int added = 1;
    for (int k = kL; k >= 1 && added < size; --k) {
      interest.insert(testbed::ChainAProc(k));
      if (++added >= size) break;
      interest.insert(testbed::ChainBProc(k));
      ++added;
    }
    return interest;
  };

  // Same plans, two execution modes: the default batched engine submits
  // a plan's |P|-many probes as one sorted batch; the single-probe
  // engine is the pre-batching baseline (one descent per probe).
  auto single_engine =
      CheckResult(lineage::IndexProjLineage::Create(
                      wb->flow(), wb->store(),
                      lineage::ProbeExecution::kSingleProbe),
                  "single-probe engine");

  bench::TablePrinter table({"|P|", "pct_of_nodes", "best_ms", "single_ms",
                             "probes", "descents", "single_desc", "bindings",
                             "trace_queries"});
  bench::JsonWriter json("fig10");
  uint64_t desc_single_76 = 0, desc_batched_76 = 0;
  const int sizes[] = {1, 4, 8, 16, 24, 32, 48, 64, 76};
  for (int size : sizes) {
    lineage::InterestSet interest = interest_of(size);
    lineage::LineageAnswer answer;
    lineage::LineageAnswer single_answer;
    // Interleaved A/B: machine drift between two sequential best-of-five
    // blocks exceeds the batched/single delta on small in-memory trees.
    auto [best, single_best] = CheckResult(
        bench::BestOfFiveInterleaved(
            [&]() -> Status {
              auto a = wb->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", target, q, interest));
              PROVLIN_RETURN_IF_ERROR(a.status());
              answer = std::move(a).value();
              return Status::OK();
            },
            [&]() -> Status {
              auto a = single_engine.Query(lineage::LineageRequest::SingleRun("r0", target, q, interest));
              PROVLIN_RETURN_IF_ERROR(a.status());
              single_answer = std::move(a).value();
              return Status::OK();
            }),
        "query");
    if (single_answer.bindings != answer.bindings) {
      std::fprintf(stderr, "FATAL: modes disagree at |P|=%d\n", size);
      return 1;
    }
    auto plan = CheckResult(wb->IndexProj()->Plan(target, q, interest),
                            "plan");
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%",
                  100.0 * static_cast<double>(interest.size()) /
                      testbed::SyntheticNodeCount(kL));
    table.AddRow({std::to_string(interest.size()), pct, bench::Ms(best),
                  bench::Ms(single_best),
                  bench::Num(answer.timing.trace_probes),
                  bench::Num(answer.timing.trace_descents),
                  bench::Num(single_answer.timing.trace_descents),
                  bench::Num(answer.bindings.size()),
                  bench::Num(plan->queries.size())});
    std::string cfg = "P" + std::to_string(interest.size());
    json.Add(cfg + "_batched", best, answer.timing.trace_probes,
             answer.timing.trace_descents);
    json.Add(cfg + "_single", single_best,
             single_answer.timing.trace_probes,
             single_answer.timing.trace_descents);
    if (size == 76) {
      desc_single_76 = single_answer.timing.trace_descents;
      desc_batched_76 = answer.timing.trace_descents;
    }
  }
  table.Print();
  if (desc_batched_76 > 0) {
    std::printf(
        "\n|P|=76 descent amortization: %llu single-probe vs %llu batched "
        "(%.2fx fewer)\n",
        static_cast<unsigned long long>(desc_single_76),
        static_cast<unsigned long long>(desc_batched_76),
        static_cast<double>(desc_single_76) /
            static_cast<double>(desc_batched_76));
  }

  // NI reference point for the same focused query.
  lineage::NaiveLineage naive = wb->Naive();
  double ni = CheckResult(
      bench::BestOfFive([&]() -> Status {
        return naive.Query(lineage::LineageRequest::SingleRun("r0", target, q, {testbed::kListGen})).status();
      }),
      "ni");
  std::printf("\nNI reference (same target, focused): %.3f ms\n", ni);
  json.Write();
  return 0;
}
