// Reproduces Fig. 10: IndexProj response time on *partially unfocused*
// queries — the interesting set 𝒫 grows from 1 processor up to ~50% of
// the graph (l=75: 152 nodes), so the number of generated trace queries
// (s2 probes) grows proportionally.
//
// Expected shape (paper §4.2): response time grows with |𝒫| toward the
// NI/unfocused regime.

#include <cstdio>

#include "bench/bench_util.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

int main() {
  using namespace provlin;
  using bench::CheckResult;

  constexpr int kL = 75;
  constexpr int kD = 50;

  std::printf(
      "Fig. 10: IndexProj on partially unfocused queries (l=%d, d=%d)\n"
      "|P| grows to ~50%% of the %d-node graph\n\n",
      kL, kD, testbed::SyntheticNodeCount(kL));

  auto wb = CheckResult(testbed::Workbench::Synthetic(kL), "workbench");
  CheckResult(wb->RunSynthetic(kD, "r0"), "run");

  workflow::PortRef target{workflow::kWorkflowProcessor, "RESULT"};
  Index q({1, 2});

  // Grow 𝒫 along the two chains, starting from the generator.
  auto interest_of = [&](int size) {
    lineage::InterestSet interest{testbed::kListGen};
    int added = 1;
    for (int k = kL; k >= 1 && added < size; --k) {
      interest.insert(testbed::ChainAProc(k));
      if (++added >= size) break;
      interest.insert(testbed::ChainBProc(k));
      ++added;
    }
    return interest;
  };

  bench::TablePrinter table({"|P|", "pct_of_nodes", "best_ms", "probes",
                             "bindings", "trace_queries"});
  const int sizes[] = {1, 4, 8, 16, 24, 32, 48, 64, 76};
  for (int size : sizes) {
    lineage::InterestSet interest = interest_of(size);
    lineage::LineageAnswer answer;
    double best = CheckResult(
        bench::BestOfFive([&]() -> Status {
          auto a = wb->IndexProj()->Query("r0", target, q, interest);
          PROVLIN_RETURN_IF_ERROR(a.status());
          answer = std::move(a).value();
          return Status::OK();
        }),
        "query");
    auto plan = CheckResult(wb->IndexProj()->Plan(target, q, interest),
                            "plan");
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%",
                  100.0 * static_cast<double>(interest.size()) /
                      testbed::SyntheticNodeCount(kL));
    table.AddRow({std::to_string(interest.size()), pct, bench::Ms(best),
                  bench::Num(answer.timing.trace_probes),
                  bench::Num(answer.bindings.size()),
                  bench::Num(plan->queries.size())});
  }
  table.Print();

  // NI reference point for the same focused query.
  lineage::NaiveLineage naive = wb->Naive();
  double ni = CheckResult(
      bench::BestOfFive([&]() -> Status {
        return naive.Query("r0", target, q, {testbed::kListGen}).status();
      }),
      "ni");
  std::printf("\nNI reference (same target, focused): %.3f ms\n", ni);
  return 0;
}
