// Reproduces Table 1: number of trace-database records for one run of
// each synthetic testbed configuration (l = chain length, d = input list
// size). The paper's counts fit records = 4*d*l + 2*d^2 + 2*d + 6; our
// recorder produces 4*d*l + 2*d^2 + 6 — identical dominant terms, with a
// small O(d) difference from how boundary transfers are counted (see
// EXPERIMENTS.md).

#include <cstdio>

#include "bench/bench_util.h"
#include "provenance/trace_store.h"
#include "testbed/workbench.h"

namespace {

int PaperValue(int l, int d) { return 4 * d * l + 2 * d * d + 2 * d + 6; }

}  // namespace

int main() {
  using namespace provlin;
  using bench::CheckResult;

  const int ls[] = {10, 28, 50, 75, 100, 150};
  const int ds[] = {10, 25, 50, 75};

  std::printf("Table 1: trace database records, one run per cell\n");
  std::printf("(measured / paper-formula 4dl+2d^2+2d+6)\n\n");

  bench::TablePrinter table({"d\\l", "10", "28", "50", "75", "100", "150"});
  for (int d : ds) {
    std::vector<std::string> row{std::to_string(d)};
    for (int l : ls) {
      auto wb = CheckResult(testbed::Workbench::Synthetic(l), "workbench");
      CheckResult(wb->RunSynthetic(d, "r0"), "run");
      provenance::TraceCounts counts =
          CheckResult(wb->store()->CountRecords("r0"), "count");
      row.push_back(std::to_string(counts.TotalDependencyRecords()) + "/" +
                    std::to_string(PaperValue(l, d)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
