// Reproduces Fig. 8: pre-processing time t1 as a function of the chain
// length l (graph size 2l+2 nodes), extended to l = 200 as in the paper.
// t1 covers the work done once per workflow definition / query: Alg. 1
// depth propagation plus the cold s1 spec-graph traversal that generates
// the focused trace queries.
//
// Expected shape (paper §4.2): well under 1 second below 100 nodes,
// growing with graph size only.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "lineage/index_proj_lineage.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"
#include "workflow/depth_propagation.h"

int main() {
  using namespace provlin;
  using bench::CheckResult;

  const int ls[] = {10, 28, 50, 75, 100, 150, 200};

  std::printf(
      "Fig. 8: pre-processing time vs chain length l (d=10, one run)\n\n");

  bench::TablePrinter table({"l", "graph_nodes", "propagate_ms",
                             "cold_plan_ms", "graph_steps"});
  for (int l : ls) {
    auto wb = CheckResult(testbed::Workbench::Synthetic(l), "workbench");
    CheckResult(wb->RunSynthetic(10, "r0"), "run");

    // Alg. 1, measured afresh on the flattened graph.
    double propagate_ms = CheckResult(
        bench::BestOfFive([&]() -> Status {
          return workflow::PropagateDepths(*wb->flow()).status();
        }),
        "propagate");

    workflow::PortRef target{workflow::kWorkflowProcessor, "RESULT"};
    Index q({1, 2});
    lineage::InterestSet interest{testbed::kListGen};
    uint64_t steps = 0;
    double plan_ms = CheckResult(
        bench::BestOfFive([&]() -> Status {
          wb->IndexProj()->ClearPlanCache();  // measure the cold traversal
          auto plan = wb->IndexProj()->Plan(target, q, interest);
          PROVLIN_RETURN_IF_ERROR(plan.status());
          steps = plan.value()->graph_steps;
          return Status::OK();
        }),
        "plan");

    table.AddRow({std::to_string(l),
                  std::to_string(testbed::SyntheticNodeCount(l)),
                  bench::Ms(propagate_ms), bench::Ms(plan_ms),
                  bench::Num(steps)});
  }
  table.Print();
  return 0;
}
