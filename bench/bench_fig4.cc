// Reproduces Fig. 4: query response time for focused and unfocused
// lineage queries ranging over multiple runs, on the two real-life
// workflows GK (genes2Kegg, short paths) and PD (protein discovery,
// long paths), with the (s1)/(s2) breakdown.
//
// Expected shape (paper §4): the s1 spec-graph traversal is shared by
// all runs in scope, so response time grows with the number of runs
// proportionally to t2 only; unfocused PD pays the largest t2 per run
// and therefore scales worst.

#include <cstdio>

#include "bench/bench_util.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "testbed/gk_workflow.h"
#include "testbed/pd_workflow.h"
#include "testbed/workbench.h"

namespace {

using namespace provlin;
using bench::CheckOk;
using bench::CheckResult;

constexpr int kMaxRuns = 10;

struct Config {
  const char* workflow;
  const char* mode;
  testbed::Workbench* wb;
  workflow::PortRef target;
  Index index;
  lineage::InterestSet interest;
};

void RunConfig(const Config& cfg, bench::TablePrinter* table) {
  std::vector<std::string> runs;
  for (int r = 1; r <= kMaxRuns; ++r) {
    runs.push_back("run" + std::to_string(r - 1));
    if (r != 1 && r != 2 && r != 5 && r != kMaxRuns) continue;
    lineage::LineageAnswer answer;
    double best = CheckResult(
        bench::BestOfFive([&]() -> Status {
          auto a = cfg.wb->IndexProj()->Query(lineage::LineageRequest::MultiRun(runs, cfg.target,
                                                      cfg.index, cfg.interest));
          PROVLIN_RETURN_IF_ERROR(a.status());
          answer = std::move(a).value();
          return Status::OK();
        }),
        "query");
    // NI reference: no spec graph to share — one full provenance-graph
    // traversal per run (§3.4).
    lineage::NaiveLineage naive = cfg.wb->Naive();
    lineage::LineageAnswer ni_answer;
    double ni_best = CheckResult(
        bench::BestOfFive([&]() -> Status {
          auto a =
              naive.Query(lineage::LineageRequest::MultiRun(runs, cfg.target, cfg.index, cfg.interest));
          PROVLIN_RETURN_IF_ERROR(a.status());
          ni_answer = std::move(a).value();
          return Status::OK();
        }),
        "ni query");
    if (ni_answer.bindings != answer.bindings) {
      std::fprintf(stderr, "FATAL: NI and IndexProj disagree\n");
      std::exit(1);
    }
    table->AddRow({cfg.workflow, cfg.mode, std::to_string(r),
                   bench::Ms(answer.timing.t1_ms),
                   bench::Ms(answer.timing.t2_ms), bench::Ms(best),
                   bench::Num(answer.timing.trace_probes),
                   bench::Ms(ni_best),
                   bench::Num(ni_answer.timing.trace_probes),
                   bench::Num(answer.bindings.size())});
  }
}

}  // namespace

int main() {
  std::printf(
      "Fig. 4: focused/unfocused multi-run lineage query times (IndexProj)\n"
      "GK = genes2Kegg (short paths), PD = protein discovery (long "
      "paths)\n\n");

  auto gk = CheckResult(testbed::Workbench::GK(), "gk workbench");
  for (int r = 0; r < kMaxRuns; ++r) {
    CheckResult(gk->Run({{"list_of_geneIDList",
                          testbed::GkSyntheticInput(4, 3, 100 + static_cast<uint64_t>(r))}},
                        "run" + std::to_string(r)),
                "gk run");
  }
  auto pd = CheckResult(testbed::Workbench::PD(), "pd workbench");
  for (int r = 0; r < kMaxRuns; ++r) {
    CheckResult(pd->Run({{"terms", testbed::PdSampleInput()}},
                        "run" + std::to_string(r)),
                "pd run");
  }

  bench::TablePrinter table({"workflow", "mode", "runs", "t1_ms", "t2_ms",
                             "best_total_ms", "probes", "NI_ms", "NI_probes",
                             "bindings"});

  Config configs[] = {
      {"GK", "focused", gk.get(),
       {workflow::kWorkflowProcessor, "paths_per_gene"}, Index({0}),
       {"get_pathways_by_genes"}},
      {"GK", "unfocused", gk.get(),
       {workflow::kWorkflowProcessor, "paths_per_gene"}, Index({0}),
       {}},
      {"PD", "focused", pd.get(),
       {workflow::kWorkflowProcessor, "discovered_proteins"}, Index({0}),
       {"normalize_terms"}},
      {"PD", "unfocused", pd.get(),
       {workflow::kWorkflowProcessor, "discovered_proteins"}, Index({0}),
       {}},
  };
  for (const Config& cfg : configs) RunConfig(cfg, &table);

  table.Print();
  std::printf(
      "\nShape check: t1 is paid once per query regardless of #runs; the\n"
      "unfocused-PD rows carry the largest t2 and grow fastest with runs.\n");
  return 0;
}
