#ifndef PROVLIN_BENCH_BENCH_UTIL_H_
#define PROVLIN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/timer.h"

namespace provlin::bench {

/// Paper methodology (§4.2, footnote 10): report the best response time
/// over a sequence of five identical queries (warm cache).
inline constexpr int kRepetitions = 5;

/// Runs `fn` kRepetitions times and returns the best elapsed time in
/// milliseconds. `fn` returns a Status; the first error aborts.
inline Result<double> BestOfFive(const std::function<Status()>& fn) {
  double best = -1.0;
  for (int i = 0; i < kRepetitions; ++i) {
    WallTimer timer;
    PROVLIN_RETURN_IF_ERROR(fn());
    double ms = timer.ElapsedMillis();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

/// Minimal aligned-column table printer for the figure benches.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(widths[i], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

inline std::string Num(uint64_t v) { return std::to_string(v); }

/// Aborts the bench with a message on error — benches have no recovery.
inline void CheckOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL [%s]: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL [%s]: %s\n", what,
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace provlin::bench

#endif  // PROVLIN_BENCH_BENCH_UTIL_H_
