#ifndef PROVLIN_BENCH_BENCH_UTIL_H_
#define PROVLIN_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/timer.h"

namespace provlin::bench {

/// Paper methodology (§4.2, footnote 10): report the best response time
/// over a sequence of five identical queries (warm cache).
inline constexpr int kRepetitions = 5;

/// Runs `fn` kRepetitions times and returns the best elapsed time in
/// milliseconds. `fn` returns a Status; the first error aborts.
inline Result<double> BestOfFive(const std::function<Status()>& fn) {
  double best = -1.0;
  for (int i = 0; i < kRepetitions; ++i) {
    WallTimer timer;
    PROVLIN_RETURN_IF_ERROR(fn());
    double ms = timer.ElapsedMillis();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

/// Fair A/B variant of BestOfFive: alternates the two measurements
/// round-by-round so slow machine drift (frequency scaling, cache
/// pollution from neighbours) lands on both sides equally, and returns
/// {best_a, best_b} as per-call times. Two back-to-back BestOfFive
/// calls can disagree by more than the effect being measured; this
/// variant cannot. Each round times a short steady-state burst rather
/// than one call — sub-millisecond single-shot timings sit at clock
/// resolution and flip the comparison run to run.
inline Result<std::pair<double, double>> BestOfFiveInterleaved(
    const std::function<Status()>& a, const std::function<Status()>& b,
    int calls_per_round = 8) {
  double best_a = -1.0;
  double best_b = -1.0;
  for (int i = 0; i < kRepetitions; ++i) {
    WallTimer timer_a;
    for (int r = 0; r < calls_per_round; ++r) PROVLIN_RETURN_IF_ERROR(a());
    double ms = timer_a.ElapsedMillis() / calls_per_round;
    if (best_a < 0 || ms < best_a) best_a = ms;
    WallTimer timer_b;
    for (int r = 0; r < calls_per_round; ++r) PROVLIN_RETURN_IF_ERROR(b());
    ms = timer_b.ElapsedMillis() / calls_per_round;
    if (best_b < 0 || ms < best_b) best_b = ms;
  }
  return std::make_pair(best_a, best_b);
}

/// Minimal aligned-column table printer for the figure benches.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(widths[i], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

inline std::string Num(uint64_t v) { return std::to_string(v); }

/// Machine-readable bench output: every figure bench emits a
/// BENCH_<name>.json next to its stdout table, carrying best-of-five
/// wall time plus the logical-probe and physical-descent counters per
/// measured configuration. tools/check_bench_counts.py diffs the
/// deterministic entries against the baselines checked in under
/// bench/baselines/ — probe counts must match exactly, descents must
/// not regress. Set PROVLIN_BENCH_JSON_DIR to redirect the output
/// directory (default: the working directory).
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// `deterministic` marks entries whose probe/descent counters are
  /// reproducible (single-threaded, fixed seeds) and therefore subject
  /// to the baseline check; timing-only or thread-raced entries pass
  /// false and are recorded for information only.
  void Add(const std::string& label, double best_ms, uint64_t probes,
           uint64_t descents, bool deterministic = true) {
    entries_.push_back({label, best_ms, probes, descents, deterministic});
  }

  /// Writes BENCH_<bench_name>.json. Best-effort: a write failure warns
  /// on stderr but does not fail the bench.
  void Write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("PROVLIN_BENCH_JSON_DIR")) dir = env;
    std::string path = dir + "/BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"entries\": [\n",
                 bench_name_.c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"best_ms\": %.3f, "
                   "\"probes\": %llu, \"descents\": %llu, "
                   "\"deterministic\": %s}%s\n",
                   e.label.c_str(), e.best_ms,
                   static_cast<unsigned long long>(e.probes),
                   static_cast<unsigned long long>(e.descents),
                   e.deterministic ? "true" : "false",
                   i + 1 < entries_.size() ? "," : "");
    }
    // Full registry state at the end of the run, for offline analysis
    // alongside the per-entry counters. check_bench_counts.py only reads
    // "entries", so this key is additive.
    std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n",
                 common::metrics::MetricsRegistry::Global()
                     .Snapshot()
                     .ToJson(2)
                     .c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  }

 private:
  struct Entry {
    std::string label;
    double best_ms;
    uint64_t probes;
    uint64_t descents;
    bool deterministic;
  };
  std::string bench_name_;
  std::vector<Entry> entries_;
};

/// Aborts the bench with a message on error — benches have no recovery.
inline void CheckOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL [%s]: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL [%s]: %s\n", what,
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace provlin::bench

#endif  // PROVLIN_BENCH_BENCH_UTIL_H_
