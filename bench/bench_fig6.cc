// Reproduces Fig. 6: NI lineage query response time as a function of the
// trace database size, obtained by accumulating traces for up to 10 runs
// of the l=75, d=50 synthetic dataflow while always querying run 0.
//
// Expected shape (paper §4.2): a modest increase (~20% in the paper) as
// records grow 10x, because every trace access is an index probe and no
// full scans occur.

#include <cstdio>

#include "bench/bench_util.h"
#include "lineage/naive_lineage.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

int main() {
  using namespace provlin;
  using bench::CheckResult;

  constexpr int kL = 75;
  constexpr int kD = 50;
  constexpr int kRuns = 10;

  std::printf(
      "Fig. 6: NI single-run query time vs accumulated trace DB size\n"
      "(l=%d, d=%d; query always targets run 0)\n\n",
      kL, kD);

  auto wb = CheckResult(testbed::Workbench::Synthetic(kL), "workbench");
  workflow::PortRef target{workflow::kWorkflowProcessor, "RESULT"};
  Index q({1, 2});
  lineage::InterestSet interest{testbed::kListGen};

  bench::TablePrinter table(
      {"runs_stored", "db_records", "NI_best_ms", "probes", "bindings"});
  for (int r = 0; r < kRuns; ++r) {
    CheckResult(wb->RunSynthetic(kD, "run" + std::to_string(r)), "run");
    provenance::TraceCounts counts =
        CheckResult(wb->store()->CountAllRecords(), "count");
    lineage::NaiveLineage naive = wb->Naive();
    lineage::LineageAnswer answer;
    double best = CheckResult(
        bench::BestOfFive([&]() -> Status {
          auto a = naive.Query(lineage::LineageRequest::SingleRun("run0", target, q, interest));
          PROVLIN_RETURN_IF_ERROR(a.status());
          answer = std::move(a).value();
          return Status::OK();
        }),
        "query");
    table.AddRow({std::to_string(r + 1),
                  bench::Num(counts.TotalDependencyRecords()),
                  bench::Ms(best), bench::Num(answer.timing.trace_probes),
                  bench::Num(answer.bindings.size())});
  }
  table.Print();
  return 0;
}
