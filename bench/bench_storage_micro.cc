// Substrate micro-benchmarks: B+tree and table/query-layer operations of
// the embedded relational engine that stands in for the paper's MySQL.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "common/sync.h"
#include "storage/bplus_tree.h"
#include "storage/query.h"
#include "storage/segment.h"
#include "storage/table.h"

namespace {

using namespace provlin;
using storage::BPlusTree;
using storage::Datum;
using storage::Key;

void BM_BPlusTreeInsert(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    BPlusTree tree;
    Random rng(7);
    for (uint64_t i = 0; i < n; ++i) {
      tree.Insert({Datum(static_cast<int64_t>(rng.Uniform(n * 4)))}, i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeLookup(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  BPlusTree tree;
  Random rng(7);
  for (uint64_t i = 0; i < n; ++i) {
    tree.Insert({Datum(static_cast<int64_t>(i))}, i);
  }
  uint64_t probe = 0;
  for (auto _ : state) {
    auto rids = tree.Lookup({Datum(static_cast<int64_t>(probe++ % n))});
    benchmark::DoNotOptimize(rids);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(10000)->Arg(100000);

void BM_BPlusTreePrefixScan(benchmark::State& state) {
  // Composite keys (group, member): prefix scans fetch one group.
  const int64_t groups = 1000;
  const int64_t members = state.range(0);
  BPlusTree tree;
  uint64_t rid = 0;
  for (int64_t g = 0; g < groups; ++g) {
    for (int64_t m = 0; m < members; ++m) {
      tree.Insert({Datum(g), Datum(m)}, rid++);
    }
  }
  int64_t probe = 0;
  for (auto _ : state) {
    auto rids = tree.PrefixLookup({Datum(probe++ % groups)});
    benchmark::DoNotOptimize(rids);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * members);
}
BENCHMARK(BM_BPlusTreePrefixScan)->Arg(10)->Arg(100);

// Identifier-layer payoff at the storage layer: one trace-shaped probe
// — all rows of (run, processor, port) under an index prefix — against
// the seed's string-keyed layout and against the dictionary-encoded
// layout (interned run, packed IdPair, raw IndexPath column). Same row
// count, same probe mix; only the key representation differs.

void BM_TraceProbeStringKeyed(benchmark::State& state) {
  const int64_t n = state.range(0);
  storage::Table table(
      "t", storage::Schema({{"run", storage::DatumKind::kString},
                            {"pair", storage::DatumKind::kString},
                            {"idx", storage::DatumKind::kString}}));
  {
    Status st = table.CreateIndex(
        {"by_pair", {"run", "pair", "idx"}, storage::IndexType::kBTree});
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  for (int64_t i = 0; i < n; ++i) {
    auto r = table.Insert(
        {Datum("run-2026-08-06-000"),
         Datum("processor_" + std::to_string(i % 100) + ":out"),
         Datum(std::to_string(i % 16) + "." + std::to_string(i % 8))});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  int64_t probe = 0;
  for (auto _ : state) {
    storage::SelectQuery q;
    q.equals.push_back({"run", Datum("run-2026-08-06-000")});
    q.equals.push_back(
        {"pair", Datum("processor_" + std::to_string(probe % 100) + ":out")});
    q.string_prefix =
        storage::SelectQuery::StringPrefix{"idx", std::to_string(probe % 16)};
    ++probe;
    auto r = storage::ExecuteSelect(table, q);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceProbeStringKeyed)->Arg(10000)->Arg(100000);

void BM_TraceProbeIdKeyed(benchmark::State& state) {
  const int64_t n = state.range(0);
  storage::Table table(
      "t", storage::Schema({{"run", storage::DatumKind::kInt},
                            {"pair", storage::DatumKind::kIdPair},
                            {"idx", storage::DatumKind::kIndexPath}}));
  {
    Status st = table.CreateIndex(
        {"by_pair", {"run", "pair", "idx"}, storage::IndexType::kBTree});
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  for (int64_t i = 0; i < n; ++i) {
    auto r = table.Insert(
        {Datum(static_cast<int64_t>(0)),
         Datum(storage::IdPair{static_cast<uint32_t>(i % 100), 7}),
         Datum(storage::IndexPath{static_cast<int32_t>(i % 16),
                                  static_cast<int32_t>(i % 8)})});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  int64_t probe = 0;
  for (auto _ : state) {
    storage::SelectQuery q;
    q.equals.push_back({"run", Datum(static_cast<int64_t>(0))});
    q.equals.push_back(
        {"pair", Datum(storage::IdPair{static_cast<uint32_t>(probe % 100), 7})});
    q.path_prefix = storage::SelectQuery::PathPrefix{
        "idx", storage::IndexPath{static_cast<int32_t>(probe % 16)}};
    ++probe;
    auto r = storage::ExecuteSelect(table, q);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceProbeIdKeyed)->Arg(10000)->Arg(100000);

void BM_TableIndexedSelect(benchmark::State& state) {
  const int64_t n = state.range(0);
  storage::Table table(
      "t", storage::Schema({{"run", storage::DatumKind::kString},
                            {"proc", storage::DatumKind::kString},
                            {"idx", storage::DatumKind::kString}}));
  {
    Status st = table.CreateIndex(
        {"by_proc", {"run", "proc", "idx"}, storage::IndexType::kBTree});
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  for (int64_t i = 0; i < n; ++i) {
    auto r = table.Insert({Datum("r0"), Datum("P" + std::to_string(i % 100)),
                           Datum(std::to_string(i))});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  int64_t probe = 0;
  for (auto _ : state) {
    storage::SelectQuery q;
    q.equals.push_back({"run", Datum("r0")});
    q.equals.push_back({"proc", Datum("P" + std::to_string(probe++ % 100))});
    auto r = storage::ExecuteSelect(table, q);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TableIndexedSelect)->Arg(10000)->Arg(100000);

// Compressed-segment axis (DESIGN.md §13): the same trace-shaped rows
// sealed into an immutable Segment — encode throughput, and the
// in-situ probe against the B+tree probes above. The probe mirrors
// BM_TraceProbeIdKeyed's shape: all rows of one (processor, port) pair
// under an index prefix, out of n rows of a single run.

std::vector<storage::Row> SegmentBenchRows(int64_t n) {
  std::vector<storage::Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    storage::Row row(8);
    row[0] = Datum(static_cast<int64_t>(0));  // run
    row[1] = Datum(i);                        // event
    row[2] = Datum(storage::IdPair{static_cast<uint32_t>(i % 100), 3});
    row[3] = Datum(storage::IndexPath{static_cast<int32_t>(i % 16)});
    row[4] = Datum(i);
    row[5] = Datum(storage::IdPair{static_cast<uint32_t>(i % 100), 7});
    row[6] = Datum(storage::IndexPath{static_cast<int32_t>(i % 16),
                                      static_cast<int32_t>(i % 8)});
    row[7] = Datum(i);
    rows.push_back(std::move(row));
  }
  return rows;
}

void BM_SegmentEncode(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<storage::Row> rows = SegmentBenchRows(n);
  size_t encoded_bytes = 0;
  for (auto _ : state) {
    auto seg = storage::Segment::Build(storage::Segment::Kind::kXform, 0, rows);
    if (!seg.ok()) state.SkipWithError(seg.status().ToString().c_str());
    encoded_bytes = seg->bytes().size();
    benchmark::DoNotOptimize(encoded_bytes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.counters["bytes_per_row"] =
      static_cast<double>(encoded_bytes) / static_cast<double>(n);
}
BENCHMARK(BM_SegmentEncode)->Arg(10000)->Arg(100000);

void BM_TraceProbeSealed(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto seg =
      storage::Segment::Build(storage::Segment::Kind::kXform, 0,
                              SegmentBenchRows(n));
  if (!seg.ok()) {
    state.SkipWithError(seg.status().ToString().c_str());
    return;
  }
  int64_t probe = 0;
  for (auto _ : state) {
    storage::Segment::ViewProbe vp;
    vp.pair = storage::IdPair{static_cast<uint32_t>(probe % 100), 7}.Packed();
    vp.has_lo = vp.has_hi = true;
    vp.lo = storage::IndexPath{static_cast<int32_t>(probe % 16)};
    vp.hi = storage::IndexPath{static_cast<int32_t>(probe % 16), INT32_MAX};
    ++probe;
    storage::Segment::Scratch scratch;
    storage::Segment::ProbeCounts counts;
    size_t hits = 0;
    Status st = seg->ProbeView(
        storage::Segment::kViewOut, vp, &scratch, &counts,
        [&](uint64_t, const storage::Row&) { ++hits; });
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceProbeSealed)->Arg(10000)->Arg(100000);

// Guards the zero-overhead contract of the ranked sync wrappers: in a
// release build (PROVLIN_LOCK_DEBUG off) an uncontended Lock/Unlock
// round trip must cost what the raw std primitive costs — sync.h
// static-asserts the layout half; these expose any per-acquisition
// regression. In a lock-debug build they instead measure the detector
// itself (useful, but not comparable against release baselines).
void BM_MutexLockUnlock(benchmark::State& state) {
  common::Mutex mu{common::LockRank::kTestOuter};
  for (auto _ : state) {
    common::MutexLock lock(mu);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MutexLockUnlock);

void BM_SharedMutexReadLock(benchmark::State& state) {
  common::SharedMutex mu{common::LockRank::kTestOuter};
  for (auto _ : state) {
    common::ReaderLock lock(mu);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SharedMutexReadLock);

}  // namespace

BENCHMARK_MAIN();
