// Substrate micro-benchmarks: B+tree and table/query-layer operations of
// the embedded relational engine that stands in for the paper's MySQL.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "storage/bplus_tree.h"
#include "storage/query.h"
#include "storage/table.h"

namespace {

using namespace provlin;
using storage::BPlusTree;
using storage::Datum;
using storage::Key;

void BM_BPlusTreeInsert(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    BPlusTree tree;
    Random rng(7);
    for (uint64_t i = 0; i < n; ++i) {
      tree.Insert({Datum(static_cast<int64_t>(rng.Uniform(n * 4)))}, i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeLookup(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  BPlusTree tree;
  Random rng(7);
  for (uint64_t i = 0; i < n; ++i) {
    tree.Insert({Datum(static_cast<int64_t>(i))}, i);
  }
  uint64_t probe = 0;
  for (auto _ : state) {
    auto rids = tree.Lookup({Datum(static_cast<int64_t>(probe++ % n))});
    benchmark::DoNotOptimize(rids);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(10000)->Arg(100000);

void BM_BPlusTreePrefixScan(benchmark::State& state) {
  // Composite keys (group, member): prefix scans fetch one group.
  const int64_t groups = 1000;
  const int64_t members = state.range(0);
  BPlusTree tree;
  uint64_t rid = 0;
  for (int64_t g = 0; g < groups; ++g) {
    for (int64_t m = 0; m < members; ++m) {
      tree.Insert({Datum(g), Datum(m)}, rid++);
    }
  }
  int64_t probe = 0;
  for (auto _ : state) {
    auto rids = tree.PrefixLookup({Datum(probe++ % groups)});
    benchmark::DoNotOptimize(rids);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * members);
}
BENCHMARK(BM_BPlusTreePrefixScan)->Arg(10)->Arg(100);

void BM_TableIndexedSelect(benchmark::State& state) {
  const int64_t n = state.range(0);
  storage::Table table(
      "t", storage::Schema({{"run", storage::DatumKind::kString},
                            {"proc", storage::DatumKind::kString},
                            {"idx", storage::DatumKind::kString}}));
  {
    Status st = table.CreateIndex(
        {"by_proc", {"run", "proc", "idx"}, storage::IndexType::kBTree});
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  for (int64_t i = 0; i < n; ++i) {
    auto r = table.Insert({Datum("r0"), Datum("P" + std::to_string(i % 100)),
                           Datum(std::to_string(i))});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  int64_t probe = 0;
  for (auto _ : state) {
    storage::SelectQuery q;
    q.equals.push_back({"run", Datum("r0")});
    q.equals.push_back({"proc", Datum("P" + std::to_string(probe++ % 100))});
    auto r = storage::ExecuteSelect(table, q);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TableIndexedSelect)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
