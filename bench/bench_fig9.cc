// Reproduces Fig. 9: lineage query response time (t2) across the three
// strategies as a function of the chain length l, for the two extreme
// list sizes d=10 and d=150:
//
//   NI               — naive traversal of the provenance trace;
//   IndexProj        — focused on {LISTGEN_1} (the paper's query);
//   IndexProj-unfoc  — IndexProj with 𝒫 = all processors.
//
// Expected shape (paper §4.2): NI grows with l (one probe per traversal
// step); focused IndexProj is essentially constant in l and in d;
// unfocused IndexProj approaches NI.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/tracing.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

namespace {

using namespace provlin;
using bench::CheckResult;

void RunForD(int d, bench::TablePrinter* table, bench::JsonWriter* json) {
  const int ls[] = {10, 28, 50, 75, 100, 150};
  for (int l : ls) {
    auto wb = CheckResult(testbed::Workbench::Synthetic(l), "workbench");
    CheckResult(wb->RunSynthetic(d, "r0"), "run");

    workflow::PortRef target{workflow::kWorkflowProcessor, "RESULT"};
    Index q({1, 2});
    lineage::InterestSet focused{testbed::kListGen};
    lineage::InterestSet unfocused;  // empty = every processor

    lineage::NaiveLineage naive = wb->Naive();
    lineage::LineageAnswer ni_answer;
    double ni = CheckResult(
        bench::BestOfFive([&]() -> Status {
          auto a = naive.Query(lineage::LineageRequest::SingleRun("r0", target, q, focused));
          PROVLIN_RETURN_IF_ERROR(a.status());
          ni_answer = std::move(a).value();
          return Status::OK();
        }),
        "ni");

    lineage::LineageAnswer ip_answer;
    double ip = CheckResult(
        bench::BestOfFive([&]() -> Status {
          auto a = wb->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", target, q, focused));
          PROVLIN_RETURN_IF_ERROR(a.status());
          ip_answer = std::move(a).value();
          return Status::OK();
        }),
        "indexproj");

    lineage::LineageAnswer un_answer;
    double un = CheckResult(
        bench::BestOfFive([&]() -> Status {
          auto a = wb->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", target, q, unfocused));
          PROVLIN_RETURN_IF_ERROR(a.status());
          un_answer = std::move(a).value();
          return Status::OK();
        }),
        "indexproj-unfocused");

    table->AddRow({std::to_string(d), std::to_string(l), bench::Ms(ni),
                   bench::Ms(ip), bench::Ms(un),
                   bench::Num(ni_answer.timing.trace_probes),
                   bench::Num(ip_answer.timing.trace_probes),
                   bench::Num(un_answer.timing.trace_probes),
                   bench::Num(ni_answer.timing.trace_descents),
                   bench::Num(ip_answer.timing.trace_descents),
                   bench::Num(un_answer.timing.trace_descents)});
    std::string cfg = "d" + std::to_string(d) + "_l" + std::to_string(l);
    json->Add(cfg + "_ni", ni, ni_answer.timing.trace_probes,
              ni_answer.timing.trace_descents);
    json->Add(cfg + "_ip", ip, ip_answer.timing.trace_probes,
              ip_answer.timing.trace_descents);
    json->Add(cfg + "_ipunfoc", un, un_answer.timing.trace_probes,
              un_answer.timing.trace_descents);
  }
}

/// Span-tracing overhead on the heaviest configuration (d=150, l=150),
/// measured as an interleaved A/B so machine drift lands on both sides:
/// side A runs with the tracer disabled (guards are inert), side B with
/// the tracer capturing into a large ring. The toggle happens once per
/// burst, not per call.
void MeasureTracingOverhead(bench::JsonWriter* json) {
  auto wb = CheckResult(testbed::Workbench::Synthetic(150), "workbench");
  CheckResult(wb->RunSynthetic(150, "r0"), "run");
  workflow::PortRef target{workflow::kWorkflowProcessor, "RESULT"};
  Index q({1, 2});
  lineage::InterestSet focused{testbed::kListGen};
  lineage::NaiveLineage naive = wb->Naive();
  auto& tracer = common::tracing::Tracer::Global();

  auto measure = [&](const std::function<Status()>& fn) {
    return CheckResult(
        bench::BestOfFiveInterleaved(
            [&]() -> Status {
              if (tracer.enabled()) tracer.Disable();
              return fn();
            },
            [&]() -> Status {
              if (!tracer.enabled()) tracer.Enable(1u << 16);
              return fn();
            }),
        "tracing overhead");
  };

  auto [ni_off, ni_on] = measure(
      [&]() { return naive.Query(lineage::LineageRequest::SingleRun("r0", target, q, focused)).status(); });
  auto [ip_off, ip_on] = measure([&]() {
    return wb->IndexProj()->Query(lineage::LineageRequest::SingleRun("r0", target, q, focused)).status();
  });
  tracer.Disable();

  std::printf(
      "\nSpan-tracing overhead (d=150, l=150, interleaved best-of-5):\n\n");
  bench::TablePrinter table(
      {"engine", "trace_off_ms", "trace_on_ms", "overhead"});
  auto pct = [](double off, double on) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%",
                  off > 0 ? (on - off) / off * 100.0 : 0.0);
    return std::string(buf);
  };
  table.AddRow({"NI", bench::Ms(ni_off), bench::Ms(ni_on),
                pct(ni_off, ni_on)});
  table.AddRow({"IndexProj", bench::Ms(ip_off), bench::Ms(ip_on),
                pct(ip_off, ip_on)});
  table.Print();
  json->Add("overhead_ni_traceoff", ni_off, 0, 0, /*deterministic=*/false);
  json->Add("overhead_ni_traceon", ni_on, 0, 0, /*deterministic=*/false);
  json->Add("overhead_ip_traceoff", ip_off, 0, 0, /*deterministic=*/false);
  json->Add("overhead_ip_traceon", ip_on, 0, 0, /*deterministic=*/false);
}

}  // namespace

int main() {
  std::printf(
      "Fig. 9: query response time across strategies vs l, for d=10 and "
      "d=150\n(focused query lin(RESULT[1,2], {LISTGEN_1}); times are "
      "best-of-5 warm)\n\n");
  bench::TablePrinter table({"d", "l", "NI_ms", "IndexProj_ms",
                             "IndexProjUnfoc_ms", "NI_probes", "IP_probes",
                             "IPunfoc_probes", "NI_desc", "IP_desc",
                             "IPunfoc_desc"});
  bench::JsonWriter json("fig9");
  RunForD(10, &table, &json);
  RunForD(150, &table, &json);
  table.Print();
  std::printf(
      "\nShape check: NI probe count grows linearly in l; IndexProj stays\n"
      "constant; unfocused IndexProj approaches NI. Descents stay below\n"
      "probes wherever the batched layer can amortize sorted runs.\n");
  MeasureTracingOverhead(&json);
  json.Write();
  return 0;
}
