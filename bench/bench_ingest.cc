// Ingest throughput across run shards: producer threads stream
// pre-built xform rows into a TraceStore at 1/2/4/8 shards with async
// per-shard writer threads (DESIGN.md §11), against the synchronous
// unsharded legacy path. Every configuration ingests the identical row
// stream, so the BENCH JSON "probes" column carries the deterministic
// total row count — the baseline check proves no configuration drops
// rows. Wall time is the measurement: with one shard every B+-tree
// insert serializes on one writer; with N shards the writers apply in
// parallel and throughput should scale until insert cost stops
// dominating.

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "provenance/store_open.h"
#include "provenance/trace_store.h"

int main() {
  using namespace provlin;
  using bench::CheckResult;
  using provenance::TraceStore;
  using provenance::XformRecord;

  constexpr size_t kProducers = 4;
  constexpr size_t kRunsTotal = 64;
  constexpr int kRowsPerRun = 2000;
  constexpr int kReps = 3;  // best-of over fresh stores
  const uint64_t kTotalRows =
      static_cast<uint64_t>(kRunsTotal) * kRowsPerRun;

  unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Trace ingest throughput (%zu runs x %d rows, %zu producer "
      "threads, best of %d)\nhardware threads: %u%s\n\n",
      kRunsTotal, kRowsPerRun, kProducers, kReps, cores,
      cores <= 1 ? "  (single-core host: expect speedup ~1.0x)" : "");

  // One timed ingest into a fresh store: rows are built (and symbols
  // interned) outside the timer, producers split the runs round-robin,
  // and the clock stops after Flush() — every row applied, not merely
  // enqueued.
  auto ingest_once = [&](size_t shards, bool async) -> Result<double> {
    provenance::StoreOptions options;  // empty db_path = in-memory
    options.shards = shards;
    options.async_ingest = async;
    PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                             provenance::OpenStore(options));
    TraceStore& store = opened.store();

    std::vector<std::vector<XformRecord>> streams(kRunsTotal);
    std::vector<std::string> run_ids(kRunsTotal);
    const common::SymbolId port_x = store.Intern("x");
    const common::SymbolId port_y = store.Intern("y");
    std::vector<common::SymbolId> procs;
    for (int p = 0; p < 8; ++p) {
      procs.push_back(store.Intern("P" + std::to_string(p)));
    }
    for (size_t r = 0; r < kRunsTotal; ++r) {
      run_ids[r] = "ingest" + std::to_string(r);
      const common::SymbolId run = store.Intern(run_ids[r]);
      streams[r].reserve(kRowsPerRun);
      for (int i = 0; i < kRowsPerRun; ++i) {
        XformRecord rec;
        rec.run = run;
        rec.event_id = i;
        rec.processor = procs[static_cast<size_t>(i) % procs.size()];
        rec.has_in = true;
        rec.in_port = port_x;
        rec.in_index = Index({static_cast<int32_t>(i % 50)});
        rec.in_value = i;
        rec.has_out = true;
        rec.out_port = port_y;
        rec.out_index =
            Index({static_cast<int32_t>(i % 50), static_cast<int32_t>(i % 3)});
        rec.out_value = i;
        streams[r].push_back(std::move(rec));
      }
    }

    WallTimer timer;
    for (size_t r = 0; r < kRunsTotal; ++r) {
      PROVLIN_RETURN_IF_ERROR(store.InsertRun(run_ids[r], "bench"));
    }
    std::vector<std::thread> producers;
    std::vector<Status> outcomes(kProducers);
    for (size_t t = 0; t < kProducers; ++t) {
      producers.emplace_back([&, t] {
        for (size_t r = t; r < kRunsTotal; r += kProducers) {
          for (const XformRecord& rec : streams[r]) {
            Status st = store.InsertXform(rec);
            if (!st.ok()) {
              outcomes[t] = st;
              return;
            }
          }
        }
      });
    }
    for (std::thread& t : producers) t.join();
    for (const Status& st : outcomes) PROVLIN_RETURN_IF_ERROR(st);
    PROVLIN_RETURN_IF_ERROR(store.Flush());
    double ms = timer.ElapsedMillis();

    PROVLIN_ASSIGN_OR_RETURN(provenance::TraceCounts counts,
                             store.CountAllRecords());
    if (counts.xform_rows != kTotalRows) {
      return Status::Internal("ingest dropped rows: " +
                              std::to_string(counts.xform_rows) + " of " +
                              std::to_string(kTotalRows));
    }
    return ms;
  };

  auto best_of = [&](size_t shards, bool async) -> double {
    double best = -1.0;
    for (int i = 0; i < kReps; ++i) {
      double ms = CheckResult(ingest_once(shards, async), "ingest");
      if (best < 0 || ms < best) best = ms;
    }
    return best;
  };

  bench::TablePrinter table(
      {"mode", "shards", "best_ms", "rows_per_s", "speedup"});
  bench::JsonWriter json("ingest");
  auto row = [&](const char* mode, size_t shards, double ms, double base_ms) {
    char rate[32], speedup[32];
    std::snprintf(rate, sizeof(rate), "%.0f",
                  static_cast<double>(kTotalRows) / (ms / 1000.0));
    std::snprintf(speedup, sizeof(speedup), "%.2fx", base_ms / ms);
    table.AddRow({mode, std::to_string(shards), bench::Ms(ms), rate, speedup});
  };

  // Legacy reference: synchronous single-shard ingest on the callers.
  double sync_ms = best_of(1, /*async=*/false);

  double async1_ms = best_of(1, /*async=*/true);
  row("sync", 1, sync_ms, async1_ms);
  row("async", 1, async1_ms, async1_ms);
  json.Add("sync_shards1", sync_ms, kTotalRows, 0);
  json.Add("async_shards1", async1_ms, kTotalRows, 0);
  for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    double ms = best_of(shards, /*async=*/true);
    row("async", shards, ms, async1_ms);
    json.Add("async_shards" + std::to_string(shards), ms, kTotalRows, 0);
  }
  table.Print();
  json.Write();
  return 0;
}
