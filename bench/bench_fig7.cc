// Reproduces Fig. 7: NI lineage query response time for varying input
// list size d, at several chain lengths l.
//
// Expected shape (paper §4.2): modest growth in d for each l — d affects
// the size of the trace (and so of the indexes) but not the number of
// traversal steps, which is governed by l.

#include <cstdio>

#include "bench/bench_util.h"
#include "lineage/naive_lineage.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

int main() {
  using namespace provlin;
  using bench::CheckResult;

  const int ls[] = {28, 75, 150};
  const int ds[] = {10, 25, 50, 75};

  std::printf(
      "Fig. 7: NI query response time vs input list size d (one run)\n\n");

  bench::TablePrinter table(
      {"l", "d", "db_records", "NI_best_ms", "probes"});
  for (int l : ls) {
    for (int d : ds) {
      auto wb = CheckResult(testbed::Workbench::Synthetic(l), "workbench");
      CheckResult(wb->RunSynthetic(d, "r0"), "run");
      provenance::TraceCounts counts =
          CheckResult(wb->store()->CountRecords("r0"), "count");
      workflow::PortRef target{workflow::kWorkflowProcessor, "RESULT"};
      Index q({1, 2});
      lineage::InterestSet interest{testbed::kListGen};
      lineage::NaiveLineage naive = wb->Naive();
      lineage::LineageAnswer answer;
      double best = CheckResult(
          bench::BestOfFive([&]() -> Status {
            auto a = naive.Query(lineage::LineageRequest::SingleRun("r0", target, q, interest));
            PROVLIN_RETURN_IF_ERROR(a.status());
            answer = std::move(a).value();
            return Status::OK();
          }),
          "query");
      table.AddRow({std::to_string(l), std::to_string(d),
                    bench::Num(counts.TotalDependencyRecords()),
                    bench::Ms(best), bench::Num(answer.timing.trace_probes)});
    }
  }
  table.Print();
  return 0;
}
