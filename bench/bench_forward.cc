// Extension bench (not in the paper): forward/impact query response time
// across strategies as a function of chain length l — the dual of
// Fig. 9. The spec-graph forward engine composes index patterns once;
// the naive engine walks the trace per element, so its probe count grows
// with both l and d.

#include <cstdio>

#include "bench/bench_util.h"
#include "lineage/forward_lineage.h"
#include "testbed/synthetic.h"
#include "testbed/workbench.h"

int main() {
  using namespace provlin;
  using bench::CheckResult;

  std::printf(
      "Forward (impact) query times vs l, d=25: naive vs pattern engine\n"
      "query: impact of LISTGEN_1:list[2] on the workflow output\n\n");

  bench::TablePrinter table({"l", "naive_ms", "fwdproj_ms", "naive_probes",
                             "fwdproj_probes", "bindings"});
  for (int l : {10, 28, 50, 75, 100}) {
    auto wb = CheckResult(testbed::Workbench::Synthetic(l), "workbench");
    CheckResult(wb->RunSynthetic(25, "r0"), "run");

    workflow::PortRef target{testbed::kListGen, "list"};
    Index p({1});
    lineage::InterestSet interest{workflow::kWorkflowProcessor};

    lineage::NaiveForwardLineage naive(wb->store());
    lineage::LineageAnswer ni_answer;
    double ni = CheckResult(
        bench::BestOfFive([&]() -> Status {
          auto a = naive.Query("r0", target, p, interest);
          PROVLIN_RETURN_IF_ERROR(a.status());
          ni_answer = std::move(a).value();
          return Status::OK();
        }),
        "naive");

    auto fwd = CheckResult(
        lineage::ForwardIndexProjLineage::Create(wb->flow(), wb->store()),
        "fwd engine");
    lineage::LineageAnswer ip_answer;
    double ip = CheckResult(
        bench::BestOfFive([&]() -> Status {
          auto a = fwd.Query("r0", target, p, interest);
          PROVLIN_RETURN_IF_ERROR(a.status());
          ip_answer = std::move(a).value();
          return Status::OK();
        }),
        "fwdproj");

    if (ni_answer.bindings != ip_answer.bindings) {
      std::fprintf(stderr, "FATAL: engines disagree at l=%d\n", l);
      return 1;
    }
    table.AddRow({std::to_string(l), bench::Ms(ni), bench::Ms(ip),
                  bench::Num(ni_answer.timing.trace_probes),
                  bench::Num(ip_answer.timing.trace_probes),
                  bench::Num(ip_answer.bindings.size())});
  }
  table.Print();
  return 0;
}
